"""repro.selffuzz — the toolchain turned on itself.

Composition-steered MiniC program generation (FuzzyFlow / grammar-level
composition-style testing), a differential -O0-vs--O2 harness over the
existing verifier + probe-integrity sanitizer, a dataflow-guided
auto-minimizer, and pass-level bisection.  ``repro selffuzz`` drives the
whole loop and reports per-style / per-pass bug tallies.
"""

from repro.selffuzz.generator import (
    ALL_STYLES,
    GeneratedProgram,
    ProgramGenerator,
    parse_style_mix,
)
from repro.selffuzz.harness import (
    STATUS_BACKEND,
    STATUS_DIVERGENCE,
    STATUS_FRONTEND,
    STATUS_O0_CRASH,
    STATUS_OK,
    STATUS_PASS_CRASH,
    STATUS_SANITIZER,
    STATUS_VERIFIER,
    CampaignReport,
    SelfFuzzCampaign,
    SelfFuzzHarness,
    Verdict,
)
from repro.selffuzz.bisect import (
    AttributedFailure,
    BisectResult,
    apply_o2_prefix,
    bisect_divergence,
    run_o2_with_attribution,
)
from repro.selffuzz.minimize import MinimizeResult, Minimizer

__all__ = [
    "ALL_STYLES",
    "GeneratedProgram",
    "ProgramGenerator",
    "parse_style_mix",
    "STATUS_BACKEND",
    "STATUS_DIVERGENCE",
    "STATUS_FRONTEND",
    "STATUS_O0_CRASH",
    "STATUS_OK",
    "STATUS_PASS_CRASH",
    "STATUS_SANITIZER",
    "STATUS_VERIFIER",
    "CampaignReport",
    "SelfFuzzCampaign",
    "SelfFuzzHarness",
    "Verdict",
    "AttributedFailure",
    "BisectResult",
    "apply_o2_prefix",
    "bisect_divergence",
    "run_o2_with_attribution",
    "MinimizeResult",
    "Minimizer",
]
