"""Pass-level replay and bisection for the selffuzz harness.

The -O2 pipeline is a *fixpoint loop* over a fixed pass list
(:func:`repro.opt.pipeline.optimize` runs ``run_until_fixpoint`` with
``max_iters=4``), so "the pipeline" is really a deterministic sequence of
pass **invocations** — pass P at iteration K.  This module owns that
flattening:

* :func:`run_o2_with_attribution` replays the exact fixpoint schedule on
  a module, verifying (and optionally probe-sanitizing) after every
  invocation, with every failure attributed to the offending invocation;
* :func:`apply_o2_prefix` replays only the first *k* invocations — the
  primitive behind prefix bisection;
* :func:`bisect_divergence` pins the first invocation whose output
  diverges behaviourally from the -O0 ground truth: it maintains the
  invariant "prefix ``lo`` behaves like -O0, prefix ``hi`` does not" and
  narrows to the adjacent pair, so the reported pass is the one whose
  application flipped the behaviour even if a later pass would re-mask it.

Passes are deterministic, so replaying a prefix of length *k* lands on
byte-identical IR to the state the full run had after its *k*-th
invocation — that is what makes prefix replay a sound attribution tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.opt.pass_manager import OptContext, Pass
from repro.opt.pipeline import o2_pipeline

#: Mirrors ``optimize(level=2)``: bounded fixpoint over the -O2 pipeline.
MAX_FIXPOINT_ITERS = 4

PipelineFactory = Callable[[], Sequence[Pass]]


def default_pipeline() -> Sequence[Pass]:
    """The real -O2 pass list (fresh instances — passes may hold state)."""
    return o2_pipeline().passes


@dataclass(frozen=True)
class PassInvocation:
    """One executed (pass, fixpoint-iteration) step of the -O2 schedule."""

    index: int        # 0-based position in the flattened schedule
    iteration: int    # fixpoint iteration the invocation ran in
    name: str
    changed: bool

    def describe(self) -> str:
        return f"#{self.index} {self.name} (iteration {self.iteration})"


class AttributedFailure(Exception):
    """A verifier/sanitizer/crash failure pinned to one pass invocation."""

    def __init__(self, kind: str, invocation: PassInvocation, detail: str,
                 diagnostics=None):
        self.kind = kind                  # "verifier" | "sanitizer" | "crash"
        self.invocation = invocation
        self.detail = detail
        self.pass_name = invocation.name
        self.diagnostics = list(diagnostics or [])
        super().__init__(f"{kind} after {invocation.describe()}: {detail}")


def run_o2_with_attribution(
    module: Module,
    *,
    pipeline: Optional[PipelineFactory] = None,
    sanitizer=None,
    max_invocations: Optional[int] = None,
    max_iters: int = MAX_FIXPOINT_ITERS,
) -> List[PassInvocation]:
    """Run the -O2 fixpoint schedule on *module* (in place), checking after
    every invocation.

    Raises :class:`AttributedFailure` on the first pass that crashes,
    breaks the IR verifier, or (when *sanitizer* is a
    :class:`~repro.analysis.sanitizer.ProbeIntegritySanitizer`) distorts a
    probe with error severity.  Returns the executed invocation schedule.
    ``max_invocations`` stops the replay after that many invocations —
    the prefix primitive.
    """
    passes = list((pipeline or default_pipeline)())
    ctx = OptContext()
    schedule: List[PassInvocation] = []
    for iteration in range(max_iters):
        any_change = False
        for p in passes:
            if max_invocations is not None and len(schedule) >= max_invocations:
                return schedule
            invocation = PassInvocation(len(schedule), iteration, p.name, False)
            try:
                changed = bool(p.run(module, ctx))
            except Exception as exc:
                raise AttributedFailure(
                    "crash", invocation, f"{type(exc).__name__}: {exc}"
                ) from exc
            invocation = PassInvocation(len(schedule), iteration, p.name, changed)
            schedule.append(invocation)
            any_change = any_change or changed
            try:
                verify_module(module)
            except Exception as exc:
                raise AttributedFailure("verifier", invocation, str(exc)) from exc
            if sanitizer is not None:
                findings = sanitizer.advance(p.name)
                errors = [d for d in findings if d.is_error]
                if errors:
                    raise AttributedFailure(
                        "sanitizer", invocation,
                        "; ".join(str(d) for d in errors), errors,
                    )
        if not any_change:
            break
    return schedule


def apply_o2_prefix(
    module: Module,
    k: int,
    *,
    pipeline: Optional[PipelineFactory] = None,
    max_iters: int = MAX_FIXPOINT_ITERS,
) -> List[PassInvocation]:
    """Apply exactly the first *k* invocations of the -O2 schedule."""
    return run_o2_with_attribution(
        module, pipeline=pipeline, max_invocations=k, max_iters=max_iters
    )


@dataclass(frozen=True)
class BisectResult:
    """Outcome of a prefix bisection."""

    pass_name: str
    invocation: PassInvocation
    schedule_length: int

    def describe(self) -> str:
        return (
            f"first divergence after {self.invocation.describe()} "
            f"of {self.schedule_length} invocations"
        )


def bisect_divergence(
    fresh_module: Callable[[], Module],
    diverges: Callable[[Module], bool],
    *,
    pipeline: Optional[PipelineFactory] = None,
) -> Optional[BisectResult]:
    """Pin the first pass invocation whose output behaviourally diverges.

    *fresh_module* must return a new unoptimized module each call;
    *diverges* judges a (partially) optimized module against the -O0
    ground truth.  Returns ``None`` if even the full schedule does not
    diverge (e.g. the divergence needed the backend, not the middle end).
    """
    probe = fresh_module()
    schedule = apply_o2_prefix(probe, 10**9, pipeline=pipeline)
    total = len(schedule)
    if not diverges(probe):
        return None

    def diverges_at(k: int) -> bool:
        module = fresh_module()
        apply_o2_prefix(module, k, pipeline=pipeline)
        return diverges(module)

    # Invariant: prefix `lo` matches -O0, prefix `hi` diverges.
    lo, hi = 0, total
    if diverges_at(0):  # the "empty" prefix cannot diverge by definition
        raise RuntimeError("module diverges before any pass ran")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if diverges_at(mid):
            hi = mid
        else:
            lo = mid
    culprit = schedule[hi - 1]
    return BisectResult(culprit.name, culprit, total)
