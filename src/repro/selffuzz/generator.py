"""Seeded MiniC program generator with composition styles.

Grammar-level composition-style testing (Zhou et al., PAPERS.md): instead
of sampling the grammar uniformly, each *style* is a weighted template
that deliberately arranges the pass interactions the -O2 pipeline is
known to chain —

========================  =====================================================
style                     pass composition it steers toward
========================  =====================================================
``inline-chain``          call chains of tiny helpers with constant leaves:
                          inline -> sccp/instcombine constant collapse
``unroll-thread``         small constant-trip loops whose bodies branch on
                          the induction variable: loop-unroll x jump-threading
``diamond``               locals written on both arms of if/else diamonds:
                          mem2reg phi insertion x simplifycfg collapse
``cse-calls``             repeated pure subexpressions straddling calls:
                          early-cse across call boundaries (+ inline)
``mixed``                 one helper from each of the above in one unit
========================  =====================================================

Every generated program is well-typed and UB-free **by construction**, so
the -O0 run is the behavioural ground truth:

* all locals and globals are initialized before use;
* every divisor is forced odd (``expr | 1``) — never zero;
* every array index is masked to the array bounds (power-of-two sizes);
* loops have constant trip counts or strictly decreasing counters;
* calls form a DAG (helpers only call lower-numbered helpers) — no
  recursion, so termination is structural.

Shift amounts and signed overflow are deliberately *not* restricted: the
IR semantics (:mod:`repro.ir.semantics`) define both totally, so folding
them is exactly the folder-vs-VM agreement selffuzz exists to test.

Determinism: one :class:`~repro.utils.rng.DeterministicRNG` seeded from
``(campaign seed, program index)`` drives every choice, so a fixed seed,
index and style mix always yields byte-identical source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import DeterministicRNG

STYLE_INLINE_CHAIN = "inline-chain"
STYLE_UNROLL_THREAD = "unroll-thread"
STYLE_DIAMOND = "diamond"
STYLE_CSE_CALLS = "cse-calls"
STYLE_MIXED = "mixed"

ALL_STYLES = (
    STYLE_INLINE_CHAIN,
    STYLE_UNROLL_THREAD,
    STYLE_DIAMOND,
    STYLE_CSE_CALLS,
    STYLE_MIXED,
)

#: Default style mix: every composition style with equal weight.
DEFAULT_MIX: Dict[str, float] = {style: 1.0 for style in ALL_STYLES}

# Constants that sit on fold boundaries: type extremes, powers of two,
# and shift amounts at/over the 32-bit width.
_INTERESTING = (
    0, 1, 2, 3, 5, 7, 8, 15, 16, 31, 32, 33, 63, 64, 100, 127, 128,
    255, 256, 1000, 4096, 65535, 2147483647,
)


def parse_style_mix(spec: Optional[str]) -> Dict[str, float]:
    """Parse ``style[=weight],...`` into a weight map (CLI surface).

    ``None`` or the empty string yields the default equal-weight mix.
    """
    if not spec:
        return dict(DEFAULT_MIX)
    mix: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, raw = part.split("=", 1)
            weight = float(raw)
        else:
            name, weight = part, 1.0
        name = name.strip()
        if name not in ALL_STYLES:
            raise ValueError(
                f"unknown composition style {name!r} "
                f"(choose from {', '.join(ALL_STYLES)})"
            )
        if weight <= 0:
            raise ValueError(f"style weight must be positive: {part!r}")
        mix[name] = mix.get(name, 0.0) + weight
    return mix


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated MiniC unit plus the provenance needed to replay it."""

    name: str
    style: str
    seed: int
    index: int
    source: str


class _FuncSpec:
    """A helper function available for calls: name + parameter count."""

    def __init__(self, name: str, params: int):
        self.name = name
        self.params = params


class _Emitter:
    """Generates one function body: scope tracking + safe expressions."""

    def __init__(self, rng: DeterministicRNG, callees: Sequence[_FuncSpec]):
        self.rng = rng
        self.callees = list(callees)
        self.lines: List[str] = []
        self.scope: List[str] = []     # in-scope int variables
        self.arrays: List[Tuple[str, int]] = []  # (name, power-of-two size)
        self._fresh = 0

    def fresh(self, prefix: str = "v") -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def emit(self, text: str, depth: int) -> None:
        self.lines.append("    " * depth + text)

    # -- safe expressions ---------------------------------------------------

    def const(self) -> str:
        value = self.rng.choice(_INTERESTING)
        if self.rng.chance(0.3):
            value = -value
        return f"({value})" if value < 0 else str(value)

    def leaf(self) -> str:
        if self.scope and self.rng.chance(0.6):
            return self.rng.choice(self.scope)
        return self.const()

    def expr(self, depth: int = 0) -> str:
        """A well-defined int expression over the current scope."""
        if depth >= 3 or self.rng.chance(0.25):
            return self.leaf()
        roll = self.rng.random()
        a = self.expr(depth + 1)
        b = self.expr(depth + 1)
        if roll < 0.45:
            op = self.rng.choice(("+", "-", "*", "&", "|", "^"))
            return f"({a} {op} {b})"
        if roll < 0.60:
            # Shifts: amounts are sometimes masked, sometimes raw — the
            # semantics define out-of-range shifts, so folding them must
            # agree with the VM.
            op = self.rng.choice(("<<", ">>"))
            if self.rng.chance(0.5):
                return f"({a} {op} ({b} & 31))"
            return f"({a} {op} {self.rng.randint(0, 40)})"
        if roll < 0.72:
            # Division: the divisor is forced odd, hence never zero.
            op = self.rng.choice(("/", "%"))
            return f"({a} {op} ({b} | 1))"
        if roll < 0.84:
            pred = self.rng.choice(("<", "<=", ">", ">=", "==", "!="))
            return f"({a} {pred} {b})"
        if roll < 0.92:
            return f"(({a} {self.rng.choice(('<', '>', '=='))} {b}) ? {self.expr(depth + 1)} : {self.expr(depth + 1)})"
        op = self.rng.choice(("-", "~", "!"))
        return f"({op}{a})"

    def call_expr(self) -> Optional[str]:
        """A call to one of the available (lower-numbered) helpers."""
        if not self.callees:
            return None
        spec = self.rng.choice(self.callees)
        args = ", ".join(self.expr(2) for _ in range(spec.params))
        return f"{spec.name}({args})"

    # -- statements ---------------------------------------------------------

    def decl(self, depth: int, init: Optional[str] = None) -> str:
        name = self.fresh()
        self.emit(f"int {name} = {init if init is not None else self.expr(1)};", depth)
        self.scope.append(name)
        return name

    def assign(self, depth: int) -> None:
        if not self.scope:
            self.decl(depth)
            return
        target = self.rng.choice(self.scope)
        if self.rng.chance(0.3):
            op = self.rng.choice(("+=", "-=", "^=", "&=", "|="))
            self.emit(f"{target} {op} {self.expr(1)};", depth)
        else:
            self.emit(f"{target} = {self.expr(1)};", depth)

    def array_decl(self, depth: int) -> None:
        name = self.fresh("a")
        size = self.rng.choice((4, 8))
        items = ", ".join(self.const() for _ in range(size))
        self.emit(f"int {name}[{size}] = {{{items}}};", depth)
        self.arrays.append((name, size))

    def array_touch(self, depth: int) -> None:
        if not self.arrays:
            return
        name, size = self.rng.choice(self.arrays)
        index = f"({self.expr(2)} & {size - 1})"
        if self.rng.chance(0.5) and self.scope:
            target = self.rng.choice(self.scope)
            self.emit(f"{target} ^= {name}[{index}];", depth)
        else:
            self.emit(f"{name}[{index}] = {self.expr(1)};", depth)


class ProgramGenerator:
    """Deterministic generator over the MiniC grammar, steered by styles."""

    def __init__(self, seed: int = 0, mix: Optional[Dict[str, float]] = None):
        self.seed = seed
        self.mix = dict(mix) if mix else dict(DEFAULT_MIX)
        for style in self.mix:
            if style not in ALL_STYLES:
                raise ValueError(f"unknown composition style {style!r}")
        self._styles = sorted(self.mix)
        self._weights = [self.mix[s] for s in self._styles]

    # -- public API ---------------------------------------------------------

    def generate(self, index: int) -> GeneratedProgram:
        """Generate program *index* of this campaign (pure in seed/index)."""
        rng = DeterministicRNG((self.seed << 24) ^ (index * 2654435761 & 0xFFFFFF))
        style = self._pick_style(rng)
        source = self._generate_source(style, rng)
        return GeneratedProgram(
            name=f"selffuzz_{self.seed}_{index}",
            style=style,
            seed=self.seed,
            index=index,
            source=source,
        )

    def _pick_style(self, rng: DeterministicRNG) -> str:
        total = sum(self._weights)
        roll = rng.random() * total
        acc = 0.0
        for style, weight in zip(self._styles, self._weights):
            acc += weight
            if roll < acc:
                return style
        return self._styles[-1]

    # -- program scaffolding ------------------------------------------------

    def _generate_source(self, style: str, rng: DeterministicRNG) -> str:
        lines: List[str] = [f"/* selffuzz style={style} */"]
        n_globals = rng.randint(1, 3)
        globals_: List[str] = []
        for i in range(n_globals):
            name = f"g{i}"
            globals_.append(name)
            lines.append(f"int {name} = {rng.choice(_INTERESTING)};")
        lines.append("")

        helpers: List[_FuncSpec] = []
        if style == STYLE_MIXED:
            builders = [self._helper_inline_chain, self._helper_unroll_thread,
                        self._helper_diamond, self._helper_cse]
            rng.shuffle(builders)
            chosen = builders[: rng.randint(2, len(builders))]
        else:
            builder = {
                STYLE_INLINE_CHAIN: self._helper_inline_chain,
                STYLE_UNROLL_THREAD: self._helper_unroll_thread,
                STYLE_DIAMOND: self._helper_diamond,
                STYLE_CSE_CALLS: self._helper_cse,
            }[style]
            chosen = [builder] * rng.randint(2, 3)
        for build in chosen:
            spec, text = build(rng, helpers, globals_)
            helpers.append(spec)
            lines.extend(text)
            lines.append("")

        lines.extend(self._main(rng, helpers, globals_))
        return "\n".join(lines) + "\n"

    def _main(self, rng: DeterministicRNG, helpers: List[_FuncSpec],
              globals_: List[str]) -> List[str]:
        em = _Emitter(rng, helpers)
        em.emit("int main(void)", 0)
        em.emit("{", 0)
        acc = em.fresh("acc")
        em.emit(f"int {acc} = 0;", 1)
        em.scope.append(acc)
        for name in globals_:
            em.scope.append(name)
        # Call every helper at least once so nothing is trivially dead,
        # then a few extra calls with fresh arguments.
        for spec in helpers:
            args = ", ".join(em.expr(2) for _ in range(spec.params))
            em.emit(f"{acc} ^= {spec.name}({args});", 1)
        for _ in range(rng.randint(1, 3)):
            call = em.call_expr()
            if call is not None:
                em.emit(f"{acc} = ({acc} * 31) + {call};", 1)
        for name in globals_:
            em.emit(f"{acc} ^= {name};", 1)
        em.emit(f'printf("%d\\n", {acc});', 1)
        em.emit(f"return {acc} & 127;", 1)
        em.emit("}", 0)
        return em.lines

    # -- style templates ----------------------------------------------------

    def _helper_inline_chain(
        self, rng: DeterministicRNG, helpers: List[_FuncSpec],
        globals_: List[str],
    ) -> Tuple[_FuncSpec, List[str]]:
        """Tiny body under the inline threshold; calls the previous helper
        with partially-constant arguments so inlining exposes folds."""
        name = f"f{len(helpers)}"
        params = rng.randint(1, 2)
        em = _Emitter(rng, helpers)
        em.scope.extend(f"p{i}" for i in range(params))
        header = f"int {name}({', '.join(f'int p{i}' for i in range(params))})"
        em.emit(header, 0)
        em.emit("{", 0)
        result = em.expr(1)
        prev = em.call_expr()
        if prev is not None and rng.chance(0.8):
            # Constant leaves at the callsite: inline -> constant folding.
            result = f"({result} + {prev})"
        em.emit(f"return {result};", 1)
        em.emit("}", 0)
        return _FuncSpec(name, params), em.lines

    def _helper_unroll_thread(
        self, rng: DeterministicRNG, helpers: List[_FuncSpec],
        globals_: List[str],
    ) -> Tuple[_FuncSpec, List[str]]:
        """Constant-trip loop (within the unroll threshold) whose body
        branches on the induction variable: unroll x jump-threading."""
        name = f"f{len(helpers)}"
        params = rng.randint(1, 2)
        em = _Emitter(rng, helpers)
        em.scope.extend(f"p{i}" for i in range(params))
        em.emit(f"int {name}({', '.join(f'int p{i}' for i in range(params))})", 0)
        em.emit("{", 0)
        acc = em.decl(1, "0")
        trip = rng.randint(2, 8)  # LoopUnroll's MAX_TRIP_COUNT is 8
        ivar = em.fresh("i")
        em.emit(f"for (int {ivar} = 0; {ivar} < {trip}; {ivar}++)", 1)
        em.emit("{", 1)
        em.scope.append(ivar)
        # Branch on the induction variable: after unrolling each copy's
        # condition is constant, which is jump-threading's food.
        cond = rng.choice((f"({ivar} & 1)", f"({ivar} < {rng.randint(1, trip)})",
                           f"({ivar} == {rng.randint(0, trip - 1)})"))
        em.emit(f"if ({cond})", 2)
        em.emit("{", 2)
        em.emit(f"{acc} += {em.expr(1)};", 3)
        em.emit("}", 2)
        em.emit("else", 2)
        em.emit("{", 2)
        em.emit(f"{acc} ^= {em.expr(1)};", 3)
        em.emit("}", 2)
        em.emit("}", 1)
        em.scope.remove(ivar)
        if rng.chance(0.4):
            # A second, while-shaped loop with a decreasing counter.
            n = em.fresh("n")
            em.emit(f"int {n} = {rng.randint(1, 6)};", 1)
            em.emit(f"while ({n} > 0)", 1)
            em.emit("{", 1)
            em.emit(f"{acc} = ({acc} + {em.expr(2)});", 2)
            em.emit(f"{n} = {n} - 1;", 2)
            em.emit("}", 1)
        em.emit(f"return {acc};", 1)
        em.emit("}", 0)
        return _FuncSpec(name, params), em.lines

    def _helper_diamond(
        self, rng: DeterministicRNG, helpers: List[_FuncSpec],
        globals_: List[str],
    ) -> Tuple[_FuncSpec, List[str]]:
        """Locals written on both arms of (possibly nested) diamonds —
        mem2reg phi insertion, simplifycfg collapse, select formation."""
        name = f"f{len(helpers)}"
        params = rng.randint(1, 3)
        em = _Emitter(rng, helpers)
        em.scope.extend(f"p{i}" for i in range(params))
        em.emit(f"int {name}({', '.join(f'int p{i}' for i in range(params))})", 0)
        em.emit("{", 0)
        if rng.chance(0.4):
            em.array_decl(1)
        locals_ = [em.decl(1) for _ in range(rng.randint(2, 3))]
        for _ in range(rng.randint(1, 3)):
            target = rng.choice(locals_)
            em.emit(f"if ({em.expr(1)})", 1)
            em.emit("{", 1)
            if rng.chance(0.3):
                # Same value on both arms: the phi is foldable.
                value = em.expr(1)
                em.emit(f"{target} = {value};", 2)
                em.emit("}", 1)
                em.emit("else", 1)
                em.emit("{", 1)
                em.emit(f"{target} = {value};", 2)
            else:
                em.emit(f"{target} = {em.expr(1)};", 2)
                if rng.chance(0.5):
                    em.emit(f"if ({em.expr(2)})", 2)
                    em.emit("{", 2)
                    em.emit(f"{target} ^= {em.expr(2)};", 3)
                    em.emit("}", 2)
                em.emit("}", 1)
                em.emit("else", 1)
                em.emit("{", 1)
                em.emit(f"{target} = {em.expr(1)};", 2)
            em.emit("}", 1)
            em.array_touch(1)
        result = " ^ ".join(locals_)
        em.emit(f"return ({result});", 1)
        em.emit("}", 0)
        return _FuncSpec(name, params), em.lines

    def _helper_cse(
        self, rng: DeterministicRNG, helpers: List[_FuncSpec],
        globals_: List[str],
    ) -> Tuple[_FuncSpec, List[str]]:
        """Repeated pure subexpressions, re-materialized across calls and
        global stores — EarlyCSE must prove availability to merge them."""
        name = f"f{len(helpers)}"
        params = rng.randint(1, 2)
        em = _Emitter(rng, helpers)
        em.scope.extend(f"p{i}" for i in range(params))
        em.emit(f"int {name}({', '.join(f'int p{i}' for i in range(params))})", 0)
        em.emit("{", 0)
        common = em.expr(1)
        a = em.decl(1, common)
        between = em.call_expr()
        if between is not None and globals_ and rng.chance(0.6):
            # A call and a global store between the two copies: the
            # second copy is only CSE-able if the pass reasons correctly
            # about memory effects.
            em.emit(f"{rng.choice(globals_)} += {between};", 1)
        elif between is not None:
            em.emit(f"{a} ^= {between};", 1)
        b = em.decl(1, common)
        c = em.decl(1, f"({a} + {b})")
        if globals_ and rng.chance(0.5):
            g = rng.choice(globals_)
            em.scope.append(g)
            em.emit(f"{c} ^= ({g} * {em.const()});", 1)
        em.emit(f"return ({c} - ({common}));", 1)
        em.emit("}", 0)
        return _FuncSpec(name, params), em.lines
