"""Differential selffuzz harness: -O0 ground truth vs the -O2 pipeline.

Every generated program runs through four legs:

1. **frontend + verifier** — the program must compile to verifier-clean
   IR (a generator invariant; a failure here is a generator bug);
2. **-O0 behaviour** — lower and execute the unoptimized module: the
   ground truth (generated programs are UB-free by construction);
3. **-O2 replay with attribution** — the exact ``optimize(level=2)``
   fixpoint schedule, re-verifying after every pass invocation
   (:func:`repro.selffuzz.bisect.run_o2_with_attribution`), then a
   behaviour comparison against the -O0 run;
4. **probe-integrity leg** — the same -O2 replay over a clone carrying
   one coverage probe per basic block, watched by the
   :class:`~repro.analysis.sanitizer.ProbeIntegritySanitizer` after every
   pass — the Odin-specific failure mode (a pass silently erasing,
   duplicating or unanchoring instrumentation).

Cycle counts are *not* compared: -O2 exists to change them.  Exit code,
stdout and trap state must be identical.

Behavioural divergences are attributed by prefix bisection
(:func:`repro.selffuzz.bisect.bisect_divergence`); verifier, sanitizer
and crash failures carry their pass attribution directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import ProbeIntegritySanitizer
from repro.backend.isel import lower_module
from repro.frontend import compile_source
from repro.instrument.coverage import ODIN_COV_RUNTIME, _COV_FN_TYPE
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.ir.types import I64
from repro.ir.values import ConstantInt
from repro.ir.verifier import verify_module
from repro.linker.linker import link
from repro.opt.pipeline import optimize
from repro.selffuzz.bisect import (
    AttributedFailure,
    BisectResult,
    PipelineFactory,
    bisect_divergence,
    run_o2_with_attribution,
)
from repro.selffuzz.generator import GeneratedProgram, ProgramGenerator
from repro.vm.interpreter import VM

STATUS_OK = "ok"
STATUS_DIVERGENCE = "behaviour-divergence"
STATUS_VERIFIER = "verifier-error"
STATUS_SANITIZER = "sanitizer-error"
STATUS_PASS_CRASH = "pass-crash"
STATUS_FRONTEND = "frontend-error"
#: The backend/linker/VM raised (not a guest trap — those are Behaviour
#: state).  At -O0 this is a toolchain bug regardless of the pipeline;
#: after -O2 it means the optimized module broke the backend.
STATUS_O0_CRASH = "o0-crash"
STATUS_BACKEND = "backend-crash"

#: Step budget per generated-program execution — far above any generated
#: workload, far below the default VM ceiling, so runaway programs fail
#: fast instead of hanging the sweep.
MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class Behaviour:
    """The compared observable state of one execution."""

    exit_code: int
    stdout: bytes
    trap: Optional[str]

    def mismatches(self, other: "Behaviour") -> List[str]:
        out = []
        if self.exit_code != other.exit_code:
            out.append(f"exit_code {self.exit_code} != {other.exit_code}")
        if self.stdout != other.stdout:
            out.append(f"stdout {self.stdout!r} != {other.stdout!r}")
        if self.trap != other.trap:
            out.append(f"trap {self.trap!r} != {other.trap!r}")
        return out


@dataclass
class Verdict:
    """What the harness concluded about one program."""

    name: str
    status: str
    style: str = ""
    seed: int = 0
    index: int = 0
    pass_name: Optional[str] = None
    detail: str = ""
    mismatches: List[str] = field(default_factory=list)
    source: str = ""
    minimized_source: Optional[str] = None
    bisect: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def signature(self) -> Tuple[str, Optional[str]]:
        """The failure identity the minimizer must preserve.

        Behavioural divergences keep only the *category*: a reduction
        that still diverges is the same bug even if the diverging value
        changed (the bisected pass re-confirms identity afterwards).
        """
        if self.status == STATUS_DIVERGENCE:
            return (self.status, None)
        return (self.status, self.pass_name)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "status": self.status,
            "style": self.style,
            "seed": self.seed,
            "index": self.index,
            "pass": self.pass_name,
            "detail": self.detail,
            "mismatches": list(self.mismatches),
            "bisect": self.bisect,
            "source": self.source,
            "minimized_source": self.minimized_source,
        }


def run_module(module: Module, *, max_steps: int = MAX_STEPS) -> Behaviour:
    """Lower, link and execute ``main`` of an (optimized or not) module."""
    executable = link([lower_module(module)])
    result = VM(executable, max_steps=max_steps).run("main")
    return Behaviour(result.exit_code, result.stdout, result.trap)


def o0_behaviour(module: Module, *, max_steps: int = MAX_STEPS) -> Behaviour:
    """Ground truth: execute a clone of *module* without optimization."""
    clone = clone_module(module, f"{module.name}.o0").module
    optimize(clone, 0)
    return run_module(clone, max_steps=max_steps)


def instrument_blocks(module: Module) -> int:
    """One coverage-probe call per basic block, engine-free.

    Mirrors ``OdinCov.add_all_block_probes`` minus the probe manager: a
    ``__odin_cov_hit(id)`` call at each block head gives the
    probe-integrity sanitizer a footprint to watch across the pipeline.
    Returns the number of probes inserted.
    """
    runtime = module.declare_function(ODIN_COV_RUNTIME, _COV_FN_TYPE)
    probe_id = 0
    for fn in module.defined_functions():
        for block in fn.blocks:
            anchor = block.non_phi_instructions()[0]
            builder = IRBuilder.before(anchor)
            builder.call(runtime, [ConstantInt(I64, probe_id)], _COV_FN_TYPE)
            probe_id += 1
    return probe_id


class SelfFuzzHarness:
    """Runs one MiniC source through every differential leg."""

    def __init__(
        self,
        *,
        pipeline: Optional[PipelineFactory] = None,
        sanitize: bool = True,
        attribute: bool = True,
        max_steps: int = MAX_STEPS,
    ):
        self.pipeline = pipeline
        self.sanitize = sanitize
        self.attribute = attribute
        self.max_steps = max_steps

    # -- entry points -------------------------------------------------------

    def check_program(self, program: GeneratedProgram) -> Verdict:
        verdict = self.check_source(program.source, program.name)
        verdict.style = program.style
        verdict.seed = program.seed
        verdict.index = program.index
        return verdict

    def check_source(self, source: str, name: str = "selffuzz") -> Verdict:
        try:
            module = compile_source(source, name)
            verify_module(module)
        except Exception as exc:  # frontend error OR verifier-unclean IR
            return Verdict(
                name=name, status=STATUS_FRONTEND,
                detail=f"{type(exc).__name__}: {exc}", source=source,
            )

        try:
            reference = o0_behaviour(module, max_steps=self.max_steps)
        except Exception as exc:
            return Verdict(
                name=name, status=STATUS_O0_CRASH,
                detail=f"{type(exc).__name__}: {exc}", source=source,
            )

        # Leg 3: plain -O2 replay + behaviour comparison.
        o2 = clone_module(module, f"{name}.o2").module
        try:
            run_o2_with_attribution(o2, pipeline=self.pipeline)
        except AttributedFailure as failure:
            status = (STATUS_VERIFIER if failure.kind == "verifier"
                      else STATUS_PASS_CRASH)
            return Verdict(
                name=name, status=status, pass_name=failure.pass_name,
                detail=failure.detail, source=source,
            )
        try:
            optimized = run_module(o2, max_steps=self.max_steps)
        except Exception as exc:
            return Verdict(
                name=name, status=STATUS_BACKEND,
                detail=f"{type(exc).__name__}: {exc}", source=source,
            )
        mismatches = reference.mismatches(optimized)
        if mismatches:
            verdict = Verdict(
                name=name, status=STATUS_DIVERGENCE,
                mismatches=mismatches, source=source,
                detail="; ".join(mismatches),
            )
            if self.attribute:
                self.attribute_divergence(verdict)
            return verdict

        # Leg 4: probe-integrity sanitizer over an instrumented clone.
        if self.sanitize:
            instrumented = clone_module(module, f"{name}.cov").module
            instrument_blocks(instrumented)
            verify_module(instrumented)
            sanitizer = ProbeIntegritySanitizer(instrumented)
            try:
                run_o2_with_attribution(
                    instrumented, pipeline=self.pipeline, sanitizer=sanitizer
                )
            except AttributedFailure as failure:
                status = {
                    "verifier": STATUS_VERIFIER,
                    "sanitizer": STATUS_SANITIZER,
                }.get(failure.kind, STATUS_PASS_CRASH)
                return Verdict(
                    name=name, status=status, pass_name=failure.pass_name,
                    detail=failure.detail, source=source,
                )

        return Verdict(name=name, status=STATUS_OK, source=source)

    # -- attribution --------------------------------------------------------

    def attribute_divergence(self, verdict: Verdict) -> Optional[BisectResult]:
        """Pin a behavioural divergence to its first diverging pass."""
        source, name = verdict.source, verdict.name
        reference = o0_behaviour(
            compile_source(source, name), max_steps=self.max_steps
        )

        def fresh() -> Module:
            return compile_source(source, name)

        def diverges(module: Module) -> bool:
            probe = clone_module(module, f"{module.name}.probe").module
            try:
                behaviour = run_module(probe, max_steps=self.max_steps)
            except Exception:
                # A prefix that breaks the backend does not behave like
                # -O0 either; bisection then pins the breaking pass.
                return True
            return bool(reference.mismatches(behaviour))

        result = bisect_divergence(fresh, diverges, pipeline=self.pipeline)
        if result is not None:
            verdict.pass_name = result.pass_name
            verdict.bisect = result.describe()
        return result


@dataclass
class CampaignReport:
    """Aggregated outcome of one ``repro selffuzz`` sweep."""

    seed: int
    count: int
    styles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    passes: Dict[str, int] = field(default_factory=dict)
    failures: List[Verdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, verdict: Verdict) -> None:
        style = self.styles.setdefault(
            verdict.style or "?", {"programs": 0, "failures": 0}
        )
        style["programs"] += 1
        if not verdict.ok:
            style["failures"] += 1
            self.failures.append(verdict)
            if verdict.pass_name:
                self.passes[verdict.pass_name] = (
                    self.passes.get(verdict.pass_name, 0) + 1
                )

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "ok": self.ok,
            "styles": {k: dict(v) for k, v in sorted(self.styles.items())},
            "passes": dict(sorted(self.passes.items())),
            "failures": [v.to_dict() for v in self.failures],
        }

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"selffuzz seed={self.seed}: {self.count} programs "
            f"across {len(self.styles)} styles, {status}"
        )


class SelfFuzzCampaign:
    """Generator x harness loop with optional auto-minimization."""

    def __init__(
        self,
        *,
        seed: int = 0,
        count: int = 100,
        mix: Optional[Dict[str, float]] = None,
        minimize: bool = False,
        harness: Optional[SelfFuzzHarness] = None,
        on_program: Optional[Callable[[Verdict], None]] = None,
    ):
        self.generator = ProgramGenerator(seed, mix)
        self.harness = harness or SelfFuzzHarness()
        self.seed = seed
        self.count = count
        self.minimize = minimize
        self.on_program = on_program

    def run(self) -> CampaignReport:
        report = CampaignReport(seed=self.seed, count=self.count)
        for index in range(self.count):
            program = self.generator.generate(index)
            verdict = self.harness.check_program(program)
            if not verdict.ok and self.minimize:
                self._minimize(verdict)
            report.record(verdict)
            if self.on_program is not None:
                self.on_program(verdict)
        return report

    def _minimize(self, verdict: Verdict) -> None:
        from repro.selffuzz.minimize import Minimizer

        minimizer = Minimizer(self.harness, verdict.signature())
        result = minimizer.minimize(verdict.source, verdict.name)
        verdict.minimized_source = result.source
        # Re-attribute on the minimized program: smaller replays, and the
        # minimized reproducer is what ships to the corpus.
        if verdict.status == STATUS_DIVERGENCE:
            small = Verdict(
                name=verdict.name, status=STATUS_DIVERGENCE,
                source=result.source,
            )
            if self.harness.attribute_divergence(small) is not None:
                verdict.pass_name = small.pass_name
                verdict.bisect = small.bisect
