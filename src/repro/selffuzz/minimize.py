"""Dataflow-guided auto-minimization of selffuzz reproducers.

The minimizer works on the MiniC **AST** (parse → mutate →
:func:`repro.frontend.printer.print_unit` → re-check), never on raw
text, so every candidate is syntactically valid by construction.
Soundness needs no cleverness: the oracle — the same differential
harness that found the bug — re-runs after *every* candidate reduction,
and a reduction is kept only if the failure signature survives.  The
dataflow analyses only *steer* which reductions to try first; they can
be arbitrarily wrong without ever producing a wrong reproducer.

Reduction runs in four phases, coarse to fine:

1. **top-level** — drop whole functions and globals (callees of a
   deleted caller become droppable in later rounds);
2. **dataflow-guided batch** — compile the candidate at -O0 and run the
   output-relevance closure over each function:
   :class:`~repro.analysis.dataflow.ReachingStores` tells which stores a
   relevant load may observe and :class:`~repro.analysis.dataflow.Liveness`
   seeds the SSA values feeding observable effects (returns, calls,
   global/escaping stores).  Local variables whose allocas stay outside
   the closure provably cannot affect the divergence, so every statement
   that only writes them is deleted in one batch — the wholesale step
   that makes 200-statement reproducers tractable;
3. **block-level delta debugging** — classic ddmin chunk removal over
   every statement list, halving chunk sizes;
4. **statement fixpoint** — try deleting every single remaining
   statement (and declarator, and else-arm) until none can go: the
   result is 1-minimal by definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    Liveness,
    ReachingStores,
    escaping_allocas,
    solve,
)
from repro.frontend import ast, compile_source, parse
from repro.frontend.printer import print_unit
from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    GepInst,
    Instruction,
    LoadInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Function
from repro.ir.values import Value


@dataclass
class MinimizeResult:
    """Outcome of one minimization run."""

    source: str
    original_statements: int
    final_statements: int
    checks: int
    rounds: int
    one_minimal: bool

    def describe(self) -> str:
        return (
            f"{self.original_statements} -> {self.final_statements} statements "
            f"in {self.checks} oracle checks"
            f"{' (1-minimal)' if self.one_minimal else ''}"
        )


# -- IR-side output-relevance closure ---------------------------------------------


def _pointer_root(value: Value) -> Value:
    while isinstance(value, GepInst):
        value = value.base
    return value


def relevant_allocas(fn: Function) -> Set[AllocaInst]:
    """Allocas that may feed an observable effect of *fn*.

    Observable effects are returns, calls (any call: the callee may
    print, trap, or write globals) and stores through non-local
    pointers.  :class:`Liveness` seeds the closure with the SSA values
    those effects consume; :class:`ReachingStores` closes the memory
    edge: when a load from slot A is relevant, exactly the stores that
    may reach it (not every store to A ever) join the frontier.
    Escaping allocas are relevant wholesale — aliases are untrackable.
    """
    escaped = escaping_allocas(fn)
    tracked = [
        inst
        for block in fn.blocks
        for inst in block.instructions
        if isinstance(inst, AllocaInst) and inst not in escaped
    ]
    reaching = ReachingStores(tracked)
    reaching_in = solve(reaching, fn).block_in
    live_in = solve(Liveness(), fn).block_in

    # Reaching-store state immediately before each instruction.
    before: Dict[Instruction, Dict] = {}
    for block in fn.blocks:
        state = dict(reaching_in.get(block, {}))
        for inst in block.instructions:
            before[inst] = {k: v for k, v in state.items()}
            reaching.step(inst, state)

    relevant: Set[Value] = set()
    worklist: List[Value] = []

    def push(value: Value) -> None:
        if isinstance(value, Instruction) and value not in relevant:
            relevant.add(value)
            worklist.append(value)

    for block in fn.blocks:
        # Anything live into a block is consumed by an effect eventually
        # reached from it only if the consumer itself is relevant, so
        # liveness alone cannot seed; effects do.
        for inst in block.instructions:
            if isinstance(inst, (RetInst, CallInst)):
                push(inst)
            elif inst.is_terminator:
                push(inst)
            elif isinstance(inst, StoreInst):
                root = _pointer_root(inst.pointer)
                if not isinstance(root, AllocaInst) or root in escaped:
                    push(inst)  # store to a global / escaped slot

    while worklist:
        inst = worklist.pop()
        assert isinstance(inst, Instruction)
        for op in inst.operands:
            push(op)
        if isinstance(inst, LoadInst):
            root = _pointer_root(inst.pointer)
            if isinstance(root, AllocaInst):
                push(root)
                for store in before.get(inst, {}).get(root, ()):  # may-reach set
                    if isinstance(store, StoreInst):
                        push(store)

    out: Set[AllocaInst] = set(escaped)
    for value in relevant:
        if isinstance(value, AllocaInst):
            out.add(value)
        elif isinstance(value, StoreInst):
            root = _pointer_root(value.pointer)
            if isinstance(root, AllocaInst):
                out.add(root)
    # Independent Liveness net: a load that is live across a block edge
    # has a consumer somewhere downstream; if the closure mis-modelled
    # that consumer the slot would be wrongly batch-deleted, so keep any
    # slot whose loads cross block boundaries.  Two analyses must now
    # *agree* a slot is dead before the batch phase touches it.
    for state in live_in.values():
        for value in state:
            if isinstance(value, LoadInst):
                root = _pointer_root(value.pointer)
                if isinstance(root, AllocaInst):
                    out.add(root)
    return out


def dead_local_names(fn: Function) -> Set[str]:
    """Source-variable names provably unable to affect *fn*'s behaviour.

    Allocas are named after their source variable (uniquified with a
    ``.N`` suffix); a *name* is dead only if **every** alloca sharing its
    base name is outside the relevance closure, which keeps shadowed
    variables conservative.
    """
    keep = {a.name.split(".")[0] for a in relevant_allocas(fn)}
    dead: Set[str] = set()
    for block in fn.blocks:
        for inst in block.instructions:
            if isinstance(inst, AllocaInst):
                base = inst.name.split(".")[0]
                if base not in keep:
                    dead.add(base)
    return dead


# -- AST-side reduction machinery -------------------------------------------------


def _stmt_lists(stmt: ast.Stmt, out: List[List[ast.Stmt]]) -> None:
    if isinstance(stmt, ast.Block):
        out.append(stmt.stmts)
        for child in stmt.stmts:
            _stmt_lists(child, out)
    elif isinstance(stmt, ast.If):
        _stmt_lists(stmt.then, out)
        if stmt.orelse is not None:
            _stmt_lists(stmt.orelse, out)
    elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        _stmt_lists(stmt.body, out)
    elif isinstance(stmt, ast.Switch):
        for case in stmt.cases:
            out.append(case.stmts)
            for child in case.stmts:
                _stmt_lists(child, out)


def statement_lists(unit: ast.TranslationUnit) -> List[List[ast.Stmt]]:
    """Every mutable statement list in the unit, document order."""
    out: List[List[ast.Stmt]] = []
    for item in unit.items:
        if isinstance(item, ast.FuncDef):
            _stmt_lists(item.body, out)
    return out


def count_statements(unit: ast.TranslationUnit) -> int:
    return sum(len(lst) for lst in statement_lists(unit))


def _writes_only(expr: ast.Expr, dead: Set[str]) -> bool:
    """True when *expr* is a pure write to dead variables: deleting the
    enclosing statement cannot change behaviour (modulo the oracle's
    confirmation).  Conservative: any call, or any write to a live
    variable, disqualifies."""
    if isinstance(expr, ast.Assign):
        target = expr.target
        base = target
        while isinstance(base, ast.Index):
            base = base.base
        if not (isinstance(base, ast.Ident) and base.name in dead):
            return False
        return _pure(expr.value) and (
            not isinstance(target, ast.Index) or _pure(target.index)
        )
    return False


def _pure(expr: ast.Expr) -> bool:
    """No calls, no assignments, no increments: evaluation is effect-free
    (MiniC integer semantics are total — division traps are effects, but
    a trapping divide would already diverge at -O0 and never reach the
    minimizer)."""
    if isinstance(expr, (ast.IntLit, ast.StringLit, ast.Ident, ast.SizeofType)):
        return True
    if isinstance(expr, ast.Unary):
        return expr.op not in ("++", "--") and _pure(expr.operand)
    if isinstance(expr, ast.Binary):
        return _pure(expr.lhs) and _pure(expr.rhs)
    if isinstance(expr, ast.Ternary):
        return _pure(expr.cond) and _pure(expr.if_true) and _pure(expr.if_false)
    if isinstance(expr, ast.Index):
        return _pure(expr.base) and _pure(expr.index)
    if isinstance(expr, ast.Cast):
        return _pure(expr.operand)
    return False


class Minimizer:
    """Shrinks a failing program while preserving its failure signature."""

    def __init__(self, harness, signature: Tuple[str, Optional[str]],
                 max_checks: int = 4000):
        # A reduction-tuned twin of the caller's harness: attribution
        # (bisection) off — it would replay the schedule dozens of times
        # per candidate — and the sanitizer leg only when the failure
        # being preserved *is* a sanitizer failure.
        from repro.selffuzz.harness import STATUS_SANITIZER, SelfFuzzHarness

        self.signature = signature
        self.oracle = SelfFuzzHarness(
            pipeline=harness.pipeline,
            sanitize=(signature[0] == STATUS_SANITIZER),
            attribute=False,
            max_steps=harness.max_steps,
        )
        self.max_checks = max_checks
        self.checks = 0

    # -- oracle --------------------------------------------------------------

    def reproduces(self, source: str, name: str) -> bool:
        self.checks += 1
        verdict = self.oracle.check_source(source, name)
        return verdict.signature() == self.signature

    def _budget(self) -> bool:
        return self.checks < self.max_checks

    def _attempt(self, unit: ast.TranslationUnit, name: str) -> Optional[str]:
        """Print and oracle-check a mutated unit; None if it regressed."""
        try:
            text = print_unit(unit)
        except ValueError:
            return None
        if self.reproduces(text, name):
            return text
        return None

    # -- phases --------------------------------------------------------------

    def _drop_toplevel(self, unit: ast.TranslationUnit, name: str) -> bool:
        changed = False
        for index in range(len(unit.items) - 1, -1, -1):
            if not self._budget():
                break
            item = unit.items.pop(index)
            if self._attempt(unit, name) is None:
                unit.items.insert(index, item)
            else:
                changed = True
        return changed

    def _dataflow_batch(self, unit: ast.TranslationUnit, name: str) -> bool:
        """Phase 2: delete every pure write to provably-dead variables at
        once; one oracle check validates the whole batch (with a
        per-function fallback when the batch is rejected)."""
        try:
            module = compile_source(print_unit(unit), name)
        except Exception:
            return False
        dead_by_fn = {
            fn.name: dead_local_names(fn) for fn in module.defined_functions()
        }
        if not any(dead_by_fn.values()):
            return False

        removed: List[Tuple[List, int, object]] = []
        for item in unit.items:
            if not isinstance(item, ast.FuncDef):
                continue
            dead = dead_by_fn.get(item.name) or set()
            if not dead:
                continue
            lists: List[List[ast.Stmt]] = []
            _stmt_lists(item.body, lists)
            for lst in lists:
                for index in range(len(lst) - 1, -1, -1):
                    stmt = lst[index]
                    doomed = False
                    if isinstance(stmt, ast.ExprStmt):
                        doomed = _writes_only(stmt.expr, dead)
                    elif isinstance(stmt, ast.DeclStmt):
                        doomed = all(
                            d.name in dead
                            and (d.init is None or _pure(d.init))
                            and not d.init_list
                            for d in stmt.decls
                        )
                    if doomed:
                        removed.append((lst, index, lst.pop(index)))
        if not removed:
            return False
        if self._attempt(unit, name) is not None:
            return True
        # The closure was too optimistic somewhere — restore everything;
        # the ddmin + fixpoint phases will redo the work retail.
        for lst, index, stmt in reversed(removed):
            lst.insert(index, stmt)
        return False

    def _ddmin_lists(self, unit: ast.TranslationUnit, name: str) -> bool:
        changed = False
        for lst in statement_lists(unit):
            size = len(lst)
            chunk = size // 2
            while chunk >= 2 and self._budget():
                start = 0
                while start < len(lst):
                    saved = lst[start:start + chunk]
                    if not saved:
                        break
                    del lst[start:start + chunk]
                    if self._attempt(unit, name) is None:
                        lst[start:start] = saved
                        start += chunk
                    else:
                        changed = True
                chunk //= 2
        return changed

    def _statement_fixpoint(self, unit: ast.TranslationUnit, name: str) -> bool:
        """Phase 4: single-deletion fixpoint — on exit, no one statement,
        declarator, or else-arm can be removed: the program is 1-minimal."""
        any_change = False
        progress = True
        while progress and self._budget():
            progress = False
            for lst in statement_lists(unit):
                for index in range(len(lst) - 1, -1, -1):
                    if not self._budget():
                        return any_change
                    stmt = lst.pop(index)
                    if self._attempt(unit, name) is None:
                        lst.insert(index, stmt)
                    else:
                        progress = any_change = True
            progress = self._declarator_fixpoint(unit, name) or progress
            progress = self._else_arms(unit, name) or progress
        return any_change

    def _declarator_fixpoint(self, unit: ast.TranslationUnit, name: str) -> bool:
        changed = False
        for lst in statement_lists(unit):
            for stmt in lst:
                if not isinstance(stmt, ast.DeclStmt):
                    continue
                for index in range(len(stmt.decls) - 1, -1, -1):
                    if not self._budget():
                        return changed
                    decl = stmt.decls.pop(index)
                    if self._attempt(unit, name) is None:
                        stmt.decls.insert(index, decl)
                    else:
                        changed = True
        return changed

    def _else_arms(self, unit: ast.TranslationUnit, name: str) -> bool:
        changed = False
        for lst in statement_lists(unit):
            for stmt in lst:
                if isinstance(stmt, ast.If) and stmt.orelse is not None:
                    if not self._budget():
                        return changed
                    arm = stmt.orelse
                    stmt.orelse = None
                    if self._attempt(unit, name) is None:
                        stmt.orelse = arm
                    else:
                        changed = True
        return changed

    # -- driver --------------------------------------------------------------

    def minimize(self, source: str, name: str = "selffuzz") -> MinimizeResult:
        unit = parse(source, name)
        original = count_statements(unit)

        # Canonicalize first: all later phases assume printer-shaped
        # (fully braced) ASTs.  If canonical form no longer reproduces —
        # printer bug or unprintable construct — hand the source back.
        try:
            canonical = print_unit(unit)
        except ValueError:
            canonical = None
        if canonical is None or not self.reproduces(canonical, name):
            return MinimizeResult(source, original, original, self.checks, 0, False)
        unit = parse(canonical, name)

        rounds = 0
        while self._budget():
            rounds += 1
            changed = self._drop_toplevel(unit, name)
            changed = self._dataflow_batch(unit, name) or changed
            changed = self._ddmin_lists(unit, name) or changed
            changed = self._statement_fixpoint(unit, name) or changed
            if not changed:
                break

        return MinimizeResult(
            source=print_unit(unit),
            original_statements=original,
            final_statements=count_statements(unit),
            checks=self.checks,
            rounds=rounds,
            one_minimal=self._budget(),
        )
