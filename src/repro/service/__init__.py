"""On-demand recompilation as a service.

The paper's engine answers one caller at a time; a fuzzing fleet wants a
long-lived compile server.  This package wraps :class:`repro.core.engine.Odin`
in one, structured like an inference server:

* :mod:`repro.service.jobs` — request queue; concurrent probe-change
  requests per target are **batched** and **deduplicated** (one rebuild,
  one compile per dirty fragment, no matter how many clients asked).
* :mod:`repro.service.workers` — **parallel fragment compile pool**
  (serial / thread / process); independent fragments of a batch no
  longer serialize behind the worst one.
* :mod:`repro.service.cache` — **persistent content-addressed code
  cache** keyed by hash(fragment IR + probe state + opt level); hits
  skip compilation, survive restarts, and are shared across clients.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  service facade and the handle fuzzers hold instead of calling
  ``Odin.rebuild()`` directly.
* observability — the shared :class:`repro.obs.metrics.MetricsRegistry`
  (queue depth, batch size, cache hit rate, per-stage latency
  percentiles; ``repro.service.metrics`` keeps the old ``ServiceMetrics``
  name as a re-export) and a shared :class:`repro.obs.tracer.Tracer`:
  every rebuild's span tree nests under the dispatcher's
  ``service.batch`` span, exportable with ``--trace-out`` /
  ``repro trace --service``.
"""

from repro.service.cache import (
    InMemoryCodeCache,
    PersistentCodeCache,
    fragment_content_key,
)
from repro.service.client import ServiceClient
from repro.service.jobs import (
    CompileRequest,
    DeadlineExpiredError,
    Job,
    ProbeOp,
    QueueFullError,
    ServiceReply,
)
from repro.service.metrics import ServiceMetrics, format_stats
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
    SupervisedCompiler,
)
from repro.service.server import RecompilationService, ServiceError
from repro.service.workers import (
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    WorkerCrashError,
    WorkerError,
    WorkerTimeoutError,
    make_compiler,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CompileRequest",
    "DeadlineExpiredError",
    "InMemoryCodeCache",
    "Job",
    "MODE_PROCESS",
    "MODE_SERIAL",
    "MODE_THREAD",
    "PersistentCodeCache",
    "ProbeOp",
    "QueueFullError",
    "RecompilationService",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceReply",
    "SupervisedCompiler",
    "WorkerCrashError",
    "WorkerError",
    "WorkerTimeoutError",
    "fragment_content_key",
    "format_stats",
    "make_compiler",
]
