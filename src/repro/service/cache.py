"""Content-addressed machine-code caches for the recompilation service.

The engine's per-fragment cache (`Odin.cache`) remembers *which object is
currently linked*; these caches remember *every object ever compiled*,
keyed by ``hash(fragment IR + probe state + opt level + variant label)``
(:func:`repro.core.engine.fragment_content_key`).  The variant label is
the run-time partitioned-sanitization dimension: engines compiling
different co-resident families ("clean"/"coverage"/"sanitized") of the
same program can share one cache directory without ever being served
another family's object.  Two consequences:

* flipping a probe off and later back on replays the earlier object
  instead of recompiling (fuzzers toggle the same probe sets constantly —
  prune, then re-add on coverage regression);
* with :class:`PersistentCodeCache` the objects live on disk, so hits
  survive service restarts and are shared by every client of the
  directory.

Both caches are size-bounded with LRU eviction and thread-safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.backend.machine import ObjectFile
from repro.core.engine import fragment_content_key  # re-export for callers
from repro.opt.memo import MemoEntry, memo_key  # re-export for callers

__all__ = [
    "CodeCache",
    "InMemoryCodeCache",
    "PersistentCodeCache",
    "PassMemoCache",
    "PersistentPassMemoCache",
    "fragment_content_key",
    "memo_key",
]


class CodeCache:
    """Interface + shared bookkeeping: get/put with hit/miss accounting."""

    # What a stored entry must unpickle to.  Subclasses reusing this
    # machinery for other payloads (pass memoization) override it; the
    # integrity check rejects anything else as corruption.
    PAYLOAD_TYPE = ObjectFile

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        # Entries refused because they alone exceed the size budget.
        self.rejected = 0
        # Loads that found a corrupt/truncated/unreadable stored entry
        # and degraded it to a miss.
        self.integrity_failures = 0
        self._lock = threading.RLock()

    # Subclasses implement the raw storage.
    def _load(self, key: str) -> Optional[ObjectFile]:
        raise NotImplementedError

    def _store(self, key: str, obj: ObjectFile) -> None:
        raise NotImplementedError

    def get(self, key: str) -> Optional[ObjectFile]:
        with self._lock:
            obj = self._load(key)
            if obj is None:
                self.misses += 1
            else:
                self.hits += 1
            return obj

    def put(self, key: str, obj: ObjectFile) -> None:
        with self._lock:
            self.puts += 1
            self._store(key, obj)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "integrity_failures": self.integrity_failures,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "entries": len(self),
                "bytes": self.size_bytes(),
            }

    def __len__(self) -> int:
        raise NotImplementedError

    def size_bytes(self) -> int:
        raise NotImplementedError


class InMemoryCodeCache(CodeCache):
    """Process-local LRU over pickled-size-bounded object files."""

    def __init__(self, max_bytes: int = 16 * 1024 * 1024):
        super().__init__()
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()  # key -> (obj, size)
        self._total = 0

    def _load(self, key: str) -> Optional[ObjectFile]:
        hit = self._entries.get(key)
        if hit is None:
            return None
        self._entries.move_to_end(key)
        return hit[0]

    def _store(self, key: str, obj: ObjectFile) -> None:
        size = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        old = self._entries.pop(key, None)
        if old is not None:
            self._total -= old[1]
        if size > self.max_bytes:
            # An entry that alone exceeds the budget can never fit;
            # admitting it would pin the cache over budget forever.
            self.rejected += 1
            return
        self._entries[key] = (obj, size)
        self._total += size
        # The newest entry fits alone, so this never empties the cache.
        while self._total > self.max_bytes and self._entries:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._total -= evicted_size
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        return self._total

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total = 0


class PersistentCodeCache(CodeCache):
    """Disk-backed content-addressed cache, shared across restarts.

    Layout: ``<dir>/<key>.obj`` pickled object files plus an
    ``index.json`` carrying sizes, a monotone LRU tick and a sha256
    checksum per entry (the index payload itself is checksummed too).
    Writes are atomic (temp file + rename), so a crashed writer never
    corrupts the store.

    **Self-healing**: the cache must never be the reason a rebuild
    fails.  A corrupt, truncated or checksum-mismatched entry detected
    on read is *quarantined* — moved to ``quarantine/`` for post-mortem
    instead of deleted or raised — and reported as a miss, costing one
    recompile.  A corrupt or torn ``index.json`` (or one whose payload
    checksum does not verify) is rebuilt by scanning the ``.obj`` files
    on disk, so a damaged index never orphans good objects
    (``repro check`` and ``repro chaos`` inject exactly these faults to
    prove it).

    LRU recency ticks are persisted lazily: a hit only bumps the
    in-memory tick, and the index is flushed on stores, evictions and
    every ``flush_interval`` hits.  A crash loses at most that much
    recency — never an object.
    """

    INDEX = "index.json"
    QUARANTINE = "quarantine"
    INDEX_VERSION = 2

    def __init__(
        self,
        directory: str,
        max_bytes: int = 64 * 1024 * 1024,
        flush_interval: int = 64,
    ):
        super().__init__()
        self.directory = directory
        self.max_bytes = max_bytes
        self.flush_interval = max(flush_interval, 1)
        os.makedirs(directory, exist_ok=True)
        # Self-healing accounting: entries moved to quarantine/ and
        # full index rebuilds from a disk scan.
        self.quarantined = 0
        self.index_rebuilds = 0
        self._index: Dict[str, dict] = {}
        self._tick = 0
        self._pending_ticks = 0
        self._read_index()

    def stats(self) -> dict:
        snapshot = super().stats()
        snapshot["quarantined"] = self.quarantined
        snapshot["index_rebuilds"] = self.index_rebuilds
        return snapshot

    # -- index persistence ----------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.directory, self.INDEX)

    @staticmethod
    def _entries_checksum(entries: Dict[str, dict]) -> str:
        return hashlib.sha256(
            json.dumps(entries, sort_keys=True).encode()
        ).hexdigest()

    def _index_payload(self, entries: Dict[str, dict]) -> dict:
        return {
            "version": self.INDEX_VERSION,
            "checksum": self._entries_checksum(entries),
            "entries": entries,
        }

    def _validate_index(self, raw) -> Optional[Dict[str, dict]]:
        """Entries from a parsed index, or None when it cannot be trusted."""
        if not isinstance(raw, dict):
            return None
        if isinstance(raw.get("entries"), dict):
            entries = raw["entries"]
            if raw.get("checksum") != self._entries_checksum(entries):
                return None  # torn or hand-edited: rebuild from disk
            return entries
        # Legacy flat {key: meta} format (no checksums): accept as-is.
        if all(isinstance(meta, dict) for meta in raw.values()):
            return raw
        return None

    def _scan_entries(self) -> Dict[str, dict]:
        """Rebuild index entries from the ``.obj`` files on disk."""
        found = []
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished
            return {}
        for name in names:
            if not name.endswith(".obj"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
                with open(path, "rb") as fh:
                    digest = hashlib.sha256(fh.read()).hexdigest()
            except OSError:
                continue
            found.append((stat.st_mtime, name[: -len(".obj")], stat.st_size, digest))
        entries: Dict[str, dict] = {}
        for tick, (_mtime, key, size, digest) in enumerate(sorted(found), start=1):
            entries[key] = {"size": size, "tick": tick, "sha256": digest}
        return entries

    def _read_index(self) -> None:
        had_index = os.path.exists(self._index_path())
        entries: Optional[Dict[str, dict]] = None
        if had_index:
            try:
                with open(self._index_path(), "r", encoding="utf-8") as fh:
                    raw = json.load(fh)
            except (OSError, ValueError):
                raw = None
            entries = self._validate_index(raw)
        if entries is None:
            # Corrupt/torn/missing index over a non-empty store: rebuild
            # from the objects themselves instead of orphaning them.
            entries = self._scan_entries()
            if had_index or entries:
                self.index_rebuilds += 1
                self._write_index_entries(entries)
        # Drop index entries whose object file vanished.
        self._index = {
            key: meta
            for key, meta in entries.items()
            if os.path.exists(self._entry_path(key))
        }
        self._tick = max(
            (meta.get("tick", 0) for meta in self._index.values()), default=0
        )

    def _write_index(self) -> None:
        self._write_index_entries(self._index)

    def _write_index_entries(self, entries: Dict[str, dict]) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".idx")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._index_payload(entries), fh)
            os.replace(tmp, self._index_path())
            self._pending_ticks = 0
        except OSError:
            pass  # best-effort persistence; recency is reconstructible
        finally:
            # Covers both the OSError path and non-OSError failures
            # (which propagate) — the temp file must never leak.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def flush(self) -> None:
        """Persist deferred LRU ticks to the on-disk index."""
        with self._lock:
            if self._pending_ticks:
                self._write_index()

    def keys(self) -> list:
        """Stored keys, sorted (chaos harness picks corruption victims)."""
        with self._lock:
            return sorted(self._index)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.obj")

    def _quarantine(self, key: str) -> None:
        """Move a damaged entry to ``quarantine/`` for post-mortem.

        Never raises: a vanished file (delete-obj fault) simply has
        nothing left to preserve.
        """
        self.quarantined += 1
        try:
            quarantine_dir = os.path.join(self.directory, self.QUARANTINE)
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(
                self._entry_path(key),
                os.path.join(quarantine_dir, f"{key}.obj"),
            )
        except OSError:
            pass

    # -- storage ---------------------------------------------------------------

    def _load(self, key: str) -> Optional[ObjectFile]:
        meta = self._index.get(key)
        if meta is None:
            return None
        try:
            with open(self._entry_path(key), "rb") as fh:
                payload = fh.read()
            expected = meta.get("sha256")
            if (
                expected is not None
                and hashlib.sha256(payload).hexdigest() != expected
            ):
                raise ValueError("stored entry bytes fail their checksum")
            obj = pickle.loads(payload)
            if not isinstance(obj, self.PAYLOAD_TYPE):
                raise pickle.UnpicklingError(
                    f"stored entry is not a {self.PAYLOAD_TYPE.__name__}"
                )
        except Exception:
            # Unpickling corrupt bytes can raise almost anything
            # (EOFError, UnpicklingError, AttributeError, struct.error,
            # ...).  Whatever the fault: quarantine the damaged entry,
            # drop it from the index, and report a miss — never an error
            # and never wrong code.
            self._index.pop(key, None)
            self.integrity_failures += 1
            self._quarantine(key)
            self._write_index()
            return None
        # Defer tick persistence: rewriting the whole index on every hit
        # made each lookup O(index) in JSON work.
        self._tick += 1
        meta["tick"] = self._tick
        self._pending_ticks += 1
        if self._pending_ticks >= self.flush_interval:
            self._write_index()
        return obj

    def _store(self, key: str, obj: ObjectFile) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.max_bytes:
            # Refuse entries that alone exceed the budget (and drop any
            # stale resident copy under the same key).
            self.rejected += 1
            if self._index.pop(key, None) is not None:
                try:
                    os.unlink(self._entry_path(key))
                except OSError:
                    pass
                self._write_index()
            return
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, self._entry_path(key))
        self._tick += 1
        self._index[key] = {
            "size": len(payload),
            "tick": self._tick,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        self._evict()
        self._write_index()

    def _evict(self) -> None:
        # The entry just stored fits alone, so this cannot evict it; but
        # an oversized entry inherited from an older store on disk is
        # evictable — no "keep at least one" guard.
        while self.size_bytes() > self.max_bytes and self._index:
            victim = min(self._index, key=lambda k: self._index[k]["tick"])
            self._index.pop(victim)
            try:
                os.unlink(self._entry_path(victim))
            except OSError:
                pass
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._index)

    def size_bytes(self) -> int:
        return sum(meta["size"] for meta in self._index.values())

    def clear(self) -> None:
        with self._lock:
            for key in list(self._index):
                try:
                    os.unlink(self._entry_path(key))
                except OSError:
                    pass
            self._index.clear()
            self._write_index()

    # -- fault injection (repro check) ----------------------------------------

    FAULT_KINDS = (
        "truncate-obj",   # entry file cut short mid-payload
        "corrupt-obj",    # entry bytes overwritten with garbage
        "delete-obj",     # entry file vanished under the index
        "torn-obj",       # partial write: valid prefix, zero-filled tail
        "corrupt-index",  # index.json is not JSON at all
        "torn-index",     # index.json cut short (crashed non-atomic writer)
        "stale-index",    # index names an entry whose file never existed
    )

    def inject_fault(self, kind: str, key: Optional[str] = None) -> None:
        """Damage the on-disk store the way a crash or torn write would.

        This is a test hook for the differential fault suite
        (:mod:`repro.check.faults`): every kind must degrade the next
        lookup to a cache miss, never to wrong code.  Index faults are
        observed by *reopening* the directory, like a service restart.
        """
        if kind not in self.FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        with self._lock:
            if kind.endswith("-obj"):
                if key is None:
                    raise ValueError(f"fault {kind!r} needs a key")
                path = self._entry_path(key)
                data = b""
                try:
                    with open(path, "rb") as fh:
                        data = fh.read()
                except OSError:
                    pass
                if kind == "truncate-obj":
                    with open(path, "wb") as fh:
                        fh.write(data[: max(len(data) // 2, 1)])
                elif kind == "corrupt-obj":
                    with open(path, "wb") as fh:
                        fh.write(b"\xde\xad" * max(len(data) // 2, 8))
                elif kind == "torn-obj":
                    with open(path, "wb") as fh:
                        fh.write(data[: max(len(data) // 2, 1)])
                        fh.write(b"\x00" * (len(data) - len(data) // 2))
                else:  # delete-obj
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            elif kind == "corrupt-index":
                with open(self._index_path(), "w", encoding="utf-8") as fh:
                    fh.write("{ this is not json")
            elif kind == "torn-index":
                try:
                    with open(self._index_path(), "r", encoding="utf-8") as fh:
                        text = fh.read()
                except OSError:
                    text = json.dumps(self._index)
                with open(self._index_path(), "w", encoding="utf-8") as fh:
                    fh.write(text[: max(len(text) // 2, 1)])
            else:  # stale-index
                # Checksum-valid index naming an entry that never existed:
                # exercises the missing-file drop, not the rebuild path.
                stale = dict(self._index)
                stale["0" * 64] = {"size": 123, "tick": self._tick + 1}
                with open(self._index_path(), "w", encoding="utf-8") as fh:
                    json.dump(self._index_payload(stale), fh)

class PassMemoCache(InMemoryCodeCache):
    """Tier-2 pass-memoization cache: optimized-IR snapshots, in memory.

    Same LRU/size-budget/accounting machinery as the object caches, but
    the payload is a :class:`repro.opt.memo.MemoEntry` (optimized IR
    text) keyed by :func:`repro.opt.memo.memo_key` — hash of (canonical
    input IR, pass-pipeline identity).  The engine consults it inside
    :func:`repro.core.engine.compile_fragment`, before the middle end
    runs; a hit skips optimization and pays only instruction selection.
    """

    PAYLOAD_TYPE = MemoEntry

    def __init__(self, max_bytes: int = 32 * 1024 * 1024):
        super().__init__(max_bytes=max_bytes)


class PersistentPassMemoCache(PersistentCodeCache):
    """Pass memoization on disk: memoized middle-end runs survive
    restarts and are shared by every service on the directory, with the
    same checksummed index, quarantine and fault-degradation guarantees
    as the persistent object cache."""

    PAYLOAD_TYPE = MemoEntry
