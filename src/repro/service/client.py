"""Client handle: what a fuzzer holds instead of calling ``Odin.rebuild()``.

A :class:`ServiceClient` turns probe-state changes into
:class:`~repro.service.jobs.CompileRequest`s.  Submissions return
:class:`~repro.service.jobs.Job` futures; ``rebuild()`` is the blocking
convenience.  Many clients of one target are expected and encouraged —
overlapping requests are batched and deduplicated server-side.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, TYPE_CHECKING

from repro.core.engine import RebuildReport
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_MARK_CHANGED,
    OP_REMOVE,
    CompileRequest,
    Job,
    ProbeOp,
    ServiceReply,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.server import RecompilationService


class ServiceClient:
    """Handle on one target of a :class:`RecompilationService`."""

    def __init__(
        self, service: "RecompilationService", target: str, client_id: str = "anon"
    ):
        self.service = service
        self.target = target
        self.client_id = client_id

    # -- async submissions -----------------------------------------------------

    def submit(
        self, ops: Iterable[ProbeOp] = (), deadline_s: Optional[float] = None
    ) -> Job:
        """Enqueue ops; ``deadline_s`` bounds how long the job may queue
        before the service sheds it with ``DeadlineExpiredError``."""
        request = CompileRequest(
            target=self.target,
            ops=tuple(ops),
            client_id=self.client_id,
            deadline_s=deadline_s,
        )
        return self.service.submit(request)

    def enable(self, *probe_ids: int) -> Job:
        return self.submit(ProbeOp(OP_ENABLE, pid) for pid in probe_ids)

    def disable(self, *probe_ids: int) -> Job:
        return self.submit(ProbeOp(OP_DISABLE, pid) for pid in probe_ids)

    def remove(self, *probe_ids: int) -> Job:
        return self.submit(ProbeOp(OP_REMOVE, pid) for pid in probe_ids)

    def mark_changed(self, *probe_ids: int) -> Job:
        return self.submit(ProbeOp(OP_MARK_CHANGED, pid) for pid in probe_ids)

    # -- blocking conveniences -------------------------------------------------

    def rebuild(
        self,
        ops: Iterable[ProbeOp] = (),
        timeout: Optional[float] = 60.0,
        deadline_s: Optional[float] = None,
    ) -> ServiceReply:
        """Submit (possibly empty) ops and wait for the batch's reply."""
        return self.submit(ops, deadline_s=deadline_s).result(timeout)

    def rebuild_report(self, timeout: Optional[float] = 60.0) -> RebuildReport:
        """Blocking rebuild returning a plain :class:`RebuildReport`.

        Signature-compatible with ``engine.rebuild()`` so instrumentation
        tools (e.g. ``OdinCov(rebuild_fn=client.rebuild_report)``) route
        their on-the-fly recompiles through the service unchanged.  When
        the batch required no rebuild an empty report is returned.
        """
        reply = self.rebuild(timeout=timeout)
        return reply.report if reply.report is not None else RebuildReport()

    def stats(self) -> dict:
        return self.service.stats()
