"""Request queue: batching, deduplication, deadlines and backpressure.

Inference-server shape: clients enqueue :class:`CompileRequest`s and get
a :class:`Job` future back; the dispatcher drains *everything pending for
one target* as a single batch, merges the probe operations (deduplicating
identical ops from different clients), applies them to the engine's
PatchManager once, and runs **one** rebuild whose report answers every
job in the batch.  Two clients dirtying the same fragment therefore cost
one compile — the dedup the issue tracker calls out — and a client that
requests a rebuild while one is already queued simply joins the batch.

Overload control (the fault-tolerance layer):

* a request may carry ``deadline_s``; a job still queued when its
  deadline passes is **shed** at pop time — it is answered immediately
  with :class:`DeadlineExpiredError` instead of wasting a compile on an
  answer nobody is waiting for;
* the queue may have a ``max_depth``; submissions beyond it are refused
  with :class:`QueueFullError` (backpressure to the client) rather than
  letting the backlog grow without bound behind a struggling engine.

Both shed paths count into ``shed_total`` (plus ``shed_expired`` /
``shed_overflow``) on the optional metrics registry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import RebuildReport
from repro.errors import ReproError

# Probe operation kinds understood by the dispatcher.
OP_ENABLE = "enable"
OP_DISABLE = "disable"
OP_REMOVE = "remove"
OP_MARK_CHANGED = "mark_changed"
OP_KINDS = (OP_ENABLE, OP_DISABLE, OP_REMOVE, OP_MARK_CHANGED)


class QueueFullError(ReproError):
    """The job queue is at ``max_depth``; back off and resubmit."""


class DeadlineExpiredError(ReproError, TimeoutError):
    """A deadline passed: either the job was still queued when its
    ``deadline_s`` elapsed (server-side shed) or a client's
    ``Job.result`` wait expired (client-side timeout).

    ``retry_after_s`` carries the circuit breaker's hint when the
    service can say when capacity returns (``None`` otherwise), so a
    shed client knows whether to back off or fail over.  Subclasses
    ``TimeoutError`` so callers treating expiry generically keep
    working.
    """

    def __init__(self, message: str, *, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ProbeOp:
    """One probe mutation: (kind, probe id).  Hashable, so batches dedup."""

    kind: str
    probe_id: int

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown probe op {self.kind!r}; expected one of {OP_KINDS}"
            )


@dataclass
class CompileRequest:
    """What one client wants from the service.

    ``ops`` may be empty: that is a plain "rebuild whatever is dirty"
    request (instrumentation tools often mutate the PatchManager
    directly, then ask the service to make it so).

    ``deadline_s`` (optional) is a freshness bound relative to
    submission: if the job is still queued after that many seconds, the
    service sheds it with :class:`DeadlineExpiredError` instead of
    compiling an answer the client has stopped waiting for.

    ``tenant_id`` (optional) is the multi-tenant identity: which
    campaign this request belongs to.  The cluster router uses it for
    quota/shed accounting; a standalone service just carries it through.

    ``resubmit_token`` (optional) makes retries idempotent across shard
    failover: a router resubmitting an in-flight request after a shard
    died reuses the original token, and the cluster's per-target ledger
    refuses to double-acknowledge it.  Probe ops are state-setting, so a
    replayed batch converges to the same probe state either way; the
    token makes the accounting exact.
    """

    target: str
    ops: Tuple[ProbeOp, ...] = ()
    client_id: str = "anon"
    deadline_s: Optional[float] = None
    tenant_id: str = ""
    resubmit_token: Optional[str] = None

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")


@dataclass
class ServiceReply:
    """Shared answer for every job in one batch."""

    report: Optional[RebuildReport]
    batch_size: int
    batch_clients: int
    ops_submitted: int
    ops_applied: int
    ops_skipped: int = 0
    queue_wait_ms: float = 0.0
    # How many rebuild attempts the batch needed (1 = no faults).
    attempts: int = 1

    @property
    def dedup_ratio(self) -> float:
        """Submitted / applied ops: >1 means the batch deduplicated."""
        return self.ops_submitted / self.ops_applied if self.ops_applied else 1.0


class Job:
    """Client-side future for one submitted request.

    ``result()`` waits are always bounded: with no explicit timeout the
    wait expires after ``DEFAULT_RESULT_TIMEOUT_S`` and raises
    :class:`DeadlineExpiredError` — a client can no longer block forever
    behind a dead dispatcher.  The error carries the circuit breaker's
    ``retry_after_s`` hint when the service installed one
    (``retry_hint``), so the caller knows whether the service expects to
    recover or the wait should fail over.
    """

    # Bounds result() waits that pass no explicit timeout.
    DEFAULT_RESULT_TIMEOUT_S = 60.0

    def __init__(self, request: CompileRequest):
        self.request = request
        # Stamped by JobQueue.submit under the queue lock, *before* the
        # job becomes visible to the dispatcher — stamping after
        # publication let a fast dispatcher observe an unstamped job and
        # report a bogus ~0 ms queue wait.
        self.submitted_at: Optional[float] = None
        # Absolute perf_counter deadline (submitted_at + deadline_s), or
        # None when the request carries no deadline.
        self.deadline_at: Optional[float] = None
        # Installed by the service at submit time: a zero-arg callable
        # answering "seconds until the breaker admits traffic again".
        self.retry_hint: Optional[Callable[[], float]] = None
        self._event = threading.Event()
        self._reply: Optional[ServiceReply] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline_at

    def set_reply(self, reply: ServiceReply) -> None:
        self._reply = reply
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> ServiceReply:
        """Wait (bounded) for the batch's reply.

        ``timeout=None`` waits ``DEFAULT_RESULT_TIMEOUT_S`` seconds, not
        forever.  An expired wait raises :class:`DeadlineExpiredError`
        (a ``TimeoutError`` subclass) with the breaker's
        ``retry_after_s`` hint attached when one is known.
        """
        if timeout is None:
            timeout = self.DEFAULT_RESULT_TIMEOUT_S
        if not self._event.wait(timeout):
            retry_after = None
            if self.retry_hint is not None:
                try:
                    retry_after = self.retry_hint() or None
                except Exception:  # the hint is best-effort, never fatal
                    retry_after = None
            raise DeadlineExpiredError(
                f"job for target {self.request.target!r} not finished "
                f"within {timeout}s"
                + (f" (breaker hints retry in {retry_after:.2f}s)"
                   if retry_after is not None else ""),
                retry_after_s=retry_after,
            )
        if self._error is not None:
            raise self._error
        assert self._reply is not None
        return self._reply


class JobQueue:
    """Thread-safe queue of jobs, drained in per-target batches.

    ``max_depth`` bounds the backlog (None = unbounded); ``metrics`` is
    an optional :class:`repro.obs.metrics.MetricsRegistry` that receives
    the shed counters.
    """

    def __init__(self, max_depth: Optional[int] = None, metrics=None):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: List[Job] = []
        self.max_depth = max_depth
        self.metrics = metrics
        self.submitted = 0
        self.peak_depth = 0
        self.shed_expired = 0
        self.shed_overflow = 0

    @property
    def shed_total(self) -> int:
        return self.shed_expired + self.shed_overflow

    def _count_shed(self, kind: str) -> None:
        """Caller holds the lock; *kind* is ``expired`` or ``overflow``."""
        if kind == "expired":
            self.shed_expired += 1
        else:
            self.shed_overflow += 1
        if self.metrics is not None:
            self.metrics.inc("shed_total")
            self.metrics.inc(f"shed_{kind}")

    def submit(self, request: CompileRequest) -> Job:
        job = Job(request)
        with self._not_empty:
            if self.max_depth is not None and len(self._jobs) >= self.max_depth:
                self._count_shed("overflow")
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} pending); "
                    f"back off and resubmit"
                )
            job.submitted_at = time.perf_counter()
            if request.deadline_s is not None:
                job.deadline_at = job.submitted_at + request.deadline_s
            self._jobs.append(job)
            self.submitted += 1
            self.peak_depth = max(self.peak_depth, len(self._jobs))
            self._not_empty.notify_all()
        return job

    def depth(self) -> int:
        with self._lock:
            return len(self._jobs)

    def stats(self) -> dict:
        """One consistent snapshot of every queue counter.

        All fields are read under a single lock acquisition, so the
        snapshot can never tear (e.g. a ``shed_total`` that includes a
        shed whose ``shed_expired`` increment is not visible yet, or a
        ``depth`` from a different moment than ``submitted``).
        """
        with self._lock:
            return {
                "depth": len(self._jobs),
                "submitted": self.submitted,
                "peak_depth": self.peak_depth,
                "max_depth": self.max_depth,
                "shed_total": self.shed_expired + self.shed_overflow,
                "shed_expired": self.shed_expired,
                "shed_overflow": self.shed_overflow,
            }

    def _shed_expired_locked(self) -> List[Job]:
        """Drop every queued job whose deadline passed; returns them."""
        now = time.perf_counter()
        expired = [j for j in self._jobs if j.expired(now)]
        if expired:
            self._jobs = [j for j in self._jobs if not j.expired(now)]
            for job in expired:
                self._count_shed("expired")
        return expired

    def pop_batch(
        self, timeout: Optional[float] = None
    ) -> Tuple[Optional[str], List[Job]]:
        """Block until work is pending, then drain one target's batch.

        Expired jobs are shed first — answered with
        :class:`DeadlineExpiredError`, never compiled.  Returns
        ``(target, jobs)`` — every queued live job for the target of the
        oldest pending request — or ``(None, [])`` on timeout.
        """
        with self._not_empty:
            if not self._jobs and not self._not_empty.wait(timeout):
                return None, []
            expired = self._shed_expired_locked()
            target: Optional[str] = None
            batch: List[Job] = []
            if self._jobs:
                target = self._jobs[0].request.target
                batch = [j for j in self._jobs if j.request.target == target]
                self._jobs = [j for j in self._jobs if j.request.target != target]
        # Answer shed jobs outside the lock: set_error wakes waiters.
        for job in expired:
            job.set_error(
                DeadlineExpiredError(
                    f"deadline of {job.request.deadline_s}s expired while "
                    f"job for target {job.request.target!r} was queued"
                )
            )
        return target, batch

    def drain_remaining(self) -> List[Job]:
        """Remove and return every queued job (service shutdown path)."""
        with self._lock:
            remaining, self._jobs = self._jobs, []
            return remaining


def merge_batch(jobs: List[Job]) -> Tuple[List[ProbeOp], int, int]:
    """Merge a batch's ops, dropping duplicates.

    Returns ``(unique ops in first-submission order, submitted, applied)``.
    Order is preserved so a client's enable-then-disable sequence keeps
    its meaning; only *identical* (kind, probe_id) pairs collapse.
    """
    merged: "OrderedDict[ProbeOp, None]" = OrderedDict()
    submitted = 0
    for job in jobs:
        for op in job.request.ops:
            submitted += 1
            merged.setdefault(op)
    unique = list(merged)
    return unique, submitted, len(unique)


def batch_clients(jobs: List[Job]) -> int:
    return len({job.request.client_id for job in jobs})
