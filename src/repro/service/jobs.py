"""Request queue: batching and deduplication of probe-change requests.

Inference-server shape: clients enqueue :class:`CompileRequest`s and get
a :class:`Job` future back; the dispatcher drains *everything pending for
one target* as a single batch, merges the probe operations (deduplicating
identical ops from different clients), applies them to the engine's
PatchManager once, and runs **one** rebuild whose report answers every
job in the batch.  Two clients dirtying the same fragment therefore cost
one compile — the dedup the issue tracker calls out — and a client that
requests a rebuild while one is already queued simply joins the batch.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import RebuildReport

# Probe operation kinds understood by the dispatcher.
OP_ENABLE = "enable"
OP_DISABLE = "disable"
OP_REMOVE = "remove"
OP_MARK_CHANGED = "mark_changed"
OP_KINDS = (OP_ENABLE, OP_DISABLE, OP_REMOVE, OP_MARK_CHANGED)


@dataclass(frozen=True)
class ProbeOp:
    """One probe mutation: (kind, probe id).  Hashable, so batches dedup."""

    kind: str
    probe_id: int

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown probe op {self.kind!r}; expected one of {OP_KINDS}"
            )


@dataclass
class CompileRequest:
    """What one client wants from the service.

    ``ops`` may be empty: that is a plain "rebuild whatever is dirty"
    request (instrumentation tools often mutate the PatchManager
    directly, then ask the service to make it so).
    """

    target: str
    ops: Tuple[ProbeOp, ...] = ()
    client_id: str = "anon"


@dataclass
class ServiceReply:
    """Shared answer for every job in one batch."""

    report: Optional[RebuildReport]
    batch_size: int
    batch_clients: int
    ops_submitted: int
    ops_applied: int
    ops_skipped: int = 0
    queue_wait_ms: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """Submitted / applied ops: >1 means the batch deduplicated."""
        return self.ops_submitted / self.ops_applied if self.ops_applied else 1.0


class Job:
    """Client-side future for one submitted request."""

    def __init__(self, request: CompileRequest):
        self.request = request
        # Stamped by JobQueue.submit under the queue lock, *before* the
        # job becomes visible to the dispatcher — stamping after
        # publication let a fast dispatcher observe an unstamped job and
        # report a bogus ~0 ms queue wait.
        self.submitted_at: Optional[float] = None
        self._event = threading.Event()
        self._reply: Optional[ServiceReply] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_reply(self, reply: ServiceReply) -> None:
        self._reply = reply
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> ServiceReply:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job for target {self.request.target!r} not finished "
                f"within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._reply is not None
        return self._reply


class JobQueue:
    """Thread-safe queue of jobs, drained in per-target batches."""

    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: List[Job] = []
        self.submitted = 0
        self.peak_depth = 0

    def submit(self, request: CompileRequest) -> Job:
        job = Job(request)
        with self._not_empty:
            job.submitted_at = time.perf_counter()
            self._jobs.append(job)
            self.submitted += 1
            self.peak_depth = max(self.peak_depth, len(self._jobs))
            self._not_empty.notify_all()
        return job

    def depth(self) -> int:
        with self._lock:
            return len(self._jobs)

    def pop_batch(
        self, timeout: Optional[float] = None
    ) -> Tuple[Optional[str], List[Job]]:
        """Block until work is pending, then drain one target's batch.

        Returns ``(target, jobs)`` — every queued job for the target of
        the oldest pending request — or ``(None, [])`` on timeout.
        """
        with self._not_empty:
            if not self._jobs and not self._not_empty.wait(timeout):
                return None, []
            if not self._jobs:
                return None, []
            target = self._jobs[0].request.target
            batch = [j for j in self._jobs if j.request.target == target]
            self._jobs = [j for j in self._jobs if j.request.target != target]
            return target, batch


def merge_batch(jobs: List[Job]) -> Tuple[List[ProbeOp], int, int]:
    """Merge a batch's ops, dropping duplicates.

    Returns ``(unique ops in first-submission order, submitted, applied)``.
    Order is preserved so a client's enable-then-disable sequence keeps
    its meaning; only *identical* (kind, probe_id) pairs collapse.
    """
    merged: "OrderedDict[ProbeOp, None]" = OrderedDict()
    submitted = 0
    for job in jobs:
        for op in job.request.ops:
            submitted += 1
            merged.setdefault(op)
    unique = list(merged)
    return unique, submitted, len(unique)


def batch_clients(jobs: List[Job]) -> int:
    return len({job.request.client_id for job in jobs})
