"""Backward-compatible re-export of the shared observability metrics.

The registry that used to live here is now :mod:`repro.obs.metrics`,
shared by the whole stack (engine, fuzzer, service).  ``ServiceMetrics``
remains the historical name for what is today the general-purpose
:class:`repro.obs.metrics.MetricsRegistry`.
"""

from repro.obs.metrics import (
    MAX_SAMPLES,
    LatencyStat,
    MetricsRegistry,
    ServiceMetrics,
    format_stats,
)

__all__ = [
    "MAX_SAMPLES",
    "LatencyStat",
    "MetricsRegistry",
    "ServiceMetrics",
    "format_stats",
]
