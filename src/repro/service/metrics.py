"""Service observability: counters, gauges and latency percentiles.

Inference-server style: every stage of the request path records into a
shared :class:`ServiceMetrics` registry, and ``stats()`` snapshots the
whole thing as one JSON-serializable dict — the payload behind the
``repro serve --stats-json`` endpoint and ``repro stats``.

Thread-safe; all service components (queue, dispatcher, workers, caches)
share one registry.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List

# Latency histories are bounded; a fuzzing campaign can issue millions of
# requests and percentile quality does not need more than this.
MAX_SAMPLES = 4096


class LatencyStat:
    """Bounded sample reservoir with percentile summaries."""

    def __init__(self):
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._samples: List[float] = []

    def record(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        if len(self._samples) < MAX_SAMPLES:
            self._samples.append(ms)
        else:
            # Deterministic systematic replacement keeps the reservoir
            # representative without an RNG.
            self._samples[self.count % MAX_SAMPLES] = ms

    def percentile(self, p: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.total_ms / self.count if self.count else 0.0,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_ms,
        }


class ServiceMetrics:
    """Shared registry: counters + gauges + named latency stats."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyStat] = {}

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, ms: float) -> None:
        with self._lock:
            stat = self._latencies.get(name)
            if stat is None:
                stat = self._latencies[name] = LatencyStat()
            stat.record(ms)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict:
        """One JSON-serializable snapshot of everything recorded."""
        with self._lock:
            snapshot = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latency": {
                    name: stat.summary()
                    for name, stat in self._latencies.items()
                },
            }
        requests = snapshot["counters"].get("requests_total", 0)
        compiles = snapshot["counters"].get("fragments_compiled", 0)
        hits = snapshot["counters"].get("cache_hits", 0)
        lookups = hits + snapshot["counters"].get("cache_misses", 0)
        batches = snapshot["counters"].get("batches_total", 0)
        snapshot["derived"] = {
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "mean_batch_size": requests / batches if batches else 0.0,
            "dedup_ratio": (
                snapshot["counters"].get("ops_submitted", 0)
                / snapshot["counters"].get("ops_applied", 1)
                if snapshot["counters"].get("ops_applied", 0)
                else 1.0
            ),
            "fragments_compiled": compiles,
        }
        return snapshot

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.stats(), indent=indent, sort_keys=True)


def format_stats(stats: dict) -> str:
    """Human-readable rendering of a ``stats()`` snapshot."""
    lines = ["recompilation service stats", ""]
    derived = stats.get("derived", {})
    lines.append(f"{'cache hit rate':>22}: {derived.get('cache_hit_rate', 0):.1%}")
    lines.append(f"{'mean batch size':>22}: {derived.get('mean_batch_size', 0):.2f}")
    lines.append(f"{'dedup ratio':>22}: {derived.get('dedup_ratio', 1):.2f}x")
    lines.append("")
    lines.append(f"{'counter':>22} | value")
    for name in sorted(stats.get("counters", {})):
        lines.append(f"{name:>22} | {stats['counters'][name]:g}")
    gauges = stats.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':>22} | value")
        for name in sorted(gauges):
            lines.append(f"{name:>22} | {gauges[name]:g}")
    latency = stats.get("latency", {})
    if latency:
        lines.append("")
        lines.append(
            f"{'stage':>22} | {'count':>7} | {'mean':>8} | {'p50':>8} "
            f"| {'p90':>8} | {'p99':>8} | {'max':>8}"
        )
        for name in sorted(latency):
            s = latency[name]
            lines.append(
                f"{name:>22} | {s['count']:>7.0f} | {s['mean_ms']:>8.2f} "
                f"| {s['p50_ms']:>8.2f} | {s['p90_ms']:>8.2f} "
                f"| {s['p99_ms']:>8.2f} | {s['max_ms']:>8.2f}"
            )
    return "\n".join(lines)
