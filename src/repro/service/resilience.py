"""Fault tolerance for the recompilation service.

The paper's pitch only pays off if the recompile loop is *always*
available: a fuzzer blocked on a dead compile server loses every saved
millisecond.  This module is the service's answer — degrade, never die:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic seeded jitter.  Pure: ``delay_s(attempt)`` is a function
  of ``(policy, attempt)`` only, so chaos runs replay identically.
* :class:`CircuitBreaker` — classic closed/open/half-open gate.  After
  ``failure_threshold`` consecutive batch failures the breaker opens and
  new submissions fail fast with a ``retry_after_s`` hint instead of
  piling onto a broken engine; after ``reset_timeout_s`` one half-open
  trial decides whether to close again.
* :class:`SupervisedCompiler` — the degradation ladder.  Wraps the
  fragment pools of :mod:`repro.service.workers`: a
  :class:`~repro.service.workers.WorkerError` (crash or hang) tears the
  pool down, rebuilds it and retries the batch; when a rung keeps
  failing the ladder escalates ``process -> thread -> serial`` (PartiSan
  style: degrade capacity, preserve correctness).  Because
  ``compile_fragment`` consumes its module in place, every batch is
  snapshotted as printed IR before the first attempt and retries re-parse
  pristine copies — a half-optimized module can never be compiled twice.

Everything here reports into the shared metrics registry
(``worker_restarts``, ``worker_degradations``, ``degraded_mode``,
``breaker_state``) and tracer (``service.worker_restart`` /
``service.degrade`` fault spans).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.backend.machine import ObjectFile
from repro.ir.module import Module
from repro.service.workers import (
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    WorkerError,
    make_compiler,
)
from repro.utils.rng import DeterministicRNG

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DEGRADATION_LADDERS",
    "RetryPolicy",
    "SupervisedCompiler",
]


# -- retry policy ----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *attempts*, not retries: 3 means one try plus
    up to two retries.  ``delay_s(attempt)`` is the backoff slept after
    failed attempt *attempt* (1-based); jitter subtracts up to
    ``jitter * delay`` using an RNG seeded from ``(seed, attempt)``, so
    two services with the same policy back off identically — seeded chaos
    schedules depend on that.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.1
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt *attempt*."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if not self.jitter or not raw:
            return raw
        rng = DeterministicRNG(self.seed * 1_000_003 + attempt)
        return raw * (1.0 - self.jitter * rng.random())

    def delays(self) -> List[float]:
        """Every backoff this policy will sleep, in order."""
        return [self.delay_s(a) for a in range(1, self.max_attempts)]


# -- circuit breaker -------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# Numeric encoding for the ``breaker_state`` gauge.
BREAKER_STATE_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class CircuitBreaker:
    """Closed / open / half-open gate over the service's batch engine.

    * **closed** — everything flows; consecutive failures are counted.
    * **open** — after ``failure_threshold`` consecutive failures:
      :meth:`allow` returns False until ``reset_timeout_s`` elapses, so
      clients get a fast error (with :meth:`retry_after_s` as a hint)
      instead of queueing behind a broken engine.
    * **half-open** — after the timeout, up to ``half_open_max_calls``
      trial calls are let through; one success closes the breaker, one
      failure re-opens it (and restarts the timeout).

    Thread-safe.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._trials = 0            # half-open calls let through so far
        # Lifetime accounting (exported via service stats).
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._poll()

    def _poll(self) -> str:
        """Advance open -> half-open on timeout; caller holds the lock."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = BREAKER_HALF_OPEN
            self._trials = 0
        return self._state

    def allow(self) -> bool:
        """May a new request pass?  Counts half-open trial admissions."""
        with self._lock:
            state = self._poll()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN and self._trials < self.half_open_max_calls:
                self._trials += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._poll()
            self._failures = 0
            if self._state != BREAKER_CLOSED:
                self._state = BREAKER_CLOSED
                self._trials = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._poll()
            if state == BREAKER_HALF_OPEN:
                self._trip()
            else:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()

    def _trip(self) -> None:
        self._state = BREAKER_OPEN
        self._failures = 0
        self._trials = 0
        self._opened_at = self._clock()
        self.opens += 1

    def retry_after_s(self) -> float:
        """Seconds until the breaker will admit a half-open trial."""
        with self._lock:
            if self._poll() != BREAKER_OPEN:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(self.reset_timeout_s - elapsed, 0.0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._poll(),
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "rejections": self.rejections,
                "retry_after_s": (
                    max(self.reset_timeout_s - (self._clock() - self._opened_at), 0.0)
                    if self._state == BREAKER_OPEN
                    else 0.0
                ),
            }


# -- degradation ladder ----------------------------------------------------------

# Requested mode -> rungs tried in order.  Serial inline is the floor:
# it cannot crash or hang (no pool), only surface real compile errors.
DEGRADATION_LADDERS = {
    MODE_PROCESS: (MODE_PROCESS, MODE_THREAD, MODE_SERIAL),
    MODE_THREAD: (MODE_THREAD, MODE_SERIAL),
    MODE_SERIAL: (MODE_SERIAL,),
}


class SupervisedCompiler:
    """Fragment compiler with restart-retry-degrade supervision.

    Drop-in for the raw pool compilers (``compile_batch`` / ``workers`` /
    ``close``): the engine never learns that the pool beneath it was torn
    down, rebuilt, or replaced by a lower rung.  Faults escalate in three
    stages:

    1. **restart + retry** — a :class:`WorkerError` tears the current
       pool down (``worker_restarts``) and the batch is retried from its
       pristine IR snapshot, backing off per the :class:`RetryPolicy`;
    2. **degrade** — a rung that exhausts its retries is closed for good
       and the next rung takes over (``degraded_mode`` gauge: rung
       index); process pools fall back to threads, threads to serial;
    3. **surface** — only when the serial floor itself fails does the
       error propagate (it is then a real compile error, not a fault).

    ``fault_injector`` is the chaos hook: called before every attempt
    with ``(compiler, modules, attempt)``; raising a ``WorkerError``
    from it simulates a crash/hang at exactly that point.
    """

    def __init__(
        self,
        mode: str = MODE_SERIAL,
        workers: int = 1,
        *,
        retry: Optional[RetryPolicy] = None,
        metrics=None,
        tracer=None,
        batch_timeout_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        fault_injector: Optional[Callable] = None,
        memo=None,
    ):
        try:
            self.ladder: Tuple[str, ...] = DEGRADATION_LADDERS[mode]
        except KeyError:
            raise ValueError(
                f"unknown worker mode {mode!r}; expected one of "
                f"{tuple(DEGRADATION_LADDERS)}"
            ) from None
        self.requested_mode = mode
        self.requested_workers = workers
        self.retry = retry or RetryPolicy()
        self.metrics = metrics
        self.tracer = tracer
        self.batch_timeout_s = batch_timeout_s
        self.fault_injector = fault_injector
        # Pass-memoization cache shared by every rung that can use it
        # (serial/thread; process rungs compile memo-less).  Degrading a
        # rung therefore never loses memoized middle-end work.
        self.memo = memo
        self._sleep = sleep
        self._rung = 0
        self._compilers: dict = {}
        self._lock = threading.RLock()
        self.worker_restarts = 0
        self.degradations = 0

    # -- introspection ---------------------------------------------------------

    @property
    def mode(self) -> str:
        """The rung currently serving batches."""
        return self.ladder[self._rung]

    @property
    def degraded(self) -> bool:
        return self._rung > 0

    @property
    def workers(self) -> int:
        return self._current().workers

    def _current(self):
        compiler = self._compilers.get(self._rung)
        if compiler is None:
            compiler = make_compiler(
                self.mode, self.requested_workers,
                batch_timeout_s=self.batch_timeout_s,
                memo=self.memo,
            )
            self._compilers[self._rung] = compiler
        return compiler

    def stats(self) -> dict:
        with self._lock:
            return {
                "requested_mode": self.requested_mode,
                "mode": self.mode,
                "workers": self.workers,
                "worker_restarts": self.worker_restarts,
                "degradations": self.degradations,
            }

    # -- compilation -----------------------------------------------------------

    def compile_batch(
        self, modules: List[Module], opt_level: int, verify: bool
    ) -> List[ObjectFile]:
        with self._lock:
            # ``compile_fragment`` rewrites its module in place, so a
            # failed attempt leaves half-optimized IR behind.  Snapshot
            # the batch as printed IR up front; retries re-parse pristine
            # copies (the same canonical text the process pool ships).
            snapshot = None
            if self.retry.max_attempts > 1 or len(self.ladder) > 1:
                from repro.ir.printer import print_module

                # Names ride along: printed IR does not carry them, and
                # they end up in the objects' canonical bytes.
                snapshot = [(m.name, print_module(m)) for m in modules]
            batch = modules
            last_error: Optional[WorkerError] = None
            while True:
                compiler = self._current()
                for attempt in range(1, self.retry.max_attempts + 1):
                    try:
                        if self.fault_injector is not None:
                            self.fault_injector(self, batch, attempt)
                        return compiler.compile_batch(batch, opt_level, verify)
                    except WorkerError as error:
                        last_error = error
                        self._note_restart(compiler, error, attempt)
                        batch = self._restore(snapshot, batch)
                        if attempt < self.retry.max_attempts:
                            self._sleep(self.retry.delay_s(attempt))
                if self._rung + 1 >= len(self.ladder):
                    raise WorkerError(
                        f"all rungs of the {self.requested_mode} degradation "
                        f"ladder failed"
                    ) from last_error
                self._degrade(last_error)

    @staticmethod
    def _restore(
        snapshot: Optional[List[Tuple[str, str]]], batch: List[Module]
    ) -> List[Module]:
        if snapshot is None:  # pragma: no cover - retries imply a snapshot
            return batch
        from repro.ir.parser import parse_module

        return [parse_module(text, name) for name, text in snapshot]

    def _note_restart(self, compiler, error: WorkerError, attempt: int) -> None:
        restart = getattr(compiler, "restart", None)
        if restart is not None:
            restart()
        self.worker_restarts += 1
        if self.metrics is not None:
            self.metrics.inc("worker_restarts")
        self._fault_span(
            "service.worker_restart",
            mode=self.mode,
            attempt=attempt,
            error=type(error).__name__,
        )

    def _degrade(self, error: Optional[WorkerError]) -> None:
        failed = self._compilers.pop(self._rung, None)
        if failed is not None:
            close = getattr(failed, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - broken pools may throw
                    pass
        from_mode = self.mode
        self._rung += 1
        self.degradations += 1
        if self.metrics is not None:
            self.metrics.inc("worker_degradations")
            self.metrics.set_gauge("degraded_mode", self._rung)
        self._fault_span(
            "service.degrade",
            from_mode=from_mode,
            to_mode=self.mode,
            error=type(error).__name__ if error is not None else "unknown",
        )

    def _fault_span(self, name: str, **args) -> None:
        if self.tracer is None:
            return
        from repro.obs.tracer import CAT_FAULT, Span

        self.tracer.record(Span(name, cat=CAT_FAULT, args=args))

    def close(self) -> None:
        with self._lock:
            for compiler in self._compilers.values():
                close = getattr(compiler, "close", None)
                if close is not None:
                    close()
            self._compilers.clear()
