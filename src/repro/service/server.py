"""The recompilation service: many clients, one engine per target.

Structure (inference-server style)::

    clients ──▶ JobQueue ──▶ dispatcher ──▶ batch merge (dedup)
                                         ──▶ PatchManager mutations
                                         ──▶ Odin.rebuild
                                               ├─ content cache (hits skip compile)
                                               ├─ fragment worker pool (misses)
                                               └─ link cache (skip relink)
                                         ──▶ ServiceReply fan-out to jobs

The dispatcher drains *all* pending requests for a target into one
batch: concurrent probe-change requests are merged, duplicate ops are
deduplicated, and a single rebuild answers every client.  The engine
runs with the service's shared content-addressed code cache (optionally
persistent, so warm state survives restarts) and fragment compile pool.

Fault tolerance (``repro.service.resilience``): the fragment pool runs
under a :class:`~repro.service.resilience.SupervisedCompiler` (restart,
retry with seeded backoff, process→thread→serial degradation ladder),
transient :class:`~repro.service.workers.WorkerError`s retry the merged
batch instead of failing every waiter, a
:class:`~repro.service.resilience.CircuitBreaker` fails new submissions
fast (with a ``retry_after_s`` hint) once the engine keeps breaking,
jobs carry optional deadlines and the queue a max depth (expired /
overflow jobs are shed, never silently dropped), and shutdown drains
under a finite ``drain_timeout_s`` — abandoned jobs are counted and
answered with an error rather than left waiting forever.

``RecompilationService`` can run its dispatcher on a background thread
(``start()``/``stop()``, or as a context manager) or be stepped
deterministically with ``process_once()`` — tests and the benchmark use
the latter to control batching exactly.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Dict, List, Optional

from repro.core.engine import Odin, RebuildReport
from repro.errors import ReproError, ScheduleError
from repro.ir.module import Module
from repro.linker.cache import LinkCache
from repro.obs.metrics import ServiceMetrics
from repro.obs.trace import stage_totals
from repro.obs.tracer import CAT_FAULT, CAT_SERVICE, Tracer
from repro.service.cache import (
    CodeCache,
    InMemoryCodeCache,
    PassMemoCache,
    PersistentCodeCache,
)
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    OP_MARK_CHANGED,
    OP_REMOVE,
    CompileRequest,
    Job,
    JobQueue,
    ProbeOp,
    ServiceReply,
    batch_clients,
    merge_batch,
)
from repro.service.resilience import (
    BREAKER_STATE_GAUGE,
    CircuitBreaker,
    RetryPolicy,
    SupervisedCompiler,
)
from repro.service.workers import MODE_SERIAL, WorkerError, make_compiler

log = logging.getLogger("repro.service")


class ServiceError(ReproError):
    """Service-level failure; carries ``retry_after_s`` when the circuit
    breaker is open so clients know when to come back."""

    def __init__(self, message: str, *, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class _Target:
    """One registered target: engine + serialization lock."""

    def __init__(self, name: str, engine: Odin):
        self.name = name
        self.engine = engine
        self.lock = threading.Lock()


class RecompilationService:
    """Long-running compile server for on-the-fly recompilation."""

    def __init__(
        self,
        *,
        workers: int = 1,
        worker_mode: str = MODE_SERIAL,
        cache: Optional[CodeCache] = None,
        cache_dir: Optional[str] = None,
        cache_max_bytes: int = 64 * 1024 * 1024,
        link_cache_entries: int = 32,
        metrics: Optional[ServiceMetrics] = None,
        tracer: Optional[Tracer] = None,
        poll_interval_s: float = 0.02,
        supervise: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        batch_timeout_s: Optional[float] = 30.0,
        queue_max_depth: Optional[int] = None,
        drain_timeout_s: float = 30.0,
        pass_memo: bool = True,
    ):
        if cache is not None and cache_dir is not None:
            raise ServiceError("pass either cache or cache_dir, not both")
        if cache is None:
            cache = (
                PersistentCodeCache(cache_dir, max_bytes=cache_max_bytes)
                if cache_dir is not None
                else InMemoryCodeCache(max_bytes=cache_max_bytes)
            )
        self.cache = cache
        # Tier-2 pass memoization, shared by every target and every rung
        # of the degradation ladder: re-optimizing IR the service has
        # already optimized (for any target/variant) costs isel only.
        # ``pass_memo`` may also be a ready-made cache instance — the
        # cluster mounts one memo (like one object cache) across every
        # shard so cross-shard failovers keep their memoized middle end.
        if pass_memo is None or pass_memo is False:
            self.pass_memo = None
        elif pass_memo is True:
            self.pass_memo = PassMemoCache()
        else:
            self.pass_memo = pass_memo
        self.metrics = metrics or ServiceMetrics()
        # One tracer shared by every target engine and the dispatcher:
        # rebuild span trees nest under the dispatch ("service.batch")
        # spans of the thread that executed them.
        self.tracer = tracer or Tracer()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        if supervise:
            self.compiler = SupervisedCompiler(
                worker_mode,
                workers,
                retry=self.retry_policy,
                metrics=self.metrics,
                tracer=self.tracer,
                batch_timeout_s=batch_timeout_s,
                memo=self.pass_memo,
            )
        else:
            self.compiler = make_compiler(
                worker_mode, workers, batch_timeout_s=batch_timeout_s,
                memo=self.pass_memo,
            )
        self.link_cache_entries = link_cache_entries
        self.queue = JobQueue(max_depth=queue_max_depth, metrics=self.metrics)
        self.poll_interval_s = poll_interval_s
        self.drain_timeout_s = drain_timeout_s
        self._targets: Dict[str, _Target] = {}
        # Guards `_targets`: registrations race with dispatcher lookups.
        self._state_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._running = threading.Event()
        # Speculative precompilation: target name -> speculator, serviced
        # only when the dispatcher finds the queue idle.
        self._speculators: Dict[str, "ProbeStateSpeculator"] = {}
        self.speculation_budget = 4

    # -- target management -----------------------------------------------------

    def register_target(self, name: str, module: Module, **odin_kwargs) -> Odin:
        """Create a target's engine wired to the service's caches/pool."""
        with self._state_lock:
            if name in self._targets:
                raise ServiceError(f"target {name!r} is already registered")
        # Engine construction is slow; do it outside the lock and settle
        # concurrent registrations of the same name at insertion.
        odin_kwargs.setdefault("tracer", self.tracer)
        odin_kwargs.setdefault("pass_memo", self.pass_memo)
        engine = Odin(
            module,
            object_cache=self.cache,
            compiler=self.compiler,
            link_cache=LinkCache(self.link_cache_entries),
            **odin_kwargs,
        )
        with self._state_lock:
            if name in self._targets:
                raise ServiceError(f"target {name!r} is already registered")
            self._targets[name] = _Target(name, engine)
            count = len(self._targets)
        self.metrics.set_gauge("targets", count)
        return engine

    def engine(self, target: str) -> Odin:
        return self._target(target).engine

    def build(self, target: str) -> RebuildReport:
        """Run a target's initial build through the service pipeline."""
        entry = self._target(target)
        with entry.lock:
            start = time.perf_counter()
            report = entry.engine.initial_build()
            self._record_rebuild(report, time.perf_counter() - start)
        return report

    def client(self, target: str, client_id: str = "anon") -> "ServiceClient":
        from repro.service.client import ServiceClient

        self._target(target)  # validate early
        return ServiceClient(self, target, client_id)

    def _target(self, name: str) -> _Target:
        with self._state_lock:
            try:
                return self._targets[name]
            except KeyError:
                raise ServiceError(f"unknown target {name!r}") from None

    # -- request path ----------------------------------------------------------

    def submit(self, request: CompileRequest) -> Job:
        self._target(request.target)
        if not self.breaker.allow():
            retry_after = self.breaker.retry_after_s()
            self.metrics.inc("breaker_rejections")
            raise ServiceError(
                f"circuit breaker is open after repeated batch failures; "
                f"retry in {retry_after:.2f}s",
                retry_after_s=retry_after,
            )
        # JobQueue.submit stamps job.submitted_at under the queue lock,
        # before the dispatcher can see the job; it may shed with
        # QueueFullError when the queue is at max depth.
        job = self.queue.submit(request)
        # Expired result() waits surface the breaker's recovery hint.
        job.retry_hint = self.breaker.retry_after_s
        self.metrics.set_gauge("queue_depth", self.queue.depth())
        return job

    def process_once(self, timeout: Optional[float] = 0.0) -> int:
        """Drain and execute one batch synchronously; returns jobs served."""
        target, batch = self.queue.pop_batch(timeout)
        if not batch:
            return 0
        self._execute_batch(target, batch)
        return len(batch)

    # -- background dispatcher -------------------------------------------------

    def start(self) -> "RecompilationService":
        if self._dispatcher is not None:
            return self
        self._running.set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="odin-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(
        self, drain: bool = True, drain_timeout_s: Optional[float] = None
    ) -> int:
        """Stop the dispatcher; returns how many jobs were left behind.

        With ``drain`` the queue is given up to ``drain_timeout_s``
        (default: the service's ``drain_timeout_s``) to empty — shutdown
        can no longer spin forever behind a wedged engine.  Jobs still
        queued or in flight when the deadline passes are *abandoned*:
        counted (``drain_abandoned``), logged, and left queued so a
        restarted dispatcher can still serve them (``close()`` answers
        them with an error instead).
        """
        if self._dispatcher is None:
            return 0
        budget = self.drain_timeout_s if drain_timeout_s is None else drain_timeout_s
        deadline = time.monotonic() + budget
        if drain:
            while self.queue.depth() and time.monotonic() < deadline:
                time.sleep(self.poll_interval_s)
        self._running.clear()
        self._dispatcher.join(timeout=max(deadline - time.monotonic(), budget / 2))
        stuck = self._dispatcher.is_alive()
        self._dispatcher = None
        abandoned = self.queue.depth() + (1 if stuck else 0)
        if abandoned:
            self.metrics.inc("drain_abandoned", abandoned)
            log.warning(
                "service stopped with %d job(s) abandoned%s (drain budget %.1fs)",
                abandoned,
                " and a stuck dispatcher" if stuck else "",
                budget,
            )
        return abandoned

    def close(self) -> None:
        self.stop()
        # Never leave a waiter hanging: whatever survived the drain gets
        # an error reply instead of an eternal wait().
        for job in self.queue.drain_remaining():
            job.set_error(
                ServiceError("service closed before this job was dispatched")
            )
        close = getattr(self.compiler, "close", None)
        if close is not None:
            close()
        # Persist any deferred LRU ticks (persistent cache only).
        flush = getattr(self.cache, "flush", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "RecompilationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _dispatch_loop(self) -> None:
        while self._running.is_set():
            try:
                served = self.process_once(timeout=self.poll_interval_s)
                if served == 0:
                    # Idle lane: warm the cache for predicted probe
                    # states.  Real jobs always win — speculation only
                    # runs when a poll interval passed with no work.
                    self.run_speculation()
            except Exception:  # keep the dispatcher alive, whatever happens
                self.metrics.inc("dispatcher_errors")
                log.exception("dispatcher error; continuing")

    # -- speculative precompilation --------------------------------------------

    def attach_speculator(
        self, target: str, *, top_k: int = 3, max_states: int = 4
    ) -> "ProbeStateSpeculator":
        """Create and register a speculator for *target*'s engine.

        Feed it corpus observations (``speculator.observe_corpus``); the
        dispatcher services its predictions whenever the job queue goes
        idle.  Returns the speculator (also reachable via
        ``service.speculator(target)``).
        """
        from repro.service.speculate import ProbeStateSpeculator

        entry = self._target(target)
        speculator = ProbeStateSpeculator(
            entry.engine, top_k=top_k, max_states=max_states
        )
        with self._state_lock:
            self._speculators[target] = speculator
        return speculator

    def speculator(self, target: str) -> Optional["ProbeStateSpeculator"]:
        with self._state_lock:
            return self._speculators.get(target)

    def run_speculation(self, budget: Optional[int] = None) -> int:
        """Service pending predictions; returns fragments precompiled.

        Backpressure: refuses to speculate while real jobs are queued,
        and each target's engine lock is taken so speculation can never
        interleave with a live rebuild of the same target.
        """
        if self.queue.depth():
            return 0
        budget = self.speculation_budget if budget is None else budget
        with self._state_lock:
            speculators = list(self._speculators.items())
        compiled = 0
        for target, speculator in speculators:
            if speculator.pending() == 0:
                continue
            if self.queue.depth():  # a real job arrived mid-sweep
                break
            entry = self._target(target)
            with entry.lock:
                compiled += speculator.precompile(budget)
        if compiled:
            self.metrics.inc("speculative_compiles", compiled)
        return compiled

    # -- batch execution -------------------------------------------------------

    def _execute_batch(self, target: str, batch: List[Job]) -> None:
        entry = self._target(target)
        now = time.perf_counter()
        waits_ms = [(now - job.submitted_at) * 1000.0 for job in batch]
        for wait in waits_ms:
            self.metrics.observe("queue_wait_ms", wait)
        self.metrics.set_gauge("queue_depth", self.queue.depth())

        try:
            ops, submitted, applied = merge_batch(batch)
            skipped = 0
            start = time.perf_counter()
            with entry.lock, self.tracer.span(
                "service.batch",
                cat=CAT_SERVICE,
                clock=entry.engine.clock,
                target=target,
                batch_size=len(batch),
                queue_wait_ms=max(waits_ms, default=0.0),
            ):
                for op in ops:
                    if not self._apply_op(entry.engine, op):
                        skipped += 1
                report, attempts = self._rebuild_with_retry(entry)
            real_ms = (time.perf_counter() - start) * 1000.0

            self.metrics.inc("requests_total", len(batch))
            self.metrics.inc("batches_total")
            self.metrics.inc("ops_submitted", submitted)
            self.metrics.inc("ops_applied", applied - skipped)
            self.metrics.inc("ops_skipped", skipped)
            self.metrics.observe("batch_size", len(batch))
            if report is not None:
                self._record_rebuild(report, real_ms / 1000.0)

            reply = ServiceReply(
                report=report,
                batch_size=len(batch),
                batch_clients=batch_clients(batch),
                ops_submitted=submitted,
                ops_applied=applied - skipped,
                ops_skipped=skipped,
                queue_wait_ms=max(waits_ms, default=0.0),
                attempts=attempts,
            )
            self._breaker_outcome(success=True)
            for job in batch:
                job.set_reply(reply)
        except BaseException as error:  # answer every waiter, then surface
            self.metrics.inc("batch_errors")
            self._breaker_outcome(success=False)
            for job in batch:
                job.set_error(error)
            if not isinstance(error, Exception):  # pragma: no cover
                raise

    def _rebuild_with_retry(self, entry: _Target) -> tuple:
        """Run the batch's rebuild, retrying transient worker faults.

        The probe ops are already applied (idempotently recorded in the
        PatchManager) and a failed rebuild does not clear the dirty set,
        so a retry re-schedules the same state.  Returns
        ``(report, attempts)``.
        """
        policy = self.retry_policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return entry.engine.rebuild_if_needed(), attempt
            except WorkerError as error:
                self.metrics.inc("batch_retries")
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay_s(attempt)
                with self.tracer.span(
                    "service.retry",
                    cat=CAT_FAULT,
                    attempt=attempt,
                    backoff_s=round(delay, 4),
                    error=type(error).__name__,
                ):
                    time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _breaker_outcome(self, *, success: bool) -> None:
        before = self.breaker.state
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        after = self.breaker.state
        self.metrics.set_gauge("breaker_state", BREAKER_STATE_GAUGE[after])
        if after != before and not success:
            self.metrics.inc("breaker_opens")
        if after != before:
            from repro.obs.tracer import Span

            self.tracer.record(
                Span(
                    "service.breaker",
                    cat=CAT_FAULT,
                    args={"from": before, "to": after},
                )
            )

    def _apply_op(self, engine: Odin, op: ProbeOp) -> bool:
        """Apply one probe op; False when the probe is gone (stale id)."""
        manager = engine.manager
        try:
            probe = manager.get_probe(op.probe_id)
            if op.kind == OP_ENABLE:
                manager.enable(probe)
            elif op.kind == OP_DISABLE:
                manager.disable(probe)
            elif op.kind == OP_REMOVE:
                manager.remove(probe)
            elif op.kind == OP_MARK_CHANGED:
                manager.mark_changed(probe)
            return True
        except ScheduleError:
            return False

    def _record_rebuild(self, report: RebuildReport, real_s: float) -> None:
        m = self.metrics
        m.inc("rebuilds_total")
        # Patched fragments never reached a compiler or the object cache:
        # they are their own tier, not compiles and not cache traffic.
        compiled = len(report.fragment_ids) - report.cache_hits - report.patched
        m.inc("fragments_compiled", compiled)
        m.inc("cache_hits", report.cache_hits)
        m.inc("cache_misses", compiled)
        m.inc("fragments_patched", report.patched)
        m.inc("memo_hits", report.memo_hits)
        m.inc("speculative_hits", report.speculative_hits)
        m.inc(f"rebuild_tier.{report.tier}")
        m.inc("probes_applied", report.probes_applied)
        if report.link_reused:
            m.inc("links_reused")
        m.observe("compile_sim_ms", report.compile_wall_ms)
        m.observe("link_sim_ms", report.link_ms)
        m.observe("rebuild_sim_ms", report.wall_ms)
        m.observe("rebuild_real_ms", real_s * 1000.0)
        if report.trace is not None:
            for stage, sim_ms in stage_totals([report.trace]).items():
                m.observe(f"stage.{stage}.sim_ms", sim_ms)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """The ``stats()`` endpoint: metrics + cache + queue snapshot."""
        snapshot = self.metrics.stats()
        snapshot["code_cache"] = self.cache.stats()
        if self.pass_memo is not None:
            snapshot["pass_memo"] = self.pass_memo.stats()
        # Single-lock snapshot: the queue dict used to be assembled from
        # seven independent reads and could tear mid-update (a shed
        # between reads made shed_total != shed_expired + shed_overflow).
        snapshot["queue"] = self.queue.stats()
        with self._state_lock:
            targets = sorted(self._targets)
            entries = list(self._targets.items())
        snapshot["service"] = {
            "targets": targets,
            "workers": self.compiler.workers,
            "running": self._dispatcher is not None,
        }
        compiler_stats = getattr(self.compiler, "stats", None)
        if compiler_stats is not None:
            snapshot["service"]["compiler"] = compiler_stats()
        snapshot["breaker"] = self.breaker.stats()
        link_stats = {}
        for name, entry in entries:
            if entry.engine.link_cache is not None:
                link_stats[name] = entry.engine.link_cache.stats()
        snapshot["link_cache"] = link_stats
        with self._state_lock:
            speculators = list(self._speculators.items())
        if speculators:
            snapshot["speculation"] = {
                name: spec.stats() for name, spec in speculators
            }
        return snapshot
