"""Speculative precompilation: warm the code cache before the fuzzer asks.

The tier-3 amortization.  A coverage-guided fuzzing loop has a highly
predictable probe-state trajectory: probes whose counters fired get
pruned (removed) at the next ``prune_covered``, and the corpus's
top-energy entries say which blocks the scheduler will hammer — and
therefore cover — next.  :class:`ProbeStateSpeculator` turns that signal
into concrete *predicted probe states*, compiles the affected fragments
for those states in idle worker lanes, and plants the objects in the
service's content-addressed cache.  When the prune really happens the
rebuild's cache probe hits (``RebuildReport.speculative_hits``) and the
fuzzer never waits on the middle end at all.

Predictions never mutate engine state: the speculator runs a real
:class:`~repro.core.scheduler.Scheduler` over a :class:`_PredictedManager`
facade (the live manager minus the predicted-pruned probes), so the
instrumented IR, probe signature and content key are computed by exactly
the code the real rebuild will run — a correct prediction is a key-exact
cache hit, an incorrect one is just a warm entry nobody reads.

Backpressure: the service only calls :meth:`precompile` from its
dispatcher when the job queue is empty (see
``RecompilationService._dispatch_loop``), and each call compiles at most
``budget`` fragments, so speculation can never delay a real rebuild.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.core.engine import Odin, fragment_content_key

__all__ = ["ProbeStateSpeculator"]


class _PredictedManager:
    """The live :class:`PatchManager` with a predicted removal applied.

    Duck-types the slice of the manager interface the scheduler consumes.
    The removed probes' target symbols are reported as *external* dirt,
    which forces the scheduler's full path — exactly what the real
    post-prune rebuild will take (removals change the compiled-in site
    set, so they can never be patched).
    """

    def __init__(self, manager, removed_ids: Set[int]):
        self._manager = manager
        self._removed = set(removed_ids)

    def __iter__(self) -> Iterator:
        return (p for p in self._manager if p.id not in self._removed)

    def dirty_symbols(self) -> set:
        return {
            p.target_symbol() for p in self._manager if p.id in self._removed
        }

    def dirty_records(self) -> dict:
        return {}

    def external_dirty_symbols(self) -> set:
        return self.dirty_symbols()


class ProbeStateSpeculator:
    """Predicts likely next probe states and precompiles them.

    ``observe_corpus`` reads the fuzzer's corpus (and the coverage
    runtime, when the tool exposes one) and refreshes the prediction
    queue; ``precompile`` services that queue, newest prediction first,
    planting finished masters in the engine's object cache and recording
    their keys in ``engine.speculative_keys`` so later cache hits are
    attributed to speculation.
    """

    def __init__(self, engine: Odin, *, top_k: int = 3, max_states: int = 4):
        if engine.object_cache is None:
            raise ValueError(
                "speculation needs an engine with a content-addressed "
                "object cache; there is nowhere to plant predictions"
            )
        self.engine = engine
        self.top_k = top_k
        self.max_states = max_states
        # Predicted states, best first; each is a frozenset of probe ids
        # expected to be removed together.
        self._predictions: List[FrozenSet[int]] = []
        self._tried: Set[FrozenSet[int]] = set()
        self._lock = threading.Lock()
        # Accounting.
        self.states_predicted = 0
        self.fragments_precompiled = 0

    # -- prediction ------------------------------------------------------------

    def observe_corpus(self, corpus, runtime=None) -> int:
        """Refresh predictions from the corpus; returns how many are queued.

        The strongest prediction is the *certain* one: probes whose
        runtime counter already fired are exactly what the next
        ``prune_covered`` removes.  Behind it come speculative unions
        with the coverage of the ``top_k`` highest-energy corpus entries
        — the inputs the scheduler will fuzz (and therefore cover) next.
        """
        live = {p.id for p in self.engine.manager if p.patchable}
        states: List[FrozenSet[int]] = []

        covered: Set[int] = set()
        if runtime is not None:
            covered = set(runtime.covered_ids()) & live
            if covered:
                states.append(frozenset(covered))

        entries = sorted(
            corpus.entries, key=lambda e: e.energy, reverse=True
        )[: self.top_k]
        for entry in entries:
            predicted = frozenset((covered | set(entry.coverage)) & live)
            if predicted and predicted not in states:
                states.append(predicted)

        with self._lock:
            self._predictions = [
                s for s in states[: self.max_states] if s not in self._tried
            ]
            self.states_predicted += len(self._predictions)
            return len(self._predictions)

    def pending(self) -> int:
        with self._lock:
            return len(self._predictions)

    # -- precompilation --------------------------------------------------------

    def precompile(self, budget: int = 4) -> int:
        """Compile up to *budget* fragments of queued predictions.

        Returns the number of fragments actually compiled and planted.
        States whose keys are all already cached cost nothing and are
        simply retired.
        """
        compiled = 0
        while compiled < budget:
            with self._lock:
                if not self._predictions:
                    return compiled
                removed = self._predictions.pop(0)
                self._tried.add(removed)
            compiled += self._precompile_state(removed, budget - compiled)
        return compiled

    def _precompile_state(self, removed: FrozenSet[int], budget: int) -> int:
        engine = self.engine
        from repro.core.scheduler import Scheduler

        live_ids = {p.id for p in engine.manager}
        if not removed <= live_ids:
            return 0  # the state raced a real rebuild; stale prediction
        scheduler = Scheduler(engine, _PredictedManager(engine.manager, removed))
        scheduler.apply_probes()
        compiled = 0
        pending: List = []
        keys: Dict[int, str] = {}
        for fragment in scheduler.changed_fragments:
            frag_module = engine._split_fragment(
                scheduler.temp_module, fragment
            )
            key = fragment_content_key(
                frag_module,
                engine.opt_level,
                engine._probe_signature(scheduler, fragment),
                engine.variant_label,
            )
            engine.speculative_keys.add(key)
            if engine.object_cache.get(key) is not None:
                continue  # already warm (possibly from a prior prediction)
            pending.append(frag_module)
            keys[len(pending) - 1] = key
            if len(pending) >= budget:
                break
        if pending:
            objects = engine.compiler.compile_batch(
                pending, engine.opt_level, engine.verify
            )
            for index, obj in enumerate(objects):
                engine.object_cache.put(keys[index], obj)
                compiled += 1
        self.fragments_precompiled += compiled
        return compiled

    def stats(self) -> dict:
        with self._lock:
            return {
                "states_predicted": self.states_predicted,
                "fragments_precompiled": self.fragments_precompiled,
                "pending": len(self._predictions),
            }
