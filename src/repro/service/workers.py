"""Parallel fragment compile pools.

Fragments are independent compilation units (each is split into its own
module and lowered to its own object file), so a rebuild's cache-miss
batch can fan out across workers: Fig. 12's worst-case fragment no
longer serializes the whole batch behind it.

Three pool flavours, all order-preserving (results come back in batch
order regardless of completion order, which keeps reports and the
simulated clock deterministic for any worker count):

* ``serial``  — in-process loop; byte-identical to the classic engine.
* ``thread``  — ``concurrent.futures.ThreadPoolExecutor``; fragments
  compile concurrently in-process (type interning is thread-safe, see
  ``repro.ir.types``).
* ``process`` — ``ProcessPoolExecutor``; fragment IR is shipped as
  printed text (module graphs hold interned types that must not cross
  process boundaries) and re-parsed in the worker, the same canonical
  text content addressing hashes.

Reported durations always come from the deterministic cost model: a
pool's simulated batch wall-clock is its LPT makespan
(:func:`repro.core.engine.compile_makespan`), so figures reproduce
identically on any host while the real execution genuinely overlaps.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional

from repro.backend.machine import ObjectFile
from repro.core.engine import (
    InlineFragmentCompiler,
    compile_fragment,
    compile_fragment_text,
)
from repro.ir.module import Module
from repro.ir.printer import print_module

MODE_SERIAL = "serial"
MODE_THREAD = "thread"
MODE_PROCESS = "process"
MODES = (MODE_SERIAL, MODE_THREAD, MODE_PROCESS)


class ThreadFragmentCompiler:
    """Compile a batch on a shared thread pool."""

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="odin-frag"
            )
        return self._pool

    def compile_batch(
        self, modules: List[Module], opt_level: int, verify: bool
    ) -> List[ObjectFile]:
        if len(modules) <= 1 or self.workers == 1:
            return [compile_fragment(m, opt_level, verify) for m in modules]
        pool = self._ensure_pool()
        return list(
            pool.map(lambda m: compile_fragment(m, opt_level, verify), modules)
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessFragmentCompiler:
    """Compile a batch on a process pool, shipping printed IR text."""

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def compile_batch(
        self, modules: List[Module], opt_level: int, verify: bool
    ) -> List[ObjectFile]:
        if len(modules) <= 1 or self.workers == 1:
            return [compile_fragment(m, opt_level, verify) for m in modules]
        pool = self._ensure_pool()
        texts = [print_module(m) for m in modules]
        futures = [
            pool.submit(compile_fragment_text, text, opt_level, verify)
            for text in texts
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_compiler(mode: str = MODE_SERIAL, workers: int = 1):
    """Build the fragment compiler for *mode* / *workers*."""
    if mode == MODE_SERIAL or workers <= 1:
        return InlineFragmentCompiler()
    if mode == MODE_THREAD:
        return ThreadFragmentCompiler(workers)
    if mode == MODE_PROCESS:
        return ProcessFragmentCompiler(workers)
    raise ValueError(f"unknown worker mode {mode!r}; expected one of {MODES}")
