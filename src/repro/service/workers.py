"""Parallel fragment compile pools.

Fragments are independent compilation units (each is split into its own
module and lowered to its own object file), so a rebuild's cache-miss
batch can fan out across workers: Fig. 12's worst-case fragment no
longer serializes the whole batch behind it.

Three pool flavours, all order-preserving (results come back in batch
order regardless of completion order, which keeps reports and the
simulated clock deterministic for any worker count):

* ``serial``  — in-process loop; byte-identical to the classic engine.
* ``thread``  — ``concurrent.futures.ThreadPoolExecutor``; fragments
  compile concurrently in-process (type interning is thread-safe, see
  ``repro.ir.types``).
* ``process`` — ``ProcessPoolExecutor``; fragment IR is shipped as
  printed text (module graphs hold interned types that must not cross
  process boundaries) and re-parsed in the worker, the same canonical
  text content addressing hashes.

Both pool flavours supervise their batches: an optional
``batch_timeout_s`` bounds how long a batch may run (a hung worker
raises :class:`WorkerTimeoutError` instead of blocking the rebuild
forever), a broken pool raises :class:`WorkerCrashError`, and when any
fragment fails the outstanding futures are cancelled so the batch errors
promptly.  After either infrastructure fault the pool is torn down
(:meth:`restart`) and lazily rebuilt — hung process workers are
terminated; a hung thread cannot be killed, so its pool is abandoned and
replaced.  :class:`repro.service.resilience.SupervisedCompiler` builds
the retry/degradation ladder on top of these primitives.

Reported durations always come from the deterministic cost model: a
pool's simulated batch wall-clock is its LPT makespan
(:func:`repro.core.engine.compile_makespan`), so figures reproduce
identically on any host while the real execution genuinely overlaps.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_EXCEPTION,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import List, Optional

from repro.backend.machine import ObjectFile
from repro.core.engine import (
    InlineFragmentCompiler,
    compile_fragment,
    compile_fragment_text,
)
from repro.errors import ReproError
from repro.ir.module import Module
from repro.ir.printer import print_module

MODE_SERIAL = "serial"
MODE_THREAD = "thread"
MODE_PROCESS = "process"
MODES = (MODE_SERIAL, MODE_THREAD, MODE_PROCESS)


class WorkerError(ReproError):
    """A fragment pool failed for infrastructure reasons (crash/hang).

    Distinct from a compile error (bad IR, verifier failure): worker
    errors are *transient* faults of the execution substrate, so the
    supervision layer may restart the pool and retry the batch.
    """


class WorkerCrashError(WorkerError):
    """The pool broke: a worker process died or the executor failed."""


class WorkerTimeoutError(WorkerError):
    """A batch exceeded its deadline: at least one worker is hung."""


class _PoolFragmentCompiler:
    """Shared supervision plumbing for thread/process pools."""

    def __init__(
        self,
        workers: int = 2,
        batch_timeout_s: Optional[float] = None,
        memo=None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.batch_timeout_s = batch_timeout_s
        # Optional pass-memoization cache consulted by each fragment
        # compile (thread/serial lanes only: a memo cannot cross process
        # boundaries, so the process flavour compiles without one).
        self.memo = memo
        # How many times a fault forced this pool to be torn down.
        self.restarts = 0
        self._pool = None

    # Subclasses provide the executor and the per-fragment submission.
    def _make_pool(self):
        raise NotImplementedError

    def _submit(self, pool, module: Module, opt_level: int, verify: bool):
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def compile_batch(
        self, modules: List[Module], opt_level: int, verify: bool
    ) -> List[ObjectFile]:
        if len(modules) <= 1 or self.workers == 1:
            return [
                compile_fragment(m, opt_level, verify, memo=self.memo)
                for m in modules
            ]
        pool = self._ensure_pool()
        try:
            futures = [
                self._submit(pool, m, opt_level, verify) for m in modules
            ]
        except BrokenExecutor as error:
            self.restart()
            raise WorkerCrashError(
                f"fragment pool broke on submit: {error}"
            ) from error
        return self._collect(futures)

    def _collect(self, futures) -> List[ObjectFile]:
        """Await a batch with crash/hang detection and prompt failure.

        ``wait(..., FIRST_EXCEPTION)`` returns as soon as any fragment
        fails (or the batch deadline passes), so one bad fragment no
        longer hides behind its slower siblings.
        """
        done, pending = wait(
            futures, timeout=self.batch_timeout_s, return_when=FIRST_EXCEPTION
        )
        failure = None
        for future in futures:
            if future in done and future.exception() is not None:
                failure = future.exception()
                break
        if failure is None and pending:
            # Nothing failed, yet the deadline passed: a worker is hung.
            self._cancel(futures)
            self.restart()
            raise WorkerTimeoutError(
                f"fragment batch exceeded {self.batch_timeout_s}s "
                f"({len(pending)} of {len(futures)} fragments unfinished)"
            )
        if failure is not None:
            # Cancel outstanding work so the batch errors promptly.
            self._cancel(futures)
            if isinstance(failure, BrokenExecutor):
                self.restart()
                raise WorkerCrashError(
                    f"fragment worker crashed: {failure}"
                ) from failure
            raise failure
        return [future.result() for future in futures]

    @staticmethod
    def _cancel(futures) -> None:
        for future in futures:
            future.cancel()

    def restart(self) -> None:
        """Tear down the (possibly broken/hung) pool; rebuilt lazily."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.restarts += 1
        self._kill_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)

    def _kill_workers(self, pool) -> None:  # pragma: no cover - per-flavour
        pass

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadFragmentCompiler(_PoolFragmentCompiler):
    """Compile a batch on a shared thread pool."""

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="odin-frag"
        )

    def _submit(self, pool, module: Module, opt_level: int, verify: bool):
        return pool.submit(
            compile_fragment, module, opt_level, verify, False, True,
            self.memo,
        )


class ProcessFragmentCompiler(_PoolFragmentCompiler):
    """Compile a batch on a process pool, shipping printed IR text."""

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _submit(self, pool, module: Module, opt_level: int, verify: bool):
        # Ship the module name too: the printed IR does not carry it, and
        # it is part of the object's canonical bytes (see
        # ``compile_fragment_text``).
        return pool.submit(
            compile_fragment_text, print_module(module), opt_level, verify,
            False, module.name,
        )

    def _kill_workers(self, pool) -> None:
        # A hung worker never exits on its own; terminate so the torn-down
        # pool cannot leak live processes.  Best-effort: the process table
        # is executor-private and may already be reaped.
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass


def make_compiler(
    mode: str = MODE_SERIAL,
    workers: int = 1,
    batch_timeout_s: Optional[float] = None,
    memo=None,
):
    """Build the fragment compiler for *mode* / *workers*.

    ``memo`` (a :class:`repro.service.cache.PassMemoCache`) threads
    pass memoization through the serial and thread flavours; process
    pools ignore it — a shared in-memory memo cannot be consulted from a
    forked worker, and shipping one per batch would cost more than the
    middle end it saves.
    """
    if mode == MODE_SERIAL or workers <= 1:
        return InlineFragmentCompiler(memo=memo)
    if mode == MODE_THREAD:
        return ThreadFragmentCompiler(
            workers, batch_timeout_s=batch_timeout_s, memo=memo
        )
    if mode == MODE_PROCESS:
        return ProcessFragmentCompiler(workers, batch_timeout_s=batch_timeout_s)
    raise ValueError(f"unknown worker mode {mode!r}; expected one of {MODES}")
