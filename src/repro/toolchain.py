"""End-to-end toolchain conveniences.

``build(source)`` is the whole classic pipeline in one call:
MiniC -> IR -> optimize -> lower -> link -> executable.  This is the
"normal compiler" path; Odin's on-the-fly path lives in
:mod:`repro.core.engine` and shares every stage below the frontend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.backend.isel import lower_module
from repro.frontend.codegen import compile_source
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.linker.linker import Executable, link
from repro.opt.pipeline import optimize
from repro.vm.interpreter import ExecutionResult, VM


@dataclass
class BuildResult:
    """Artifacts of a classic whole-program build."""

    module: Module
    executable: Executable
    compile_ms: float
    link_ms: float


def compile_ir(source: str, name: str = "program", *, verify: bool = True) -> Module:
    """MiniC source -> verified, unoptimized IR module."""
    module = compile_source(source, name)
    if verify:
        verify_module(module)
    return module


def build_module(module: Module, opt_level: int = 2, *, verify: bool = True) -> BuildResult:
    """Optimize, lower and link an IR module (mutates the module)."""
    from repro.backend.costmodel import compile_cost_ms

    pre_opt_cost = compile_cost_ms(module)
    optimize(module, opt_level)
    if verify:
        verify_module(module)
    obj = lower_module(module)
    obj.compile_ms = pre_opt_cost
    exe = link([obj])
    return BuildResult(module, exe, obj.compile_ms, exe.link_ms)


def build(source: str, name: str = "program", opt_level: int = 2) -> BuildResult:
    """Full pipeline: MiniC source to a linked executable."""
    return build_module(compile_ir(source, name), opt_level)


def run_source(
    source: str,
    entry: str = "main",
    args: Tuple[int, ...] = (),
    opt_level: int = 2,
    **vm_kwargs,
) -> ExecutionResult:
    """Compile and execute in one step (tests and examples)."""
    result = build(source, opt_level=opt_level)
    return VM(result.executable, **vm_kwargs).run(entry, args)
