"""repro.utils — shared helpers (union-find, deterministic clock/RNG)."""

from repro.utils.clock import SimClock
from repro.utils.rng import DeterministicRNG
from repro.utils.unionfind import UnionFind

__all__ = ["SimClock", "DeterministicRNG", "UnionFind"]
