"""Deterministic simulated clock.

The paper reports wall-clock compile and link durations (Fig. 11, Fig. 12,
the 82 ms headline).  Real wall-clock measurements of a Python reimplementation
would say more about CPython than about Odin's design, so all reported
durations come from deterministic cost models that *advance* a simulated
clock.  pytest-benchmark still measures real time separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SimClock:
    """Accumulates simulated milliseconds, with named spans for breakdowns."""

    now_ms: float = 0.0
    _spans: List[Tuple[str, float]] = field(default_factory=list)

    def advance(self, ms: float, label: str = "") -> None:
        """Advance the clock by *ms* milliseconds under an optional label."""
        if ms < 0:
            raise ValueError(f"cannot advance clock by negative time: {ms}")
        self.now_ms += ms
        if label:
            self._spans.append((label, ms))

    def spans(self) -> List[Tuple[str, float]]:
        """Return all labelled spans recorded so far, in order."""
        return list(self._spans)

    def total(self, label: str) -> float:
        """Return the total simulated time spent under *label*."""
        return sum(ms for name, ms in self._spans if name == label)

    def breakdown(self) -> Dict[str, float]:
        """Return label -> total ms for every labelled span."""
        out: Dict[str, float] = {}
        for name, ms in self._spans:
            out[name] = out.get(name, 0.0) + ms
        return out

    def reset(self) -> None:
        self.now_ms = 0.0
        self._spans.clear()
