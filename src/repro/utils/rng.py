"""Deterministic random number generation for fuzzing and workloads.

A thin wrapper around :class:`random.Random` so every stochastic component
(mutators, workload generators) threads an explicit, seedable RNG instead of
touching global state.  Determinism is what makes the benchmark harness
reproduce the same tables on every run.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """Seedable RNG with the handful of primitives the fuzzer needs."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi], inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def bytes(self, n: int) -> bytes:
        """Return *n* uniformly random bytes."""
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def chance(self, p: float) -> bool:
        """Return True with probability *p*."""
        return self._rng.random() < p

    def fork(self) -> "DeterministicRNG":
        """Derive an independent child RNG deterministically."""
        return DeterministicRNG(self._rng.getrandbits(63))
