"""Disjoint-set (union-find) over arbitrary hashable items.

Used by the partitioner (Algorithm 1 in the paper) to cluster symbols that
must be compiled together: symbols with innate partition constraints and
"Bond" symbols joined with their users.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Union-find with path compression and union by size.

    Items are registered lazily: :meth:`find` and :meth:`union` accept items
    that have never been seen before and treat them as singletons.
    """

    def __init__(self, items: Iterable[Hashable] = ()):  # noqa: B008
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register *item* as a singleton set if it is not known yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of *item*'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return whether *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def clusters(self) -> List[List[Hashable]]:
        """Return all sets, each as a list, in deterministic insertion order."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())
