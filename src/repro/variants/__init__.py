"""repro.variants — run-time partitioned sanitization.

PartiSan-style co-resident variants on top of Odin's fragment engine:
every function exists once per variant family (clean / coverage /
sanitized) inside one merged image, a seeded selector routes each call,
and a budget controller holds a target slowdown by shifting the mix and
de-instrumenting persistently hot functions with on-the-fly fragment
recompiles.
"""

from repro.variants.builder import FamilyBuild, VariantBuilder
from repro.variants.controller import (
    BudgetController,
    ControllerConfig,
    WindowReport,
)
from repro.variants.dispatch import (
    MODE_PER_CALL,
    MODE_PER_EXECUTION,
    VariantSelector,
)
from repro.variants.oracle import CleanDispatchReport, check_clean_dispatch
from repro.variants.runner import PartisanReport, PartisanRun, run_partisan
from repro.variants.spec import (
    FAMILY_CLEAN,
    FAMILY_COVERAGE,
    FAMILY_SANITIZED,
    VariantFamily,
    VariantSpec,
    default_spec,
)

__all__ = [
    "BudgetController", "CleanDispatchReport", "ControllerConfig",
    "FAMILY_CLEAN", "FAMILY_COVERAGE", "FAMILY_SANITIZED", "FamilyBuild",
    "MODE_PER_CALL", "MODE_PER_EXECUTION",
    "PartisanReport", "PartisanRun",
    "VariantBuilder", "VariantFamily", "VariantSelector", "VariantSpec",
    "WindowReport",
    "check_clean_dispatch", "default_spec", "run_partisan",
]
