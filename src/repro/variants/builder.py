"""Build every variant family once and merge them into one image.

One :class:`~repro.core.engine.Odin` engine per family, all sharing:

* one object cache and one link cache — the ``variant_label`` dimension
  in the content keys keeps co-resident families from ever aliasing each
  other's objects or images (see :mod:`repro.service.cache`);
* one :class:`~repro.obs.tracer.Tracer` — every family's rebuild trees
  and the builder's own spans land in a single timeline, which is how a
  de-instrumentation recompile stays observable inside the span tree.

Each fragment is compiled once per family through the normal engine path
(content cache probed first), then :func:`~repro.linker.variants.
link_variants` merges the per-family images into a
:class:`~repro.linker.variants.VariantExecutable` with a per-function
dispatch table.  After any family's probe state changes (the budget
controller flipping probes off a hot function), :meth:`VariantBuilder.
deinstrument_symbol` recompiles just the dirty fragments and relinks the
merged image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.engine import Odin, RebuildReport
from repro.instrument.base import SanitizerTool
from repro.linker.cache import LinkCache
from repro.linker.variants import VariantExecutable, link_variants
from repro.obs.tracer import Tracer
from repro.service.cache import InMemoryCodeCache
from repro.variants.spec import VariantFamily, VariantSpec, default_spec
from repro.vm.interpreter import VM, CompositeProbeRuntime, ProbeRuntime

#: The partitioned-sanitization subsystem's span category.
CAT_PARTISAN = "partisan"


@dataclass
class FamilyBuild:
    """One family's engine, tools and build outcome."""

    family: VariantFamily
    engine: Odin
    tools: List[SanitizerTool]
    probes: int
    build_report: RebuildReport

    @property
    def name(self) -> str:
        return self.family.name


class VariantBuilder:
    """Compiles a :class:`VariantSpec` into one multi-variant image."""

    def __init__(
        self,
        module_factory: Callable[[], "object"],
        *,
        spec: Optional[VariantSpec] = None,
        preserve=("main",),
        opt_level: int = 2,
        trap: bool = False,
        object_cache=None,
        link_cache: Optional[LinkCache] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.spec = spec if spec is not None else default_spec()
        self.module_factory = module_factory
        self.preserve = tuple(preserve)
        self.opt_level = opt_level
        self.trap = trap
        # Shared across every family engine; the variant label keeps
        # entries disjoint per family.
        self.object_cache = (
            object_cache if object_cache is not None else InMemoryCodeCache()
        )
        self.link_cache = link_cache if link_cache is not None else LinkCache()
        self.tracer = tracer if tracer is not None else Tracer()
        self.builds: Dict[str, FamilyBuild] = {}
        self.executable: Optional[VariantExecutable] = None
        self.relinks = 0
        self.deinstrumented: List[str] = []

    # -- builds -----------------------------------------------------------------

    def build(self) -> VariantExecutable:
        """Compile every family and link the merged image."""
        with self.tracer.span("partisan.build", cat=CAT_PARTISAN):
            for family in self.spec.families:
                with self.tracer.span(
                    f"partisan.family.{family.name}",
                    cat=CAT_PARTISAN,
                    family=family.name,
                ):
                    module = self.module_factory()
                    engine = Odin(
                        module,
                        preserve=self.preserve,
                        opt_level=self.opt_level,
                        object_cache=self.object_cache,
                        link_cache=self.link_cache,
                        tracer=self.tracer,
                        variant_label=family.name,
                    )
                    tools = family.install(engine, trap=self.trap)
                    report = engine.initial_build()
                    self.builds[family.name] = FamilyBuild(
                        family=family,
                        engine=engine,
                        tools=tools,
                        probes=sum(len(t.probes) for t in tools),
                        build_report=report,
                    )
            return self.relink()

    def relink(self) -> VariantExecutable:
        """Re-merge the families' current executables."""
        if not self.builds:
            raise RuntimeError("build() the families before relinking")
        images = {name: fb.engine.executable for name, fb in self.builds.items()}
        self.executable = link_variants(images, default=self.spec.default)
        self.relinks += 1
        return self.executable

    # -- lookup -----------------------------------------------------------------

    @property
    def family_names(self) -> List[str]:
        return list(self.builds)

    def build_for(self, family: str) -> FamilyBuild:
        return self.builds[family]

    def probe_counts(self) -> Dict[str, int]:
        """Live (enabled, registered) probe count per family."""
        return {name: fb.probes for name, fb in self.builds.items()}

    # -- execution --------------------------------------------------------------

    def probe_runtime(
        self, extra_runtime: Optional[ProbeRuntime] = None
    ) -> Optional[ProbeRuntime]:
        """Every family's probe runtimes fanned into one composite."""
        runtimes: List[ProbeRuntime] = [
            tool.runtime for fb in self.builds.values() for tool in fb.tools
        ]
        if extra_runtime is not None:
            runtimes.append(extra_runtime)
        if not runtimes:
            return None
        if len(runtimes) == 1:
            return runtimes[0]
        return CompositeProbeRuntime(*runtimes)

    def make_vm(
        self,
        *,
        selector=None,
        dispatch_tax: int = 0,
        extra_runtime: Optional[ProbeRuntime] = None,
        **kwargs,
    ) -> VM:
        """VM over the merged image with all families' runtimes installed."""
        if self.executable is None:
            raise RuntimeError("build() before make_vm()")
        return VM(
            self.executable,
            probe_runtime=self.probe_runtime(extra_runtime),
            variant_selector=selector,
            dispatch_tax=dispatch_tax,
            **kwargs,
        )

    # -- de-instrumentation -----------------------------------------------------

    def deinstrument_symbol(self, symbol: str) -> Dict[str, int]:
        """Flip off every probe targeting *symbol* across all families,
        recompile the dirty fragments on the fly, and relink the merged
        image.  Returns probes flipped per family (empty if the symbol
        carried none).

        The whole operation runs inside a ``partisan.deinstrument`` span,
        so each family's fragment-level rebuild tree nests under it —
        the observable proof that a hot function really was recompiled
        without its checks.
        """
        flipped: Dict[str, int] = {}
        with self.tracer.span(
            "partisan.deinstrument", cat=CAT_PARTISAN, symbol=symbol
        ):
            for name, fb in self.builds.items():
                changed = 0
                for tool in fb.tools:
                    changed += tool.set_symbol_probes_enabled(symbol, False)
                if changed:
                    fb.engine.rebuild_if_needed()
                    flipped[name] = changed
            if flipped:
                self.relink()
                self.deinstrumented.append(symbol)
        return flipped

    def reinstrument_symbol(self, symbol: str) -> Dict[str, int]:
        """Inverse of :meth:`deinstrument_symbol`: re-enable and relink."""
        flipped: Dict[str, int] = {}
        with self.tracer.span(
            "partisan.reinstrument", cat=CAT_PARTISAN, symbol=symbol
        ):
            for name, fb in self.builds.items():
                changed = 0
                for tool in fb.tools:
                    changed += tool.set_symbol_probes_enabled(symbol, True)
                if changed:
                    fb.engine.rebuild_if_needed()
                    flipped[name] = changed
            if flipped:
                self.relink()
                if symbol in self.deinstrumented:
                    self.deinstrumented.remove(symbol)
        return flipped
