"""The overhead-budget controller for partitioned sanitization.

Kreutzer et al.'s observation (PAPERS.md): a fixed sanitizer build either
blows its overhead budget on hot code or wastes budget on cold code.
With co-resident variants the trade-off becomes a control problem: hold
a **target slowdown** (e.g. "at most 25% over clean") while keeping as
much sanitization live as the budget allows.

The controller watches executions in windows.  At each window boundary:

1. the achieved overhead (window cycles vs. the clean baseline's cycles
   for the same inputs) is compared against the target;
2. if the budget is blown, the hottest still-instrumented function whose
   window call share clears ``hot_call_share`` is **de-instrumented**:
   pinned to the clean family *and* stripped of its probes via a
   fragment-level on-the-fly recompile
   (:meth:`~repro.variants.builder.VariantBuilder.deinstrument_symbol`) —
   Odin's §7 story, driven by a budget instead of a fuzzer;
3. the dispatch mix is rescaled multiplicatively: instrumented families'
   weights move by ``target / achieved`` (clamped for stability), the
   clean family absorbs the remainder.  Instrumented weights are floored
   at ``min_instrumented_weight`` so cold-path sanitization never
   switches off entirely.

Costs and decisions flow through a
:class:`~repro.obs.metrics.MetricsRegistry`: per-family cycle ratios are
``observe``-d and read back as the per-variant cost estimate, the mix and
achieved overhead are gauges, de-instrumentations are counters — the same
machinery every other subsystem here reports through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.variants.builder import VariantBuilder
from repro.variants.dispatch import VariantSelector

_EPS = 1e-9


@dataclass(frozen=True)
class ControllerConfig:
    #: The budget: target fractional slowdown over the clean baseline.
    target_overhead: float = 0.25
    #: Executions per control window.
    window: int = 30
    #: Relative band around the target counting as converged.
    tolerance: float = 0.25
    #: Windows averaged when judging convergence (one window of a
    #: stochastic mix is far too noisy to score on).
    convergence_windows: int = 3
    #: Exponent damping the multiplicative mix step: 1.0 jumps straight
    #: to ``target/achieved`` (oscillates on noisy windows), 0.5 takes a
    #: half-step in log space.
    gain: float = 0.5
    #: Per-window clamp on the multiplicative mix step (stability).
    min_scale: float = 0.5
    max_scale: float = 2.0
    #: Instrumented families never drop below this normalized weight —
    #: cold-path sanitization stays always-on.
    min_instrumented_weight: float = 0.01
    #: ... and never crowd the clean family out entirely.
    max_instrumented_weight: float = 0.95
    #: Minimum share of a window's calls a function needs before it is
    #: hot enough to de-instrument.
    hot_call_share: float = 0.25
    #: Cap on de-instrumented functions (None = half the dispatch table).
    max_deinstrumented: Optional[int] = None
    #: Functions the controller must never de-instrument — typically the
    #: entry points: monolithic programs inline everything into them, and
    #: stripping the entry would switch sanitization off wholesale.
    protected: FrozenSet[str] = frozenset()

    def __post_init__(self):
        if self.target_overhead <= 0:
            raise ValueError("target_overhead must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < self.hot_call_share <= 1.0:
            raise ValueError("hot_call_share must be in (0, 1]")


@dataclass
class WindowReport:
    """One closed control window."""

    index: int
    executions: int
    achieved_overhead: float
    mix: Dict[str, float]
    deinstrumented: Optional[str] = None

    @property
    def summary(self) -> str:
        extra = f", deinstrumented {self.deinstrumented}" if self.deinstrumented else ""
        return (
            f"window {self.index}: overhead {self.achieved_overhead:+.3f}"
            f", mix {{{', '.join(f'{k}={v:.2f}' for k, v in self.mix.items())}}}"
            f"{extra}"
        )


class BudgetController:
    """Shifts the variant mix to hold a target slowdown."""

    def __init__(
        self,
        builder: VariantBuilder,
        selector: VariantSelector,
        config: Optional[ControllerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.builder = builder
        self.selector = selector
        self.config = config if config is not None else ControllerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.windows: List[WindowReport] = []
        self.total_cycles = 0
        self.total_baseline = 0
        self._win_cycles = 0
        self._win_baseline = 0
        self._win_execs = 0
        self._fn_calls_mark: Dict[str, int] = {}
        self._publish_mix()

    # -- feeding ----------------------------------------------------------------

    def record_execution(
        self, cycles: int, baseline_cycles: int, family: Optional[str] = None
    ) -> None:
        """Account one finished execution; *baseline_cycles* is the clean
        standalone cost of the same input.  *family* (per-execution mode)
        attributes the cost to one variant for the per-variant estimate.
        """
        self.total_cycles += cycles
        self.total_baseline += baseline_cycles
        self._win_cycles += cycles
        self._win_baseline += baseline_cycles
        self._win_execs += 1
        self.metrics.observe("partisan.exec.cycles", float(cycles))
        if family is not None and baseline_cycles > 0:
            self.metrics.observe(
                f"partisan.cost.{family}", cycles / baseline_cycles
            )
        if self._win_execs >= self.config.window:
            self._close_window()

    # -- read-backs -------------------------------------------------------------

    @property
    def achieved_overhead(self) -> float:
        """Lifetime fractional slowdown vs. the clean baseline."""
        if not self.total_baseline:
            return 0.0
        return self.total_cycles / self.total_baseline - 1.0

    @property
    def last_window_overhead(self) -> Optional[float]:
        return self.windows[-1].achieved_overhead if self.windows else None

    @property
    def converged(self) -> bool:
        """Is the recent-window mean overhead inside the tolerance band?"""
        k = self.config.convergence_windows
        recent = self.windows[-k:]
        if not recent:
            return False
        mean = sum(w.achieved_overhead for w in recent) / len(recent)
        target = self.config.target_overhead
        return abs(mean - target) <= self.config.tolerance * target

    def family_cost(self, family: str) -> Optional[float]:
        """Mean cycles-over-baseline ratio observed for *family* — the
        per-variant cost, read back from the metrics registry."""
        stat = self.metrics.latency(f"partisan.cost.{family}")
        if not stat.count:
            return None
        return stat.total_ms / stat.count

    def family_costs(self) -> Dict[str, float]:
        return {
            name: cost
            for name in self.builder.family_names
            if (cost := self.family_cost(name)) is not None
        }

    # -- the control step -------------------------------------------------------

    def _close_window(self) -> None:
        cfg = self.config
        achieved = (
            self._win_cycles / self._win_baseline - 1.0
            if self._win_baseline
            else 0.0
        )
        self.metrics.set_gauge("partisan.window.overhead", achieved)
        self.metrics.set_gauge("partisan.lifetime.overhead", self.achieved_overhead)
        self.metrics.inc("partisan.windows")

        deinstrumented = None
        if achieved > cfg.target_overhead * (1.0 + cfg.tolerance):
            deinstrumented = self._maybe_deinstrument()
        self._rescale_mix(achieved)

        self.windows.append(
            WindowReport(
                index=len(self.windows),
                executions=self._win_execs,
                achieved_overhead=achieved,
                mix=dict(self.selector.mix),
                deinstrumented=deinstrumented,
            )
        )
        self._win_cycles = 0
        self._win_baseline = 0
        self._win_execs = 0
        self._fn_calls_mark = dict(self.selector.function_calls)

    def _deinstrument_cap(self) -> int:
        if self.config.max_deinstrumented is not None:
            return self.config.max_deinstrumented
        exe = self.builder.executable
        table = len(exe.variant_index) if exe is not None else 0
        return max(1, table // 2)

    def _maybe_deinstrument(self) -> Optional[str]:
        """Pin the hottest eligible function to clean and strip its probes."""
        if len(self.builder.deinstrumented) >= self._deinstrument_cap():
            return None
        window_calls = {
            name: count - self._fn_calls_mark.get(name, 0)
            for name, count in self.selector.function_calls.items()
        }
        total = sum(window_calls.values())
        if not total:
            return None
        default = self.builder.spec.default
        for name in sorted(
            window_calls, key=lambda n: (-window_calls[n], n)
        ):
            if window_calls[name] / total < self.config.hot_call_share:
                break  # sorted descending: nothing below is hot either
            if name in self.config.protected:
                continue
            if self.selector.pinned.get(name) == default:
                continue
            flipped = self.builder.deinstrument_symbol(name)
            self.selector.pin(name, default)
            if flipped:
                self.metrics.inc("partisan.deinstrumented")
                self.metrics.inc(
                    "partisan.probes.flipped", sum(flipped.values())
                )
                return name
            # The symbol carried no probes (pin alone still helps);
            # keep looking for one that does.
        return None

    def _rescale_mix(self, achieved: float) -> None:
        cfg = self.config
        mix = dict(self.selector.mix)  # normalized by the selector
        instrumented = [
            f.name
            for f in self.builder.spec.families
            if f.instrumented and f.name in mix
        ]
        plain = [name for name in mix if name not in instrumented]
        if not instrumented or not plain:
            return
        scale = (cfg.target_overhead / max(achieved, _EPS)) ** cfg.gain
        scale = min(max(scale, cfg.min_scale), cfg.max_scale)
        new_inst = {
            name: max(mix[name] * scale, cfg.min_instrumented_weight)
            for name in instrumented
        }
        inst_total = sum(new_inst.values())
        if inst_total > cfg.max_instrumented_weight:
            shrink = cfg.max_instrumented_weight / inst_total
            new_inst = {name: w * shrink for name, w in new_inst.items()}
            inst_total = cfg.max_instrumented_weight
        # The plain (clean) families split the remainder, keeping their
        # relative proportions.
        plain_total = sum(mix[name] for name in plain)
        remainder = 1.0 - inst_total
        new_mix = dict(new_inst)
        for name in plain:
            share = mix[name] / plain_total if plain_total else 1.0 / len(plain)
            new_mix[name] = remainder * share
        self.selector.set_mix(new_mix)
        self._publish_mix()

    def _publish_mix(self) -> None:
        for name, weight in self.selector.mix.items():
            self.metrics.set_gauge(f"partisan.mix.{name}", weight)
