"""Seeded variant selection for the VM's call dispatch.

The merged image (:class:`~repro.linker.variants.VariantExecutable`)
gives every function one slot per family; the :class:`VariantSelector`
decides, call by call, which slot executes.  PartiSan's two policies are
both here:

* ``per-execution`` — one family is drawn when an execution starts
  (``VM.run`` calls :meth:`begin_execution`) and every call in that
  execution follows it.  Whole runs are sanitized or not, which is what
  makes per-execution overhead attributable to a family.
* ``per-call`` — each call draws independently, interleaving families
  within a single run at the cost of attribution.

Selection is driven by a :class:`~repro.utils.rng.DeterministicRNG`, so
a (seed, mix, mode) triple replays the exact same dispatch sequence —
the property every test and benchmark in this repo leans on.

Pins override the draw: ``pin(name, family)`` routes every call of one
function to one family unconditionally.  The budget controller pins
persistently hot functions to ``clean`` when it de-instruments them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.utils.rng import DeterministicRNG

MODE_PER_CALL = "per-call"
MODE_PER_EXECUTION = "per-execution"
MODES = (MODE_PER_CALL, MODE_PER_EXECUTION)


class VariantSelector:
    """Weighted, seeded family choice with per-function pin overrides."""

    def __init__(
        self,
        mix: Mapping[str, float],
        *,
        seed: int = 0,
        mode: str = MODE_PER_CALL,
        pinned: Optional[Mapping[str, str]] = None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.rng = DeterministicRNG(seed)
        self.pinned: Dict[str, str] = dict(pinned or {})
        #: Lifetime dispatched calls per family (includes pinned calls).
        self.calls: Dict[str, int] = {}
        #: Lifetime calls per function name (pre-dispatch).
        self.function_calls: Dict[str, int] = {}
        self.executions = 0
        #: Family drawn by the last :meth:`begin_execution` (per-execution
        #: mode only; None before the first execution or in per-call mode).
        self.last_execution_family: Optional[str] = None
        #: Executions per drawn family (per-execution mode).
        self.execution_counts: Dict[str, int] = {}
        self.mix: Dict[str, float] = {}
        self._names: List[str] = []
        self._cumulative: List[float] = []
        self.set_mix(mix)

    # -- mix --------------------------------------------------------------------

    def set_mix(self, mix: Mapping[str, float]) -> None:
        """Replace the dispatch weights (normalized; takes effect on the
        next draw)."""
        if not mix:
            raise ValueError("mix must name at least one family")
        for name, weight in mix.items():
            if weight < 0:
                raise ValueError(f"negative weight for {name!r}: {weight}")
        total = float(sum(mix.values()))
        if total <= 0:
            raise ValueError("mix weights sum to zero")
        self.mix = {name: weight / total for name, weight in mix.items()}
        self._names = list(self.mix)
        running = 0.0
        self._cumulative = []
        for name in self._names:
            running += self.mix[name]
            self._cumulative.append(running)

    def _draw(self) -> str:
        r = self.rng.random()
        for name, edge in zip(self._names, self._cumulative):
            if r < edge:
                return name
        return self._names[-1]  # float round-off lands on the last family

    # -- the dispatch path ------------------------------------------------------

    def begin_execution(self) -> None:
        """Called by ``VM.run``; re-draws the per-execution family."""
        self.executions += 1
        if self.mode == MODE_PER_EXECUTION:
            family = self._draw()
            self.last_execution_family = family
            self.execution_counts[family] = (
                self.execution_counts.get(family, 0) + 1
            )

    def select(self, name: str, default_family: str) -> str:
        """Pick the family for one call of function *name*.

        *default_family* is the family of the slot the call targeted
        (the merged table's default family for any original index); it is
        what an unknown pin target degrades to via
        ``VariantExecutable.dispatch``'s fallback.
        """
        self.function_calls[name] = self.function_calls.get(name, 0) + 1
        family = self.pinned.get(name)
        if family is None:
            if self.mode == MODE_PER_EXECUTION and self.last_execution_family:
                family = self.last_execution_family
            else:
                family = self._draw()
        self.calls[family] = self.calls.get(family, 0) + 1
        return family

    # -- pins -------------------------------------------------------------------

    def pin(self, name: str, family: str) -> None:
        self.pinned[name] = family

    def unpin(self, name: str) -> None:
        self.pinned.pop(name, None)

    # -- accounting -------------------------------------------------------------

    def call_shares(self) -> Dict[str, float]:
        """Fraction of dispatched calls each family served."""
        total = sum(self.calls.values())
        if not total:
            return {}
        return {name: count / total for name, count in self.calls.items()}

    def execution_shares(self) -> Dict[str, float]:
        """Fraction of executions each family was drawn for
        (per-execution mode; empty in per-call mode)."""
        total = sum(self.execution_counts.values())
        if not total:
            return {}
        return {
            name: count / total
            for name, count in self.execution_counts.items()
        }

    def hottest_functions(self) -> List[str]:
        """Function names by descending lifetime call count."""
        return sorted(
            self.function_calls,
            key=lambda name: (-self.function_calls[name], name),
        )
