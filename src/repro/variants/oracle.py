"""Clean-dispatch equivalence: the subsystem's differential check.

The safety argument for co-resident variants is that the dispatch layer
adds *mechanism*, not *behaviour*: with every call routed to the clean
family and a zero dispatch tax, a partitioned image must be
indistinguishable from the plain uninstrumented build.  This oracle
makes that falsifiable, in the style of :mod:`repro.check.oracle`:

* **image layer** — the clean family engine's linked image has the same
  fingerprint as an independently built uninstrumented engine's;
* **behaviour layer** — over the seed corpus, exit code, stdout, trap
  and the exact cycle count match between the baseline VM and a VM
  running the merged image through a clean-pinned selector.

Cycles matching *exactly* is the strong claim: the clean family sits at
offset 0 of the merged table, so dispatch resolves every call to the
very same function indices the baseline executes — any drift means the
merge re-ordered or rewrote something it should not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.engine import Odin
from repro.programs.registry import TargetProgram
from repro.variants.builder import VariantBuilder
from repro.variants.dispatch import MODE_PER_CALL, VariantSelector
from repro.variants.runner import ENTRY, PRESERVED, _run_one
from repro.vm.interpreter import VM


@dataclass
class CleanDispatchReport:
    """Outcome of one program's clean-dispatch equivalence check."""

    program: str
    inputs: int = 0
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.mismatches

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.program}: ERROR {self.error}"
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"{self.program}: clean-dispatch equivalence over "
            f"{self.inputs} inputs, {status}"
        )


def check_clean_dispatch(
    program: TargetProgram,
    *,
    seed: int = 0,
    max_inputs: int = 6,
) -> CleanDispatchReport:
    """Prove clean-only dispatch equals the uninstrumented baseline."""
    report = CleanDispatchReport(program.name)
    try:
        inputs = program.seeds(seed)[:max_inputs]
        if not inputs:
            raise ValueError("empty seed corpus")
        report.inputs = len(inputs)

        # Independent uninstrumented baseline: fresh engine, no probes.
        baseline = Odin(program.compile(), preserve=PRESERVED)
        baseline.initial_build()

        builder = VariantBuilder(program.compile, preserve=PRESERVED)
        builder.build()

        # Image layer: the clean family is the uninstrumented build.
        clean_fp = builder.build_for(
            builder.spec.default
        ).engine.executable_fingerprint()
        base_fp = baseline.executable_fingerprint()
        if clean_fp != base_fp:
            report.mismatches.append(
                f"clean family image differs from uninstrumented build "
                f"({str(clean_fp)[:12]} != {str(base_fp)[:12]})"
            )

        # Behaviour layer: merged image + clean-pinned dispatch.
        selector = VariantSelector(
            {builder.spec.default: 1.0}, seed=seed, mode=MODE_PER_CALL
        )
        for data in inputs:
            base = _run_one(VM(baseline.executable), data)
            vm = builder.make_vm(selector=selector, dispatch_tax=0)
            routed = _run_one(vm, data)
            for name in ("exit_code", "stdout", "trap", "cycles"):
                a = getattr(base, name)
                b = getattr(routed, name)
                if a != b:
                    report.mismatches.append(
                        f"input {data[:16]!r}: {name} differs "
                        f"(baseline {a!r} != clean-dispatch {b!r})"
                    )
    except Exception as error:  # surface, do not crash the sweep
        report.error = f"{type(error).__name__}: {error}"
    return report
