"""Drive a program under a variant mix and budget; report what happened.

:func:`run_partisan` is the subsystem's front door (the CLI's
``repro partisan`` and the overhead benchmark both sit on it):

1. build every family of the spec into one merged image;
2. measure the clean standalone baseline over the seed corpus;
3. run *executions* dispatched executions, feeding each one's cycle
   count to the :class:`~repro.variants.controller.BudgetController`;
4. whenever the controller de-instruments a hot function the merged
   image is relinked — the runner notices and rebuilds its VM;
5. fold everything into a :class:`PartisanReport`: per-variant execution
   shares, achieved overhead vs. the budget, de-instrumented symbols,
   recorded sanitizer findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.instrument.asan import ASanRuntime
from repro.instrument.coverage import CoverageRuntime
from repro.instrument.ubsan import UBSanRuntime
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.programs.registry import TargetProgram
from repro.variants.builder import VariantBuilder
from repro.variants.controller import BudgetController, ControllerConfig
from repro.variants.dispatch import (
    MODE_PER_CALL,
    MODE_PER_EXECUTION,
    VariantSelector,
)
from repro.variants.spec import VariantSpec
from repro.vm.interpreter import VM

ENTRY = "run_input"
PRESERVED = ("main", "run_input")


@dataclass
class PartisanReport:
    """One partitioned-sanitization run, JSON-serializable."""

    program: str
    mode: str
    seed: int
    budget: float
    executions: int
    dispatch_tax: int
    baseline_cycles: int
    dispatched_cycles: int
    achieved_overhead: float
    final_window_overhead: Optional[float]
    converged: bool
    windows: int
    probes: Dict[str, int]
    call_shares: Dict[str, float]
    execution_shares: Dict[str, float]
    family_costs: Dict[str, float]
    mix_final: Dict[str, float]
    deinstrumented: List[str]
    pinned: Dict[str, str]
    relinks: int
    findings: Dict[str, int]

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "mode": self.mode,
            "seed": self.seed,
            "budget": self.budget,
            "executions": self.executions,
            "dispatch_tax": self.dispatch_tax,
            "baseline_cycles": self.baseline_cycles,
            "dispatched_cycles": self.dispatched_cycles,
            "achieved_overhead": self.achieved_overhead,
            "final_window_overhead": self.final_window_overhead,
            "converged": self.converged,
            "windows": self.windows,
            "probes": dict(self.probes),
            "call_shares": dict(self.call_shares),
            "execution_shares": dict(self.execution_shares),
            "family_costs": dict(self.family_costs),
            "mix_final": dict(self.mix_final),
            "deinstrumented": list(self.deinstrumented),
            "pinned": dict(self.pinned),
            "relinks": self.relinks,
            "findings": dict(self.findings),
        }

    def summary(self) -> str:
        shares = ", ".join(
            f"{name}={share:.2f}" for name, share in sorted(self.call_shares.items())
        )
        deinst = (
            f", de-instrumented: {', '.join(self.deinstrumented)}"
            if self.deinstrumented
            else ""
        )
        return (
            f"{self.program}: {self.executions} executions ({self.mode}), "
            f"overhead {self.achieved_overhead:+.3f} vs budget "
            f"{self.budget:+.3f} ({'converged' if self.converged else 'not converged'}), "
            f"call shares {{{shares}}}{deinst}"
        )


@dataclass
class PartisanRun:
    """The report plus the live objects (for tests, benchmarks, traces)."""

    report: PartisanReport
    builder: VariantBuilder
    selector: VariantSelector
    controller: BudgetController
    tracer: Tracer
    metrics: MetricsRegistry


def _run_one(vm: VM, data: bytes):
    """One execution using the corpus protocol shared with the fuzzer."""
    vm.reset()
    addr = vm.alloc(max(len(data), 1) + 1)
    vm.write_bytes(addr, data)
    return vm.run(ENTRY, (addr, len(data)), reset=False)


def _collect_findings(builder: VariantBuilder) -> Dict[str, int]:
    findings = {"asan_violations": 0, "ubsan_fires": 0, "coverage_blocks": 0}
    for fb in builder.builds.values():
        for tool in fb.tools:
            runtime = tool.runtime
            if isinstance(runtime, ASanRuntime):
                findings["asan_violations"] += len(runtime.violations)
            elif isinstance(runtime, UBSanRuntime):
                findings["ubsan_fires"] += sum(runtime.fire_counts.values())
            elif isinstance(runtime, CoverageRuntime):
                findings["coverage_blocks"] += len(runtime.covered_ids())
    return findings


def run_partisan(
    program: TargetProgram,
    *,
    budget: float = 0.25,
    executions: int = 240,
    seed: int = 1,
    mode: str = MODE_PER_EXECUTION,
    window: int = 30,
    dispatch_tax: int = 0,
    max_inputs: int = 4,
    spec: Optional[VariantSpec] = None,
    config: Optional[ControllerConfig] = None,
    trap: bool = False,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> PartisanRun:
    """Run *program* under a variant mix held to an overhead budget."""
    inputs = program.seeds(seed)[:max_inputs]
    if not inputs:
        raise ValueError(f"program {program.name!r} has an empty seed corpus")

    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    builder = VariantBuilder(
        program.compile,
        spec=spec,
        preserve=PRESERVED,
        trap=trap,
        tracer=tracer,
    )
    builder.build()

    # Clean standalone baseline: the default family's own image, no
    # dispatch, no probe runtimes — what "no instrumentation" costs.
    clean_exe = builder.build_for(builder.spec.default).engine.executable
    baseline: List[int] = []
    for data in inputs:
        result = _run_one(VM(clean_exe), data)
        baseline.append(result.cycles)

    selector = VariantSelector(
        builder.spec.initial_mix(), seed=seed, mode=mode
    )
    controller = BudgetController(
        builder,
        selector,
        config
        if config is not None
        else ControllerConfig(
            target_overhead=budget,
            window=window,
            protected=frozenset(PRESERVED),
        ),
        metrics=metrics,
    )

    vm = builder.make_vm(selector=selector, dispatch_tax=dispatch_tax)
    baseline_total = 0
    dispatched_total = 0
    for i in range(executions):
        if vm.exe is not builder.executable:
            # The controller de-instrumented and relinked mid-run.
            vm = builder.make_vm(selector=selector, dispatch_tax=dispatch_tax)
        data = inputs[i % len(inputs)]
        result = _run_one(vm, data)
        family = (
            selector.last_execution_family
            if mode == MODE_PER_EXECUTION
            else None
        )
        base = baseline[i % len(inputs)]
        baseline_total += base
        dispatched_total += result.cycles
        controller.record_execution(result.cycles, base, family)

    probes = {
        name: sum(
            1
            for tool in fb.tools
            for probe in tool.probes.values()
            if probe.enabled
        )
        for name, fb in builder.builds.items()
    }
    report = PartisanReport(
        program=program.name,
        mode=mode,
        seed=seed,
        budget=budget,
        executions=executions,
        dispatch_tax=dispatch_tax,
        baseline_cycles=baseline_total,
        dispatched_cycles=dispatched_total,
        achieved_overhead=controller.achieved_overhead,
        final_window_overhead=controller.last_window_overhead,
        converged=controller.converged,
        windows=len(controller.windows),
        probes=probes,
        call_shares=selector.call_shares(),
        execution_shares=selector.execution_shares(),
        family_costs=controller.family_costs(),
        mix_final=dict(selector.mix),
        deinstrumented=list(builder.deinstrumented),
        pinned=dict(selector.pinned),
        relinks=builder.relinks,
        findings=_collect_findings(builder),
    )
    return PartisanRun(
        report=report,
        builder=builder,
        selector=selector,
        controller=controller,
        tracer=tracer,
        metrics=metrics,
    )
