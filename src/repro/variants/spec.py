"""Variant families for run-time partitioned sanitization.

PartiSan's premise (Lettner et al., see PAPERS.md): instead of deciding
at build time whether a binary is sanitized, compile *every* function in
several co-resident variants and choose between them at run time.  A
:class:`VariantSpec` enumerates the families to build; each family is a
recipe turning one :class:`~repro.core.engine.Odin` engine into an
instrumented (or deliberately uninstrumented) build of the same program:

* ``clean`` — no probes at all; the behaviour/performance baseline and
  the family hot functions are steered to when the overhead budget is
  spent;
* ``coverage`` — OdinCov block probes (cheap, always useful signal);
* ``sanitized`` — ASan access checks plus UBSan overflow checks, both in
  recording mode (``trap=False`` by default) so a finding is logged
  instead of killing the "production" run.

Families are data, not subclasses: a :class:`VariantFamily` bundles a
name, an initial dispatch weight, and an installer returning the probe
tools it planted.  Anything satisfying
:class:`~repro.instrument.base.SanitizerTool` slots in, so adding a
fourth family (e.g. cmplog) is one table entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.engine import Odin
from repro.instrument.base import SanitizerTool

FAMILY_CLEAN = "clean"
FAMILY_COVERAGE = "coverage"
FAMILY_SANITIZED = "sanitized"

#: (engine, trap) -> probe tools installed on the engine (not yet built).
ToolInstaller = Callable[[Odin, bool], List[SanitizerTool]]


def _install_clean(engine: Odin, trap: bool) -> List[SanitizerTool]:
    return []


def _install_coverage(engine: Odin, trap: bool) -> List[SanitizerTool]:
    from repro.instrument.coverage import OdinCov

    tool = OdinCov(engine, prune=False)  # the controller flips, never prunes
    tool.add_all_block_probes()
    return [tool]


def _install_sanitized(engine: Odin, trap: bool) -> List[SanitizerTool]:
    from repro.instrument.asan import ASanTool
    from repro.instrument.ubsan import UBSanTool

    asan = ASanTool(engine, trap=trap)
    asan.add_all_access_probes()
    ubsan = UBSanTool(engine, trap=trap)
    ubsan.add_all_overflow_probes()
    return [asan, ubsan]


@dataclass(frozen=True)
class VariantFamily:
    """One co-resident build flavour of the whole program."""

    name: str
    #: Initial share in the dispatch mix (relative weight, normalized by
    #: the selector).
    weight: float
    #: Whether the family carries probes.  Only instrumented families are
    #: scaled by the budget controller; the clean family absorbs whatever
    #: share they give up.
    instrumented: bool
    installer: ToolInstaller

    def install(self, engine: Odin, *, trap: bool = False) -> List[SanitizerTool]:
        """Plant this family's probes on *engine*; returns the tools."""
        return self.installer(engine, trap)


@dataclass(frozen=True)
class VariantSpec:
    """The set of families one partitioned-sanitization image carries."""

    families: Tuple[VariantFamily, ...]
    #: Family linked at offset 0 of the merged image — the one an
    #: undirected call lands on and the behaviour baseline.
    default: str = FAMILY_CLEAN

    def __post_init__(self):
        if not self.families:
            raise ValueError("VariantSpec needs at least one family")
        names = [f.name for f in self.families]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate family names: {names}")
        if self.default not in names:
            raise ValueError(
                f"default family {self.default!r} not in {names}"
            )
        for family in self.families:
            if family.weight < 0:
                raise ValueError(
                    f"family {family.name!r} has negative weight {family.weight}"
                )

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.families]

    def family(self, name: str) -> VariantFamily:
        for fam in self.families:
            if fam.name == name:
                return fam
        raise KeyError(name)

    def initial_mix(self) -> Dict[str, float]:
        """Starting dispatch weights, family name -> weight."""
        return {f.name: f.weight for f in self.families}


def default_spec(
    *,
    clean_weight: float = 0.5,
    coverage_weight: float = 0.2,
    sanitized_weight: float = 0.3,
) -> VariantSpec:
    """The stock three-family spec: clean / coverage / sanitized."""
    return VariantSpec(
        families=(
            VariantFamily(FAMILY_CLEAN, clean_weight, False, _install_clean),
            VariantFamily(
                FAMILY_COVERAGE, coverage_weight, True, _install_coverage
            ),
            VariantFamily(
                FAMILY_SANITIZED, sanitized_weight, True, _install_sanitized
            ),
        ),
        default=FAMILY_CLEAN,
    )
