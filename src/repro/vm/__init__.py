"""repro.vm — deterministic machine-code interpreter with cycle accounting."""

from repro.vm.interpreter import (
    CompositeProbeRuntime,
    ExecutionResult,
    ProbeRuntime,
    VM,
    run_program,
)
from repro.vm.runtime import BuiltinRuntime, ExitProgram

__all__ = [
    "CompositeProbeRuntime", "ExecutionResult", "ProbeRuntime", "VM", "run_program",
    "BuiltinRuntime", "ExitProgram",
]
