"""The virtual machine: executes linked executables with cycle accounting.

This stands in for the paper's hardware: every figure that reports
"execution duration" reports :attr:`ExecutionResult.cycles` from this
interpreter.  Determinism is total — same executable, same input, same
cycle count.

Instrumentation hooks:

* ``probe`` instructions dispatch to a :class:`ProbeRuntime` (compiler-
  based instrumentation: OdinCov, SanitizerCoverage analogue, CmpLog...)
* ``bb`` markers optionally invoke a ``block_hook`` and charge
  ``block_tax`` extra cycles — that is how the DynamoRIO/DynInst-style
  *binary* instrumentation baselines are modelled: they pay per-block
  dispatch/trampoline overhead on top of the native code.
* a ``variant_selector`` routes every call through a
  :class:`~repro.linker.variants.VariantExecutable`'s per-function
  dispatch table (run-time partitioned sanitization): the selector picks
  which co-resident sanitization family of the callee executes, charging
  ``dispatch_tax`` extra cycles per dispatched call — the PartiSan-style
  indirection cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import VMError, VMTrap
from repro.ir.semantics import eval_binary, eval_cast, eval_icmp
from repro.ir.types import IntType
from repro.linker.linker import Executable, LinkedFunction
from repro.vm.runtime import BuiltinRuntime, ExitProgram

MEM_SIZE = 1 << 22  # 4 MiB: data + heap + stack
DEFAULT_MAX_STEPS = 50_000_000

_INT_BY_BITS = {1: IntType(1), 8: IntType(8), 16: IntType(16),
                32: IntType(32), 64: IntType(64)}


class ProbeRuntime:
    """Receives probe events; instrumentation schemes subclass this."""

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: "VM") -> None:
        """Handle one probe firing.  May raise :class:`VMTrap` to abort."""


class CompositeProbeRuntime(ProbeRuntime):
    """Fan out probe events to several runtimes (e.g. coverage + CmpLog)."""

    def __init__(self, *runtimes: ProbeRuntime):
        self.runtimes = list(runtimes)

    def on_probe(self, kind: str, probe_id: int, args: Tuple[int, ...], vm: "VM") -> None:
        for runtime in self.runtimes:
            runtime.on_probe(kind, probe_id, args, vm)


@dataclass
class ExecutionResult:
    exit_code: int = 0
    stdout: bytes = b""
    cycles: int = 0
    steps: int = 0
    trap: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.trap is None


def _decode(inst) -> tuple:
    """Decode an op string once; cached on the instruction."""
    parts = inst.op.split(".")
    head = parts[0]
    if head in ("bin", "bini"):
        return (head, parts[1], _INT_BY_BITS[int(parts[2])])
    if head in ("cmp", "cmpi"):
        return (head, parts[1], _INT_BY_BITS[int(parts[2])])
    if head == "cast":
        return (head, parts[1], _INT_BY_BITS[int(parts[2])], _INT_BY_BITS[int(parts[3])])
    if head in ("ld", "st"):
        return (head, int(parts[1]) // 8)
    return (head,)


class VM:
    """Interpreter over a linked executable."""

    def __init__(
        self,
        executable: Executable,
        *,
        probe_runtime: Optional[ProbeRuntime] = None,
        block_hook: Optional[Callable[[int, int], None]] = None,
        block_tax: int = 0,
        variant_selector=None,
        dispatch_tax: int = 0,
        max_steps: int = DEFAULT_MAX_STEPS,
        mem_size: int = MEM_SIZE,
    ):
        self.exe = executable
        self.probe_runtime = probe_runtime
        self.block_hook = block_hook
        self.block_tax = block_tax
        # Run-time partitioned sanitization: every call is remapped
        # through the executable's per-function dispatch table to the
        # family the selector picks (see repro.variants.dispatch).
        if variant_selector is not None and not hasattr(executable, "dispatch"):
            raise VMError(
                "variant_selector needs a VariantExecutable with a dispatch table"
            )
        self.variant_selector = variant_selector
        self.dispatch_tax = dispatch_tax
        self.max_steps = max_steps
        self.mem_size = mem_size
        if executable.data_end + 0x10000 > mem_size:
            raise VMError("memory too small for data image")
        self.memory = bytearray(mem_size)
        self.heap_base = (executable.data_end + 0xFFF) & ~0xFFF
        self.builtins = BuiltinRuntime(self)
        self.reset()

    # -- state management ------------------------------------------------------

    def reset(self) -> None:
        """Restore initial memory/heap state for a fresh run."""
        base = self.exe.data_base
        image = self.exe.data_image
        self.memory[base : base + len(image)] = image
        self.heap_ptr = self.heap_base
        self.stack_ptr = self.mem_size
        self.cycles = 0
        self.steps = 0
        self.builtins.reset()

    # -- memory helpers ------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Bump-allocate heap memory (used by malloc and input injection)."""
        size = max(1, (size + 7) & ~7)
        addr = self.heap_ptr
        if addr + size > self.stack_ptr - 0x10000:
            raise VMTrap("out of heap memory", "oom")
        self.heap_ptr += size
        return addr

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check_range(addr, len(data), write=True, check_const=False)
        self.memory[addr : addr + len(data)] = data

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check_range(addr, size, write=False)
        return bytes(self.memory[addr : addr + size])

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        end = self.memory.find(b"\x00", addr, addr + limit)
        if end < 0:
            raise VMTrap(f"unterminated string at {addr:#x}", "bad-memory")
        return bytes(self.memory[addr:end])

    def _check_range(self, addr: int, size: int, write: bool, check_const: bool = True) -> None:
        if addr < self.exe.data_base or addr + size > self.mem_size:
            kind = "write" if write else "read"
            raise VMTrap(f"invalid {kind} at {addr:#x} (+{size})", "bad-memory")
        if write and check_const:
            for lo, hi in self.exe.const_ranges:
                if lo <= addr < hi:
                    raise VMTrap(f"write to const data at {addr:#x}", "bad-memory")

    def _load_int(self, addr: int, size: int) -> int:
        self._check_range(addr, size, write=False)
        return int.from_bytes(self.memory[addr : addr + size], "little")

    def _store_int(self, addr: int, size: int, value: int) -> None:
        self._check_range(addr, size, write=True)
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Tuple[int, ...] = (),
        reset: bool = True,
    ) -> ExecutionResult:
        """Run *entry* with integer/pointer arguments; returns the result.

        Pass ``reset=False`` when state was prepared beforehand (e.g. an
        input buffer injected with :meth:`alloc`/:meth:`write_bytes`) —
        a reset would reclaim that heap allocation.
        """
        if reset:
            self.reset()
        if self.variant_selector is not None:
            # Per-execution selection modes re-draw their family here.
            self.variant_selector.begin_execution()
        index = self.exe.function_index(entry)
        try:
            value = self._call(index, tuple(args))
            result = ExecutionResult(exit_code=value & 0xFFFFFFFF)
        except ExitProgram as exit_:
            result = ExecutionResult(exit_code=exit_.code & 0xFFFFFFFF)
        except VMTrap as trap:
            result = ExecutionResult(exit_code=-1, trap=trap.kind)
        result.stdout = self.builtins.stdout_bytes()
        result.cycles = self.cycles
        result.steps = self.steps
        return result

    def _call(self, func_index: int, args: Tuple[int, ...]) -> int:
        """Execute one function to completion; recursion implements calls."""
        selector = self.variant_selector
        if selector is not None:
            # Route through the dispatch table: direct calls, indirect
            # calls and the entry point all funnel through here, so one
            # remap covers every control transfer uniformly.
            exe = self.exe
            family = selector.select(
                exe.functions[func_index].name, exe.family_of[func_index]
            )
            func_index = exe.dispatch(func_index, family)
            self.cycles += self.dispatch_tax
        lf = self.exe.functions[func_index]
        mf = lf.mf
        if len(args) < self._fixed_args(mf):
            raise VMTrap(f"call to @{mf.name} with too few arguments", "bad-call")

        regs: List[int] = [0] * max(mf.num_regs, len(args))
        for i, value in enumerate(args):
            if i < mf.num_regs:
                regs[i] = value
        frame_base = self.stack_ptr - mf.frame_size
        if frame_base < self.heap_ptr + 0x1000:
            raise VMTrap("stack overflow", "stack-overflow")
        saved_sp = self.stack_ptr
        self.stack_ptr = frame_base

        insts = mf.insts
        resolution = lf.resolution
        pc = 0
        n = len(insts)
        try:
            while pc < n:
                inst = insts[pc]
                self.steps += 1
                if self.steps > self.max_steps:
                    raise VMError(
                        f"execution exceeded {self.max_steps} steps in @{mf.name}"
                    )
                self.cycles += inst.cost
                dec = inst.__dict__.get("dec")
                if dec is None:
                    dec = _decode(inst)
                    inst.dec = dec
                head = dec[0]

                if head == "bb":
                    if self.block_hook is not None:
                        self.block_hook(func_index, inst.imm)
                    self.cycles += self.block_tax
                    pc += 1
                elif head == "movi":
                    regs[inst.dst] = inst.imm
                    pc += 1
                elif head in ("mov", "freeze"):
                    regs[inst.dst] = regs[inst.srcs[0]]
                    pc += 1
                elif head == "bin":
                    try:
                        regs[inst.dst] = eval_binary(
                            dec[1], dec[2], regs[inst.srcs[0]], regs[inst.srcs[1]]
                        )
                    except ZeroDivisionError:
                        raise VMTrap("integer division by zero", "div-by-zero")
                    pc += 1
                elif head == "bini":
                    try:
                        regs[inst.dst] = eval_binary(
                            dec[1], dec[2], regs[inst.srcs[0]], inst.imm
                        )
                    except ZeroDivisionError:
                        raise VMTrap("integer division by zero", "div-by-zero")
                    pc += 1
                elif head == "cmp":
                    regs[inst.dst] = eval_icmp(
                        dec[1], dec[2], regs[inst.srcs[0]], regs[inst.srcs[1]]
                    )
                    pc += 1
                elif head == "cmpi":
                    regs[inst.dst] = eval_icmp(
                        dec[1], dec[2], regs[inst.srcs[0]], inst.imm
                    )
                    pc += 1
                elif head == "cast":
                    regs[inst.dst] = eval_cast(
                        dec[1], dec[2], dec[3], regs[inst.srcs[0]]
                    )
                    pc += 1
                elif head == "sel":
                    c, a, b = inst.srcs
                    regs[inst.dst] = regs[a] if regs[c] else regs[b]
                    pc += 1
                elif head == "ld":
                    regs[inst.dst] = self._load_int(regs[inst.srcs[0]], dec[1])
                    pc += 1
                elif head == "st":
                    self._store_int(regs[inst.srcs[0]], dec[1], regs[inst.srcs[1]])
                    pc += 1
                elif head == "addsc":
                    base, index = inst.srcs
                    idx = regs[index]
                    if idx >= 1 << 63:  # negative index in unsigned rep
                        idx -= 1 << 64
                    regs[inst.dst] = (regs[base] + idx * inst.imm) & ((1 << 64) - 1)
                    pc += 1
                elif head == "lea":
                    kind, value = resolution[inst.sym]
                    if kind == "data":
                        regs[inst.dst] = value
                    elif kind == "func":
                        regs[inst.dst] = self.exe.function_address(value)
                    else:
                        raise VMTrap(f"cannot take address of builtin {value}", "bad-call")
                    pc += 1
                elif head == "leaf":
                    regs[inst.dst] = frame_base + inst.imm
                    pc += 1
                elif head == "jmp":
                    pc = inst.targets[0]
                elif head == "brt":
                    pc = inst.targets[0] if regs[inst.srcs[0]] else inst.targets[1]
                elif head == "switch":
                    value = regs[inst.srcs[0]]
                    signed = value - (1 << 64) if value >= 1 << 63 else value
                    target = inst.targets[0]
                    for case_value, case_target in inst.table:
                        if case_value == signed or case_value == value:
                            target = case_target
                            break
                    pc = target
                elif head == "call":
                    kind, value = resolution[inst.sym]
                    call_args = tuple(regs[r] for r in inst.args)
                    if kind == "func":
                        result = self._call(value, call_args)
                    elif kind == "builtin":
                        result = self.builtins.call(value, call_args)
                    else:
                        raise VMTrap(f"call to data symbol @{inst.sym}", "bad-call")
                    if inst.dst >= 0:
                        regs[inst.dst] = result
                    pc += 1
                elif head == "icall":
                    target_index = self.exe.index_from_address(regs[inst.srcs[0]])
                    call_args = tuple(regs[r] for r in inst.args)
                    result = self._call(target_index, call_args)
                    if inst.dst >= 0:
                        regs[inst.dst] = result
                    pc += 1
                elif head == "probe":
                    if self.probe_runtime is not None:
                        self.probe_runtime.on_probe(
                            inst.probe_kind,
                            inst.probe_id,
                            tuple(regs[r] for r in inst.args),
                            self,
                        )
                    pc += 1
                elif head == "ret":
                    return regs[inst.srcs[0]] if inst.srcs else 0
                elif head == "trap":
                    raise VMTrap(f"unreachable executed in @{mf.name}", "unreachable")
                else:  # pragma: no cover
                    raise VMError(f"unknown machine op {inst.op!r}")
            raise VMTrap(f"fell off the end of @{mf.name}", "bad-code")
        finally:
            self.stack_ptr = saved_sp

    @staticmethod
    def _fixed_args(mf) -> int:
        return 0  # arity is enforced at the IR level; the VM is permissive


def run_program(
    executable: Executable,
    entry: str = "main",
    args: Tuple[int, ...] = (),
    **vm_kwargs,
) -> ExecutionResult:
    """One-shot convenience runner."""
    return VM(executable, **vm_kwargs).run(entry, args)
