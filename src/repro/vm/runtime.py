"""VM runtime builtins: the tiny libc the target programs link against.

Implemented natively (outside the cycle model except for a fixed charge
per call) so library behaviour never depends on instrumentation — exactly
like the real evaluations, which never instrument libc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.errors import VMTrap

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.interpreter import VM

# Flat per-call cycle charge for builtins (plus per-byte charges below).
BUILTIN_BASE_CYCLES = 12
BUILTIN_BYTE_CYCLES = 1  # memcpy/memset/strlen per byte


class ExitProgram(Exception):
    """Raised by the exit() builtin to unwind the interpreter."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


def _signed64(value: int) -> int:
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >= 1 << 63 else value


class BuiltinRuntime:
    """State and dispatch for runtime builtins."""

    def __init__(self, vm: "VM"):
        self.vm = vm
        self._stdout = bytearray()

    def reset(self) -> None:
        self._stdout.clear()

    def stdout_bytes(self) -> bytes:
        return bytes(self._stdout)

    # -- dispatch ------------------------------------------------------------

    def call(self, name: str, args: Tuple[int, ...]) -> int:
        handler = getattr(self, f"do_{name}", None)
        if handler is None:
            raise VMTrap(f"unknown builtin {name!r}", "bad-call")
        self.vm.cycles += BUILTIN_BASE_CYCLES
        return handler(args)

    # -- stdio ----------------------------------------------------------------

    def do_printf(self, args: Tuple[int, ...]) -> int:
        if not args:
            raise VMTrap("printf with no format", "bad-call")
        fmt = self.vm.read_cstring(args[0])
        out = self._format(fmt, args[1:])
        self._stdout.extend(out)
        self.vm.cycles += len(out) * BUILTIN_BYTE_CYCLES
        return len(out)

    def do_puts(self, args: Tuple[int, ...]) -> int:
        text = self.vm.read_cstring(args[0])
        self._stdout.extend(text + b"\n")
        self.vm.cycles += (len(text) + 1) * BUILTIN_BYTE_CYCLES
        return len(text) + 1

    def do_putchar(self, args: Tuple[int, ...]) -> int:
        self._stdout.append(args[0] & 0xFF)
        return args[0] & 0xFF

    def _format(self, fmt: bytes, args: Tuple[int, ...]) -> bytes:
        out = bytearray()
        arg_index = 0
        i = 0

        def next_arg() -> int:
            nonlocal arg_index
            if arg_index >= len(args):
                raise VMTrap("printf: missing argument", "bad-call")
            value = args[arg_index]
            arg_index += 1
            return value

        while i < len(fmt):
            ch = fmt[i]
            if ch != ord("%"):
                out.append(ch)
                i += 1
                continue
            i += 1
            # Skip 'l' length modifiers (all varargs are 64-bit here).
            while i < len(fmt) and fmt[i] in b"l":
                i += 1
            if i >= len(fmt):
                out.append(ord("%"))
                break
            spec = fmt[i]
            i += 1
            if spec == ord("%"):
                out.append(ord("%"))
            elif spec == ord("d"):
                out.extend(str(_signed64(next_arg())).encode())
            elif spec == ord("u"):
                out.extend(str(next_arg() & ((1 << 64) - 1)).encode())
            elif spec == ord("x"):
                out.extend(format(next_arg() & ((1 << 64) - 1), "x").encode())
            elif spec == ord("c"):
                out.append(next_arg() & 0xFF)
            elif spec == ord("s"):
                out.extend(self.vm.read_cstring(next_arg()))
            elif spec == ord("p"):
                out.extend(format(next_arg(), "#x").encode())
            else:
                raise VMTrap(f"printf: unsupported %{chr(spec)}", "bad-call")
        return bytes(out)

    # -- memory -----------------------------------------------------------------

    def do_malloc(self, args: Tuple[int, ...]) -> int:
        return self.vm.alloc(_signed64(args[0]))

    def do_free(self, args: Tuple[int, ...]) -> int:
        return 0  # bump allocator: free is a no-op

    def do_memcpy(self, args: Tuple[int, ...]) -> int:
        dst, src, size = args[0], args[1], _signed64(args[2])
        if size < 0:
            raise VMTrap("memcpy with negative size", "bad-memory")
        data = self.vm.read_bytes(src, size)
        self.vm.write_bytes(dst, data)
        self.vm.cycles += size * BUILTIN_BYTE_CYCLES
        return dst

    def do_memset(self, args: Tuple[int, ...]) -> int:
        dst, byte, size = args[0], args[1] & 0xFF, _signed64(args[2])
        if size < 0:
            raise VMTrap("memset with negative size", "bad-memory")
        self.vm.write_bytes(dst, bytes([byte]) * size)
        self.vm.cycles += size * BUILTIN_BYTE_CYCLES
        return dst

    # -- strings ------------------------------------------------------------------

    def do_strlen(self, args: Tuple[int, ...]) -> int:
        text = self.vm.read_cstring(args[0])
        self.vm.cycles += len(text) * BUILTIN_BYTE_CYCLES
        return len(text)

    def do_strcmp(self, args: Tuple[int, ...]) -> int:
        a = self.vm.read_cstring(args[0])
        b = self.vm.read_cstring(args[1])
        self.vm.cycles += min(len(a), len(b)) * BUILTIN_BYTE_CYCLES
        if a == b:
            return 0
        return 1 if a > b else (1 << 64) - 1  # -1 in unsigned rep

    # -- process ----------------------------------------------------------------------

    def do_abort(self, args: Tuple[int, ...]) -> int:
        raise VMTrap("abort() called", "abort")

    def do_exit(self, args: Tuple[int, ...]) -> int:
        raise ExitProgram(_signed64(args[0]) if args else 0)
