"""Tests for the worklist dataflow engine and its concrete analyses."""

from repro.analysis.dataflow import (
    Liveness,
    ReachingStores,
    UNINIT,
    ValueRange,
    compute_value_ranges,
    escaping_allocas,
    full_range,
    may_overflow,
    solve,
)
from repro.ir.parser import parse_module
from repro.ir.types import I8, I32

LOOP = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %latch, label %exit
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"""


def _fn(text, name="f"):
    return parse_module(text).get(name)


class TestWorklistEngine:
    def test_liveness_through_loop(self):
        fn = _fn(LOOP)
        result = solve(Liveness(), fn)
        by_name = {b.name: b for b in fn.blocks}
        values = {i.name: i for i in fn.instructions() if i.name}
        n = fn.args[0]
        # %n is live on every path that re-tests the loop condition.
        assert n in result.block_in[by_name["header"]]
        assert n in result.block_in[by_name["latch"]]
        # After the exit block nothing is live.
        assert result.block_out[by_name["exit"]] == frozenset()
        # %i flows into the exit block (it is returned).
        assert values["i"] in result.block_in[by_name["exit"]]

    def test_phi_operand_live_only_on_its_edge(self):
        fn = _fn(LOOP)
        result = solve(Liveness(), fn)
        by_name = {b.name: b for b in fn.blocks}
        values = {i.name: i for i in fn.instructions() if i.name}
        # %next is used only by the phi via the latch edge: live out of
        # latch, but NOT live into header's other predecessor (entry).
        assert values["next"] in result.block_out[by_name["latch"]]
        assert values["next"] not in result.block_out[by_name["entry"]]

    def test_solver_skips_unreachable_blocks(self):
        fn = _fn(
            """
define i32 @f(i32 %a) {
entry:
  ret i32 %a
dead:
  %x = add i32 %a, 1
  ret i32 %x
}
"""
        )
        result = solve(Liveness(), fn)
        names = {b.name for b in result.block_in}
        assert names == {"entry"}


class TestReachingStores:
    MAYBE_UNINIT = """
define i32 @f(i1 %c) {
entry:
  %p = alloca i32
  br i1 %c, label %init, label %skip
init:
  store i32 7, ptr %p
  br label %join
skip:
  br label %join
join:
  %v = load i32, ptr %p
  ret i32 %v
}
"""

    def test_uninit_reaches_join_on_skip_path(self):
        fn = _fn(self.MAYBE_UNINIT)
        slot = fn.entry.instructions[0]
        problem = ReachingStores([slot])
        result = solve(problem, fn)
        join = fn.get_block("join")
        assert UNINIT in result.block_in[join][slot]

    def test_store_on_both_paths_kills_uninit(self):
        fn = _fn(self.MAYBE_UNINIT.replace(
            "skip:\n", "skip:\n  store i32 9, ptr %p\n"
        ))
        slot = fn.entry.instructions[0]
        result = solve(ReachingStores([slot]), fn)
        join = fn.get_block("join")
        defs = result.block_in[join][slot]
        assert UNINIT not in defs
        assert len(defs) == 2  # both stores may reach

    def test_escaping_allocas(self):
        fn = _fn(
            """
declare void @sink(ptr)

define void @f() {
entry:
  %kept = alloca i32
  %leaked = alloca i32
  store i32 1, ptr %kept
  call void @sink(ptr %leaked)
  ret void
}
""",
        )
        kept, leaked = fn.entry.instructions[0], fn.entry.instructions[1]
        escaped = escaping_allocas(fn)
        assert leaked in escaped
        assert kept not in escaped


class TestValueRanges:
    def test_byte_arithmetic_is_bounded(self):
        fn = _fn(
            """
define i32 @f(i8 %a, i8 %b) {
entry:
  %wa = sext i8 %a to i32
  %wb = sext i8 %b to i32
  %sum = add i32 %wa, %wb
  ret i32 %sum
}
"""
        )
        ranges = compute_value_ranges(fn)
        values = {i.name: i for i in fn.instructions() if i.name}
        assert ranges[values["wa"]] == ValueRange(-128, 127)
        assert ranges[values["sum"]] == ValueRange(-256, 254)
        assert not may_overflow(values["sum"], ranges)

    def test_loop_phi_widens_to_full_range(self):
        fn = _fn(LOOP)
        ranges = compute_value_ranges(fn)
        values = {i.name: i for i in fn.instructions() if i.name}
        assert ranges[values["i"]] == full_range(I32)
        assert ranges[values["c"]] == ValueRange(0, 1)

    def test_zext_and_trunc(self):
        fn = _fn(
            """
define i8 @f(i8 %x) {
entry:
  %w = zext i8 %x to i32
  %n = trunc i32 %w to i8
  ret i8 %n
}
"""
        )
        ranges = compute_value_ranges(fn)
        values = {i.name: i for i in fn.instructions() if i.name}
        assert ranges[values["w"]] == ValueRange(0, 255)
        # [0, 255] does not fit signed i8: trunc falls back to full.
        assert ranges[values["n"]] == full_range(I8)

    def test_unknown_operands_may_overflow(self):
        fn = _fn(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}
"""
        )
        ranges = compute_value_ranges(fn)
        values = {i.name: i for i in fn.instructions() if i.name}
        assert may_overflow(values["s"], ranges)

    def test_masked_value_cannot_overflow(self):
        fn = _fn(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %la = and i32 %a, 1023
  %lb = and i32 %b, 1023
  %s = add i32 %la, %lb
  %m = mul i32 %la, %lb
  ret i32 %s
}
"""
        )
        ranges = compute_value_ranges(fn)
        values = {i.name: i for i in fn.instructions() if i.name}
        assert not may_overflow(values["s"], ranges)
        assert not may_overflow(values["m"], ranges)
