"""Tests for the IR lint suite: one hand-written trigger per check."""

import pytest

from repro.analysis.lints import ALL_LINTS, run_lints
from repro.ir.parser import parse_module


def lints_for(text, checks=None):
    return run_lints(parse_module(text), checks)


def checks_of(diags):
    return [d.check for d in diags]


class TestLintSelection:
    def test_unknown_lint_rejected(self):
        with pytest.raises(ValueError, match="unknown lints"):
            lints_for("define void @f() {\nentry:\n  ret void\n}", ["no-such"])

    def test_clean_function_is_silent(self):
        assert lints_for(
            """
define i32 @f(i1 %c) {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
"""
        ) == []

    def test_every_lint_has_a_slug(self):
        assert len(ALL_LINTS) == 5


class TestUnreachableBlock:
    def test_detached_block_flagged(self):
        diags = lints_for(
            "define void @f() {\nentry:\n  ret void\ndead:\n  ret void\n}",
            ["unreachable-block"],
        )
        assert checks_of(diags) == ["unreachable-block"]
        assert diags[0].function == "f"
        assert diags[0].block == "dead"


class TestDeadStore:
    def test_overwritten_store_flagged(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  store i32 2, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["dead-store"],
        )
        assert checks_of(diags) == ["dead-store"]

    def test_escaping_alloca_not_tracked(self):
        # The callee may read the slot: the double store is not provably dead.
        diags = lints_for(
            """
declare void @sink(ptr)

define void @f() {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  call void @sink(ptr %p)
  store i32 2, ptr %p
  call void @sink(ptr %p)
  ret void
}
""",
            ["dead-store"],
        )
        assert diags == []


class TestUninitializedLoad:
    def test_load_on_skip_path_flagged(self):
        diags = lints_for(
            """
define i32 @f(i1 %c) {
entry:
  %p = alloca i32
  br i1 %c, label %init, label %join
init:
  store i32 7, ptr %p
  br label %join
join:
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["uninitialized-load"],
        )
        assert checks_of(diags) == ["uninitialized-load"]
        assert diags[0].block == "join"

    def test_dominating_store_is_silent(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  %p = alloca i32
  store i32 7, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["uninitialized-load"],
        )
        assert diags == []


class TestConstantCondition:
    def test_literal_constant_condition(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  br i1 1, label %a, label %b
a:
  ret i32 1
b:
  ret i32 0
}
""",
            ["constant-condition"],
        )
        assert checks_of(diags) == ["constant-condition"]
        assert "always true" in diags[0].message

    def test_range_proven_condition(self):
        # %x is masked to [0, 15]; x < 100 is always true.
        diags = lints_for(
            """
define i32 @f(i32 %a) {
entry:
  %x = and i32 %a, 15
  %c = icmp slt i32 %x, 100
  br i1 %c, label %yes, label %no
yes:
  ret i32 1
no:
  ret i32 0
}
""",
            ["constant-condition"],
        )
        assert checks_of(diags) == ["constant-condition"]


class TestOverflowCandidate:
    def test_unbounded_add_is_a_note(self):
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}
""",
            ["overflow-candidate"],
        )
        assert checks_of(diags) == ["overflow-candidate"]
        assert diags[0].severity == "note"

    def test_proven_safe_add_is_silent(self):
        diags = lints_for(
            """
define i32 @f(i8 %a, i8 %b) {
entry:
  %wa = sext i8 %a to i32
  %wb = sext i8 %b to i32
  %s = add i32 %wa, %wb
  ret i32 %s
}
""",
            ["overflow-candidate"],
        )
        assert diags == []
