"""Tests for the IR lint suite: one hand-written trigger per check."""

import pytest

from repro.analysis.lints import ALL_LINTS, run_lints
from repro.ir.parser import parse_module


def lints_for(text, checks=None):
    return run_lints(parse_module(text), checks)


def checks_of(diags):
    return [d.check for d in diags]


class TestLintSelection:
    def test_unknown_lint_rejected(self):
        with pytest.raises(ValueError, match="unknown lints"):
            lints_for("define void @f() {\nentry:\n  ret void\n}", ["no-such"])

    def test_clean_function_is_silent(self):
        assert lints_for(
            """
define i32 @f(i1 %c) {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
"""
        ) == []

    def test_every_lint_has_a_slug(self):
        assert len(ALL_LINTS) == 7


class TestUnreachableBlock:
    def test_detached_block_flagged(self):
        diags = lints_for(
            "define void @f() {\nentry:\n  ret void\ndead:\n  ret void\n}",
            ["unreachable-block"],
        )
        assert checks_of(diags) == ["unreachable-block"]
        assert diags[0].function == "f"
        assert diags[0].block == "dead"


class TestDeadStore:
    def test_overwritten_store_flagged(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  store i32 2, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["dead-store"],
        )
        assert checks_of(diags) == ["dead-store"]

    def test_escaping_alloca_not_tracked(self):
        # The callee may read the slot: the double store is not provably dead.
        diags = lints_for(
            """
declare void @sink(ptr)

define void @f() {
entry:
  %p = alloca i32
  store i32 1, ptr %p
  call void @sink(ptr %p)
  store i32 2, ptr %p
  call void @sink(ptr %p)
  ret void
}
""",
            ["dead-store"],
        )
        assert diags == []


class TestUninitializedLoad:
    def test_load_on_skip_path_flagged(self):
        diags = lints_for(
            """
define i32 @f(i1 %c) {
entry:
  %p = alloca i32
  br i1 %c, label %init, label %join
init:
  store i32 7, ptr %p
  br label %join
join:
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["uninitialized-load"],
        )
        assert checks_of(diags) == ["uninitialized-load"]
        assert diags[0].block == "join"

    def test_dominating_store_is_silent(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  %p = alloca i32
  store i32 7, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
""",
            ["uninitialized-load"],
        )
        assert diags == []


class TestConstantCondition:
    def test_literal_constant_condition(self):
        diags = lints_for(
            """
define i32 @f() {
entry:
  br i1 1, label %a, label %b
a:
  ret i32 1
b:
  ret i32 0
}
""",
            ["constant-condition"],
        )
        assert checks_of(diags) == ["constant-condition"]
        assert "always true" in diags[0].message

    def test_range_proven_condition(self):
        # %x is masked to [0, 15]; x < 100 is always true.
        diags = lints_for(
            """
define i32 @f(i32 %a) {
entry:
  %x = and i32 %a, 15
  %c = icmp slt i32 %x, 100
  br i1 %c, label %yes, label %no
yes:
  ret i32 1
no:
  ret i32 0
}
""",
            ["constant-condition"],
        )
        assert checks_of(diags) == ["constant-condition"]


class TestDivByZero:
    def test_constant_zero_divisor_is_a_warning(self):
        diags = lints_for(
            """
define i32 @f(i32 %a) {
entry:
  %q = sdiv i32 %a, 0
  ret i32 %q
}
""",
            ["div-by-zero"],
        )
        assert checks_of(diags) == ["div-by-zero"]
        assert diags[0].severity == "warning"
        assert "always zero" in diags[0].message

    def test_interval_straddling_zero_is_a_warning(self):
        # %d is masked to [0, 7]: zero is still in range.
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = and i32 %b, 7
  %q = sdiv i32 %a, %d
  ret i32 %q
}
""",
            ["div-by-zero"],
        )
        assert checks_of(diags) == ["div-by-zero"]
        assert diags[0].severity == "warning"
        assert "range [0, 7]" in diags[0].message

    def test_unknown_divisor_is_a_note(self):
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  ret i32 %q
}
""",
            ["div-by-zero"],
        )
        assert checks_of(diags) == ["div-by-zero"]
        assert diags[0].severity == "note"

    def test_proven_nonzero_divisor_is_silent(self):
        # The `| 1` trick: divisor is provably odd, hence nonzero.
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %d = or i32 %b, 1
  %q = sdiv i32 %a, %d
  ret i32 %q
}
""",
            ["div-by-zero"],
        )
        assert diags == []


class TestShiftRange:
    def test_constant_overwide_shift_is_a_warning(self):
        diags = lints_for(
            """
define i32 @f(i32 %a) {
entry:
  %s = shl i32 %a, 40
  ret i32 %s
}
""",
            ["shift-range"],
        )
        assert checks_of(diags) == ["shift-range"]
        assert diags[0].severity == "warning"
        assert "always out of range" in diags[0].message

    def test_interval_reaching_width_is_a_warning(self):
        # %n in [0, 63]: amounts 32..63 are out of range for i32.
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %n = and i32 %b, 63
  %s = lshr i32 %a, %n
  ret i32 %s
}
""",
            ["shift-range"],
        )
        assert checks_of(diags) == ["shift-range"]
        assert diags[0].severity == "warning"

    def test_unknown_amount_is_a_note(self):
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = ashr i32 %a, %b
  ret i32 %s
}
""",
            ["shift-range"],
        )
        assert checks_of(diags) == ["shift-range"]
        assert diags[0].severity == "note"

    def test_masked_amount_is_silent(self):
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %n = and i32 %b, 31
  %s = shl i32 %a, %n
  ret i32 %s
}
""",
            ["shift-range"],
        )
        assert diags == []


class TestDeterministicOutput:
    SOURCE = """
define i32 @zz(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  %s = shl i32 %q, %b
  ret i32 %s
dead:
  ret i32 0
}

define i32 @aa(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  ret i32 %q
}
"""

    def test_sorted_by_function_block_kind(self):
        diags = lints_for(self.SOURCE)
        keys = [(d.function, d.block or "", d.check) for d in diags]
        assert keys == sorted(keys)
        assert diags[0].function == "aa"  # despite @zz being defined first

    def test_repeated_runs_byte_identical(self):
        first = "\n".join(str(d) for d in lints_for(self.SOURCE))
        second = "\n".join(str(d) for d in lints_for(self.SOURCE))
        assert first == second

    def test_duplicates_collapse(self):
        from repro.analysis.lints import stable_diagnostics

        diags = lints_for(self.SOURCE)
        assert stable_diagnostics(diags + diags) == diags


class TestOverflowCandidate:
    def test_unbounded_add_is_a_note(self):
        diags = lints_for(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}
""",
            ["overflow-candidate"],
        )
        assert checks_of(diags) == ["overflow-candidate"]
        assert diags[0].severity == "note"

    def test_proven_safe_add_is_silent(self):
        diags = lints_for(
            """
define i32 @f(i8 %a, i8 %b) {
entry:
  %wa = sext i8 %a to i32
  %wb = sext i8 %b to i32
  %s = add i32 %wa, %wb
  ret i32 %s
}
""",
            ["overflow-candidate"],
        )
        assert diags == []
