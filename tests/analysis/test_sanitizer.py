"""Probe-integrity sanitizer tests.

Two directions, mirroring the differential oracle's test strategy:

* *mutation sanity*: hand-broken passes (a fake instcombine that folds a
  frozen CmpProbe operand, a fake simplifycfg that erases an enabled
  CovProbe call) must be reported, attributed to the offending pass;
* *clean-pipeline*: the real -O2 pipeline over every registry program
  must produce zero errors.
"""

import pytest

from repro.analysis.diagnostics import errors_of
from repro.analysis.sanitizer import ProbeIntegritySanitizer
from repro.core.engine import Odin
from repro.instrument.cmplog import add_cmp_probes
from repro.instrument.coverage import OdinCov
from repro.ir.instructions import CallInst
from repro.ir.parser import parse_module
from repro.ir.types import I64
from repro.ir.values import ConstantInt
from repro.opt.pass_manager import Pass, PassManager
from repro.programs.registry import all_programs, get_program

PRESERVED = ("main", "run_input")

# An already-instrumented fragment shape: one cov probe per block, one
# cmplog probe with frozen (non-constant) value operands.
INSTRUMENTED = """
declare void @__odin_cov_hit(i64)
declare void @__cmplog_hit(i64, i64, i64)

define i32 @run_input(i32 %a, i32 %b) {
entry:
  call void @__odin_cov_hit(i64 1)
  %fa = freeze i32 %a
  %wa = sext i32 %fa to i64
  %wb = sext i32 %b to i64
  call void @__cmplog_hit(i64 3, i64 %wa, i64 %wb)
  %c = icmp slt i32 %a, %b
  br i1 %c, label %then, label %done
then:
  call void @__odin_cov_hit(i64 2)
  br label %done
done:
  %r = phi i32 [ 1, %then ], [ 0, %entry ]
  ret i32 %r
}
"""


def probe_calls(module, runtime):
    return [
        inst
        for fn in module.defined_functions()
        for inst in fn.instructions()
        if isinstance(inst, CallInst)
        and inst.called_function_name() == runtime
    ]


class FoldCmpOperands(Pass):
    """A broken instcombine: rewrites through the freeze barrier."""

    name = "instcombine"

    def run(self, module, ctx):
        for call in probe_calls(module, "__cmplog_hit"):
            call.set_args(
                [call.args[0], ConstantInt(I64, 5), ConstantInt(I64, 5)]
            )
        return True


class EraseCovCall(Pass):
    """A broken simplifycfg: drops an enabled coverage probe's call."""

    name = "simplifycfg"

    def run(self, module, ctx):
        for call in probe_calls(module, "__odin_cov_hit"):
            if call.args[0].signed == 2:
                call.erase()
        return True


class NopPass(Pass):
    name = "nop"

    def run(self, module, ctx):
        return False


class TestSeededDistortions:
    def test_folded_cmp_operands_attributed_to_pass(self):
        module = parse_module(INSTRUMENTED)
        pm = PassManager([FoldCmpOperands()], sanitize_each=True)
        ctx = pm.run(module)
        errors = errors_of(ctx.diagnostics)
        assert [d.check for d in errors] == ["probe-operands-folded"]
        assert errors[0].pass_name == "instcombine"
        assert errors[0].probe_id == 3
        assert "instcombine" in str(errors[0])

    def test_erased_cov_call_attributed_to_pass(self):
        module = parse_module(INSTRUMENTED)
        pm = PassManager([EraseCovCall()], sanitize_each=True)
        ctx = pm.run(module)
        errors = errors_of(ctx.diagnostics)
        assert [d.check for d in errors] == ["probe-erased"]
        assert errors[0].pass_name == "simplifycfg"
        assert errors[0].probe_id == 2
        assert errors[0].function == "run_input"
        assert errors[0].block == "then"

    def test_attribution_lands_on_offender_not_neighbours(self):
        module = parse_module(INSTRUMENTED)
        pm = PassManager(
            [NopPass(), EraseCovCall(), NopPass()], sanitize_each=True
        )
        ctx = pm.run(module)
        errors = errors_of(ctx.diagnostics)
        assert len(errors) == 1
        assert errors[0].pass_name == "simplifycfg"

    def test_clean_passes_stay_silent(self):
        module = parse_module(INSTRUMENTED)
        ctx = PassManager([NopPass()], sanitize_each=True).run(module)
        assert ctx.diagnostics == []


class TestExecutableReachability:
    # The branch condition is already the constant true: the %dead arm is
    # edge-reachable but can never execute, so its probe is not protected.
    CONST_BRANCH = """
declare void @__odin_cov_hit(i64)

define i32 @run_input(i32 %a) {
entry:
  call void @__odin_cov_hit(i64 1)
  br i1 1, label %live, label %dead
live:
  ret i32 1
dead:
  call void @__odin_cov_hit(i64 9)
  ret i32 0
}
"""

    def test_dead_arm_probe_removal_not_flagged(self):
        module = parse_module(self.CONST_BRANCH)
        pm = PassManager([EraseCovCallNine()], sanitize_each=True)
        ctx = pm.run(module)
        assert errors_of(ctx.diagnostics) == []

    def test_check_module_warns_about_never_firing_probe(self):
        sanitizer = ProbeIntegritySanitizer(parse_module(self.CONST_BRANCH))
        diags = sanitizer.check_module()
        assert [d.check for d in diags] == ["probe-unreachable"]
        assert diags[0].probe_id == 9
        assert not diags[0].is_error


class EraseCovCallNine(Pass):
    name = "simplifycfg"

    def run(self, module, ctx):
        for call in probe_calls(module, "__odin_cov_hit"):
            if call.args[0].signed == 9:
                call.erase()
        return True


class TestRuntimeSymbolChecks:
    def test_internalized_runtime_reported(self):
        module = parse_module(INSTRUMENTED)
        sanitizer = ProbeIntegritySanitizer(module)
        module.get("__cmplog_hit").linkage = "internal"
        diags = sanitizer.advance("internalize")
        assert any(d.check == "probe-runtime-internalized" for d in diags)
        assert all(d.pass_name == "internalize" for d in diags)


class TestCleanPipeline:
    """Acceptance: the unmodified -O2 pipeline distorts no probes on any
    registry program."""

    @pytest.mark.parametrize(
        "name", [p.name for p in all_programs()]
    )
    def test_full_o2_build_reports_no_errors(self, name):
        program = get_program(name)
        engine = Odin(
            program.compile(), preserve=PRESERVED, opt_level=2, sanitize=True
        )
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        add_cmp_probes(engine)
        tool.build()
        assert errors_of(engine.sanitizer_diagnostics) == [], (
            f"{name}: " + "\n".join(
                str(d) for d in errors_of(engine.sanitizer_diagnostics)
            )
        )
