"""Tests for instruction selection and object file emission."""

import pytest

from repro.backend.isel import lower_function, lower_module, split_critical_edges
from repro.backend.machine import MachineInst, ObjectFile
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module


def lower(source, fn_name="f"):
    m = parse_module(source)
    obj = lower_module(m)
    return obj, obj.functions.get(fn_name)


class TestLowering:
    def test_simple_function(self):
        obj, mf = lower(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  ret i32 %x
}
"""
        )
        ops = [i.op for i in mf.insts]
        assert "bin.add.32" in ops
        assert ops[-1] == "ret"
        assert ops[0] == "bb"

    def test_constant_folds_into_immediate_form(self):
        _, mf = lower(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 7\n  ret i32 %x\n}"
        )
        inst = next(i for i in mf.insts if i.op.startswith("bini"))
        assert inst.imm == 7

    def test_alloca_becomes_frame_slot(self):
        _, mf = lower(
            """
define i32 @f() {
entry:
  %a = alloca i32
  %b = alloca i64
  store i32 1, ptr %a
  %v = load i32, ptr %a
  ret i32 %v
}
"""
        )
        assert mf.frame_size == 16  # two 8-byte-aligned slots
        assert any(i.op == "leaf" for i in mf.insts)

    def test_global_reference_becomes_lea(self):
        obj, mf = lower(
            """
@g = global i32 5

define i32 @f() {
entry:
  %v = load i32, ptr @g
  ret i32 %v
}
"""
        )
        lea = next(i for i in mf.insts if i.op == "lea")
        assert lea.sym == "g"
        assert "g" in obj.data

    def test_branch_targets_resolved_to_indices(self):
        _, mf = lower(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
        )
        brt = next(i for i in mf.insts if i.op == "brt")
        for target in brt.targets:
            assert 0 <= target < len(mf.insts)
            assert mf.insts[target].op == "bb"

    def test_switch_table_resolved(self):
        _, mf = lower(
            """
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [ i32 1, label %a i32 2, label %b ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 0
}
"""
        )
        sw = next(i for i in mf.insts if i.op == "switch")
        assert len(sw.table) == 2
        assert all(mf.insts[t].op == "bb" for _, t in sw.table)

    def test_phi_eliminated_with_moves(self):
        _, mf = lower(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %r
}
"""
        )
        assert not any("phi" in i.op for i in mf.insts)
        movis = [i for i in mf.insts if i.op == "movi" and i.imm in (1, 2)]
        assert len(movis) == 2

    def test_phi_swap_handled_by_temporaries(self):
        """Classic lost-copy: a, b = b, a through a loop."""
        from repro.linker.linker import link
        from repro.vm.interpreter import VM

        m = parse_module(
            """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %a = phi i32 [ 1, %entry ], [ %b, %latch ]
  %b = phi i32 [ 2, %entry ], [ %a, %latch ]
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %latch, label %exit
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  %r = mul i32 %a, 10
  %r2 = add i32 %r, %b
  ret i32 %r2
}
"""
        )
        exe = link([lower_module(m)])
        assert VM(exe).run("f", (0,)).exit_code == 12
        assert VM(exe).run("f", (1,)).exit_code == 21
        assert VM(exe).run("f", (2,)).exit_code == 12

    def test_probe_call_lowered_to_probe_inst(self):
        _, mf = lower(
            """
declare void @__odin_cov_hit(i64)

define void @f() {
entry:
  call void @__odin_cov_hit(i64 42)
  ret void
}
"""
        )
        probe = next(i for i in mf.insts if i.op == "probe")
        assert probe.probe_kind == "cov"
        assert probe.probe_id == 42
        assert not any(i.op == "call" for i in mf.insts)

    def test_cmplog_probe_carries_value_args(self):
        _, mf = lower(
            """
declare void @__cmplog_hit(i64, i64, i64)

define void @f(i64 %a, i64 %b) {
entry:
  call void @__cmplog_hit(i64 3, i64 %a, i64 %b)
  ret void
}
"""
        )
        probe = next(i for i in mf.insts if i.op == "probe")
        assert probe.probe_kind == "cmplog"
        assert probe.probe_id == 3
        assert len(probe.args) == 2

    def test_indirect_call(self):
        _, mf = lower(
            """
define i32 @callee() {
entry:
  ret i32 1
}

define i32 @f() {
entry:
  %r = call i32 @callee()
  ret i32 %r
}
"""
        )
        assert any(i.op == "call" and i.sym == "callee" for i in mf.insts)


class TestObjectFile:
    def test_imports_and_exports(self):
        obj, _ = lower(
            """
@ext = declare global i32

declare i32 @helper(i32)

define internal i32 @local() {
entry:
  ret i32 1
}

define i32 @f() {
entry:
  %v = load i32, ptr @ext
  %r = call i32 @helper(i32 %v)
  ret i32 %r
}
"""
        )
        assert set(obj.imports) >= {"ext", "helper"}
        assert "f" in obj.exported_symbols()
        assert "local" not in obj.exported_symbols()

    def test_alias_recorded_with_linkage(self):
        obj, _ = lower(
            """
define i32 @f() {
entry:
  ret i32 1
}

@pub = alias @f
"""
        )
        assert obj.aliases["pub"] == ("f", "external")

    def test_compile_ms_positive(self):
        obj, _ = lower("define void @f() {\nentry:\n  ret void\n}")
        assert obj.compile_ms > 0

    def test_data_lowering(self):
        obj, _ = lower(
            """
@bytes_ = const [3 x i8] c"ab\\00"
@word = global i32 258
@arr = global [2 x i16] [i16 1, i16 2]
@p = global ptr null

define void @f() {
entry:
  %x = load i8, ptr @bytes_
  ret void
}
"""
        )
        assert obj.data["bytes_"].data == b"ab\x00"
        assert obj.data["word"].data == (258).to_bytes(4, "little")
        assert obj.data["arr"].data == b"\x01\x00\x02\x00"
        assert obj.data["p"].data == b"\x00" * 8


class TestCriticalEdges:
    def test_critical_edge_split(self):
        m = parse_module(
            """
define i32 @f(i1 %c, i1 %d) {
entry:
  br i1 %c, label %mid, label %join
mid:
  br i1 %d, label %other, label %join
other:
  ret i32 0
join:
  %r = phi i32 [ 1, %entry ], [ 2, %mid ]
  ret i32 %r
}
"""
        )
        fn = m.get("f")
        split_critical_edges(fn)
        verify_module(m)
        # Both edges into the phi block came from multi-successor blocks.
        join = fn.get_block("join")
        for pred in join.predecessors():
            assert len(pred.successors()) == 1
