"""Tests for the linker: resolution, collisions, internal isolation, aliases."""

import pytest

from repro.backend.isel import lower_module
from repro.errors import LinkError
from repro.ir.parser import parse_module
from repro.linker.linker import FUNC_BASE, link
from repro.vm.interpreter import VM


def obj_of(source, name="m"):
    return lower_module(parse_module(source, name))


class TestResolution:
    def test_cross_object_call(self):
        a = obj_of(
            """
declare i32 @helper(i32)

define i32 @main() {
entry:
  %r = call i32 @helper(i32 20)
  ret i32 %r
}
""",
            "a",
        )
        b = obj_of(
            """
define i32 @helper(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
""",
            "b",
        )
        exe = link([a, b])
        assert VM(exe).run("main").exit_code == 21

    def test_cross_object_data(self):
        a = obj_of(
            """
@shared = declare global i32

define i32 @main() {
entry:
  %v = load i32, ptr @shared
  ret i32 %v
}
""",
            "a",
        )
        b = obj_of("@shared = global i32 17", "b")
        exe = link([a, b])
        assert VM(exe).run("main").exit_code == 17

    def test_undefined_symbol_rejected(self):
        a = obj_of(
            """
declare void @ghost()

define void @main() {
entry:
  call void @ghost()
  ret void
}
""",
            "a",
        )
        with pytest.raises(LinkError, match="undefined symbol"):
            link([a])

    def test_builtins_resolve_without_definition(self):
        a = obj_of(
            """
declare i32 @puts(ptr)
@msg = const [3 x i8] c"ok\\00"

define i32 @main() {
entry:
  %r = call i32 @puts(ptr @msg)
  ret i32 %r
}
""",
            "a",
        )
        exe = link([a])
        result = VM(exe).run("main")
        assert result.stdout == b"ok\n"


class TestCollisions:
    def test_duplicate_export_rejected(self):
        a = obj_of("define void @f() {\nentry:\n  ret void\n}", "a")
        b = obj_of("define void @f() {\nentry:\n  ret void\n}", "b")
        with pytest.raises(LinkError, match="duplicate exported symbol"):
            link([a, b])

    def test_internal_symbols_do_not_collide(self):
        """Each fragment's internalized symbols stay private (§3.2 step 4)."""
        a = obj_of(
            """
define internal i32 @helper() {
entry:
  ret i32 1
}

define i32 @main() {
entry:
  %r = call i32 @helper()
  ret i32 %r
}
""",
            "a",
        )
        b = obj_of(
            """
define internal i32 @helper() {
entry:
  ret i32 2
}

define i32 @other() {
entry:
  %r = call i32 @helper()
  ret i32 %r
}
""",
            "b",
        )
        exe = link([a, b])
        assert VM(exe).run("main").exit_code == 1
        assert VM(exe).run("other").exit_code == 2

    def test_internal_resolution_prefers_local(self):
        a = obj_of(
            """
define internal i32 @pick() {
entry:
  ret i32 10
}

define i32 @main() {
entry:
  %r = call i32 @pick()
  ret i32 %r
}
""",
            "a",
        )
        b = obj_of("define i32 @pick() {\nentry:\n  ret i32 99\n}", "b")
        exe = link([a, b])
        assert VM(exe).run("main").exit_code == 10


class TestAliases:
    def test_alias_entry_point(self):
        a = obj_of(
            """
define i32 @impl() {
entry:
  ret i32 5
}

@pub = alias @impl
""",
            "a",
        )
        exe = link([a])
        assert VM(exe).run("pub").exit_code == 5

    def test_internal_alias_not_exported(self):
        a = obj_of(
            """
define i32 @impl() {
entry:
  ret i32 5
}

@priv = internal alias @impl
""",
            "a",
        )
        exe = link([a])
        with pytest.raises(LinkError):
            exe.function_index("priv")


class TestImage:
    def test_data_alignment(self):
        a = obj_of(
            """
@a = global [3 x i8] c"ab\\00"
@b = global i64 1

define void @main() {
entry:
  %x = load i8, ptr @a
  %y = load i64, ptr @b
  ret void
}
""",
            "a",
        )
        exe = link([a])
        assert exe.symbol_addresses["b"] % 8 == 0

    def test_function_addresses_reversible(self):
        a = obj_of("define void @f() {\nentry:\n  ret void\n}", "a")
        exe = link([a])
        idx = exe.function_index("f")
        addr = exe.function_address(idx)
        assert addr >= FUNC_BASE
        assert exe.index_from_address(addr) == idx
        with pytest.raises(LinkError):
            exe.index_from_address(addr + 1)

    def test_link_ms_positive(self):
        a = obj_of("define void @f() {\nentry:\n  ret void\n}", "a")
        assert link([a]).link_ms > 0

    def test_const_ranges_recorded(self):
        a = obj_of(
            """
@ro = const [2 x i8] c"a\\00"
@rw = global i32 0

define void @main() {
entry:
  %x = load i8, ptr @ro
  %y = load i32, ptr @rw
  ret void
}
""",
            "a",
        )
        exe = link([a])
        ro_addr = exe.symbol_addresses["ro"]
        assert any(lo <= ro_addr < hi for lo, hi in exe.const_ranges)
        rw_addr = exe.symbol_addresses["rw"]
        assert not any(lo <= rw_addr < hi for lo, hi in exe.const_ranges)
