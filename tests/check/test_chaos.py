"""Chaos harness tests: seeded generation + the acceptance scenario.

The acceptance scenario is the ISSUE's headline run: a schedule that
kills a worker mid-batch, corrupts a persistent-cache blob, and expires
one job's deadline must still leave every non-shed client answered and
the final executable byte-equivalent to a fault-free scratch build.
"""

import pytest

from repro.check.chaos import (
    FAULT_CACHE_CORRUPT,
    FAULT_DEADLINE_EXPIRE,
    FAULT_KINDS,
    FAULT_WORKER_CRASH,
    ChaosOutcome,
    ChaosReport,
    ChaosRunner,
    ChaosSchedule,
    FaultEvent,
    generate_chaos_schedules,
)
from repro.check.schedules import (
    STEP_DISABLE,
    STEP_REMOVE,
    STEP_ENABLE,
    STEP_PRUNE,
    ProbeSchedule,
    ScheduleStep,
)
from repro.programs.registry import get_program
from repro.service.workers import MODE_PROCESS


class TestGeneration:
    def test_pure_function_of_arguments(self):
        a = generate_chaos_schedules(4, 9, min_faults=1, max_faults=3)
        b = generate_chaos_schedules(4, 9, min_faults=1, max_faults=3)
        assert a == b

    def test_seed_changes_schedules(self):
        a = generate_chaos_schedules(4, 9)
        b = generate_chaos_schedules(4, 10)
        assert a != b

    def test_fault_plans_respect_bounds(self):
        for schedule in generate_chaos_schedules(8, 3, min_faults=2, max_faults=3):
            assert 2 <= len(schedule.faults) <= 3
            steps = len(schedule.probe_schedule.steps)
            for fault in schedule.faults:
                assert 0 <= fault.step < steps
                assert fault.kind in FAULT_KINDS

    def test_prune_steps_excluded_by_default(self):
        for schedule in generate_chaos_schedules(8, 3):
            kinds = {step.kind for step in schedule.probe_schedule.steps}
            assert STEP_PRUNE not in kinds

    def test_fault_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, "meteor-strike")
        with pytest.raises(ValueError, match="step"):
            FaultEvent(-1, FAULT_WORKER_CRASH)

    def test_fault_count_validation(self):
        with pytest.raises(ValueError, match="min_faults"):
            generate_chaos_schedules(1, 0, min_faults=3, max_faults=1)


class TestReport:
    def _schedule(self):
        steps = (ScheduleStep(STEP_DISABLE, count=1, inputs=0),)
        return ChaosSchedule(
            7, 3, ProbeSchedule(7, 3, steps), (FaultEvent(0, FAULT_WORKER_CRASH),)
        )

    def test_failures_and_summary(self):
        report = ChaosReport("demo", 3)
        good = ChaosOutcome(self._schedule())
        good.injected = {FAULT_WORKER_CRASH: 1}
        good.worker_restarts = 1
        bad = ChaosOutcome(self._schedule())
        bad.mismatches.append("object bytes differ for frag x")
        report.outcomes = [good, bad]
        assert not report.ok
        assert report.faults_injected == 1
        assert report.failures == ["chaos #7: object bytes differ for frag x"]
        assert "1 FAILURES" in report.summary()
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["outcomes"][0]["worker_restarts"] == 1


class TestAcceptance:
    def test_crash_corrupt_and_deadline_schedule_stays_equivalent(self):
        """Worker crash + cache corruption + expired deadline in one run.

        Every non-shed client must get a reply, the crash must force at
        least one worker restart, the corrupted blob must be quarantined
        (a miss, never an exception), and the final probe state must be
        byte- and behaviour-equivalent to a fault-free scratch build.
        """
        # The crash fault arms before step 0, which must therefore be a
        # step that actually compiles: removes change the compiled-in
        # site set and force real worker batches, while pure toggles are
        # serviced by the tiered fast path without touching the pool.
        steps = (
            ScheduleStep(STEP_REMOVE, count=2, inputs=1),
            ScheduleStep(STEP_DISABLE, count=2, inputs=1),
            ScheduleStep(STEP_ENABLE, count=1, inputs=1),
        )
        schedule = ChaosSchedule(
            0,
            77,
            ProbeSchedule(0, 77, steps),
            (
                FaultEvent(0, FAULT_WORKER_CRASH),
                FaultEvent(1, FAULT_CACHE_CORRUPT),
                FaultEvent(2, FAULT_DEADLINE_EXPIRE),
            ),
        )
        runner = ChaosRunner(
            get_program("lcms"), workers=2, worker_mode=MODE_PROCESS, max_inputs=2
        )
        outcome = runner.run_schedule(schedule)
        assert outcome.error is None
        assert outcome.mismatches == []
        assert outcome.ok
        # Every fault actually fired ...
        assert outcome.injected == {
            FAULT_WORKER_CRASH: 1,
            FAULT_CACHE_CORRUPT: 1,
            FAULT_DEADLINE_EXPIRE: 1,
        }
        assert outcome.unfired_worker_faults == 0
        # ... and the service degraded without lying: all three probe
        # steps were answered, the expired job was shed (not compiled),
        # the crash forced a pool restart, and the corrupt blob was
        # quarantined instead of served or raised.
        assert outcome.replies == len(steps)
        assert outcome.shed == 1
        assert outcome.worker_restarts >= 1
        assert outcome.quarantined >= 1
