"""Cluster chaos: schedule generation determinism + a seeded sweep."""

import json

import pytest

from repro.check.chaos import (
    CLUSTER_FAULT_KINDS,
    ClusterFaultEvent,
    generate_cluster_chaos_schedules,
    run_cluster_chaos,
)
from repro.programs.registry import get_program


class TestGeneration:
    def test_generation_is_deterministic(self):
        a = generate_cluster_chaos_schedules(3, 11, tenants=6)
        b = generate_cluster_chaos_schedules(3, 11, tenants=6)
        assert [(s.schedule_id, s.faults, s.rounds) for s in a] == [
            (s.schedule_id, s.faults, s.rounds) for s in b
        ]

    def test_different_seeds_differ(self):
        a = generate_cluster_chaos_schedules(4, 1, tenants=6)
        b = generate_cluster_chaos_schedules(4, 2, tenants=6)
        assert [s.faults for s in a] != [s.faults for s in b]

    def test_tenant_count_and_fault_bounds(self):
        schedules = generate_cluster_chaos_schedules(
            4, 5, tenants=5, min_faults=1, max_faults=2
        )
        for schedule in schedules:
            assert len(schedule.tenant_schedules) == 5
            assert 1 <= len(schedule.faults) <= 2
            for fault in schedule.faults:
                assert fault.kind in CLUSTER_FAULT_KINDS
                assert 0 <= fault.round < schedule.rounds

    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            ClusterFaultEvent(0, "meteor-strike")
        with pytest.raises(ValueError):
            ClusterFaultEvent(-1, "shard-kill")

    def test_describe_mentions_faults(self):
        schedule = generate_cluster_chaos_schedules(1, 3, tenants=4)[0]
        text = schedule.describe()
        assert "tenants" in text and "rounds" in text


class TestSweep:
    def test_shard_kill_sweep_recovers_fingerprint_identical(self):
        # Small tier-1 version of the CI acceptance sweep: one seeded
        # schedule, 3 shards, 4 tenants over one program.  Every tenant
        # campaign must complete and every surviving engine must rebuild
        # fingerprint-identical to an uninterrupted run.
        report = run_cluster_chaos(
            [get_program("json")],
            schedules=1, seed=7, shards=3, tenants=4,
            max_inputs=2, reply_timeout_s=3.0,
        )
        assert report.ok, report.failures
        outcome = report.outcomes[0]
        assert outcome.error is None
        assert sum(outcome.injected.values()) >= 1
        assert len(outcome.tenants) == 4
        for tenant in outcome.tenants:
            assert tenant.mismatches == []
        # The report is JSON-serializable end to end (CI artifact).
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["shards"] == 3
        assert payload["outcomes"][0]["tenants"][0]["tenant_id"] == "tenant-0"
        assert "cluster[" in report.summary()
