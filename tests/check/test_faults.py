"""Cache fault injection: every fault degrades to a miss, never wrong code."""

import pytest

from repro.check.faults import run_fault_checks
from repro.core.engine import compile_fragment, object_fingerprint
from repro.frontend.codegen import compile_source
from repro.service.cache import PersistentCodeCache

SRC = """
int run_input(const char *data, long size) { return (int)size; }
int main(void) { return 0; }
"""


def small_object():
    return compile_fragment(compile_source(SRC, "small"))


class TestFaultSuite:
    def test_all_faults_degrade_to_miss(self):
        assert run_fault_checks() == []

    def test_unknown_fault_kind_rejected(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.inject_fault("set-on-fire")

    def test_obj_fault_needs_key(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.inject_fault("truncate-obj")


class TestIndividualFaults:
    @pytest.mark.parametrize("kind", ["truncate-obj", "corrupt-obj", "torn-obj"])
    def test_damaged_entry_misses_and_counts(self, tmp_path, kind):
        cache = PersistentCodeCache(str(tmp_path))
        obj = small_object()
        cache.put("k" * 64, obj)
        cache.inject_fault(kind, key="k" * 64)
        assert cache.get("k" * 64) is None
        assert cache.integrity_failures == 1
        # Recovery: a re-put round-trips byte-identically.
        cache.put("k" * 64, obj)
        assert object_fingerprint(cache.get("k" * 64)) == object_fingerprint(obj)

    def test_stale_index_entry_dropped_on_reopen(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path), flush_interval=1)
        cache.put("k" * 64, small_object())
        cache.inject_fault("stale-index")
        reopened = PersistentCodeCache(str(tmp_path))
        assert len(reopened) == 1            # stale ghost not resurrected
        assert reopened.get("0" * 64) is None
        assert reopened.get("k" * 64) is not None

    def test_corrupt_index_rebuilds_from_disk_scan(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        obj = small_object()
        cache.put("k" * 64, obj)
        cache.inject_fault("corrupt-index")
        reopened = PersistentCodeCache(str(tmp_path))
        # Self-healing: the intact .obj blob is recovered by the disk
        # scan instead of being orphaned behind the unreadable index.
        got = reopened.get("k" * 64)
        assert got is not None  # recovered, not an exception or a loss
        assert object_fingerprint(got) == object_fingerprint(obj)
        assert reopened.index_rebuilds == 1
