"""Engine/scheduler invariant checks."""

from repro.check.invariants import (
    RecordingCache,
    check_backpropagation,
    check_content_key_determinism,
    run_invariant_checks,
)
from repro.core.engine import Odin
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program


class TestInvariants:
    def test_all_invariants_hold_on_real_target(self):
        assert run_invariant_checks(get_program("lcms")) == []

    def test_backpropagation_reapplies_unchanged_probes(self):
        assert check_backpropagation(get_program("woff2")) == []

    def test_content_keys_deterministic(self):
        assert check_content_key_determinism(get_program("woff2")) == []

    def test_stage3_schedules_whole_fragment_probe_set(self):
        """Direct form of the invariant: dirtying ONE probe schedules
        every active probe of the affected fragments."""
        program = get_program("lcms")
        engine = Odin(program.compile(), preserve=("main", "run_input"))
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        tool.build()
        first = tool.probes[min(tool.probes)]
        engine.manager.disable(first)
        scheduler = engine.manager.schedule()
        expected = {
            p.id
            for p in engine.manager
            if p.enabled and p.target_symbol() in scheduler.changed_symbols
        }
        assert {p.id for p in scheduler.active_probes} == expected
        assert first.id not in expected  # the disabled one is not re-applied


class TestRecordingCache:
    def test_detects_key_collision_with_different_bytes(self):
        from repro.core.engine import compile_fragment
        from repro.frontend.codegen import compile_source

        obj_a = compile_fragment(
            compile_source("int main(void) { return 1; }", "a")
        )
        obj_b = compile_fragment(
            compile_source("int main(void) { return 2; }", "b")
        )
        cache = RecordingCache()
        cache.put("samekey", obj_a)
        cache.put("samekey", obj_b)
        assert cache.conflicts
        assert cache.get("samekey") is None  # always a miss by design
