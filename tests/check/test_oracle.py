"""The differential oracle: equivalence holds, and divergence is caught."""

from repro.check import DifferentialOracle, generate_schedules
from repro.core.engine import Odin
from repro.instrument.coverage import OdinCov
from repro.linker.linker import link
from repro.programs.registry import get_program

PRESERVED = ("main", "run_input")


def make_built_engine(program, **kwargs):
    engine = Odin(program.compile(), preserve=PRESERVED, **kwargs)
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()
    return engine, tool


class TestOracle:
    def test_incremental_equivalent_to_scratch(self):
        program = get_program("libjpeg")
        oracle = DifferentialOracle(program, max_inputs=2)
        report = oracle.run(generate_schedules(2, 11, max_steps=4))
        assert report.ok, report.mismatches
        assert report.comparisons >= 1
        assert "ok" in report.summary()

    def test_service_path_equivalent(self):
        """Batching, content cache and link cache preserve equivalence."""
        program = get_program("lcms")
        oracle = DifferentialOracle(
            program, use_service=True, workers=2, worker_mode="thread",
            max_inputs=2,
        )
        report = oracle.run(generate_schedules(1, 13, max_steps=4))
        assert report.ok, report.mismatches

    def test_oracle_detects_tampered_object(self):
        """Mutation sanity: a one-cycle change to one cached object must
        surface in all three equivalence layers."""
        program = get_program("lcms")
        oracle = DifferentialOracle(program, max_inputs=2)
        engine, _tool = make_built_engine(program)
        victim = next(
            fid for fid in sorted(engine.cache) if engine.cache[fid].functions
        )
        fn = next(iter(engine.cache[victim].functions.values()))
        fn.insts[0].cost += 1
        engine.executable = link(
            [engine.cache[f.id] for f in engine.fragdef.fragments]
        )
        mismatches = oracle.compare_to_reference(engine)
        assert any("object bytes differ" in m for m in mismatches)
        assert any("linked image differs" in m for m in mismatches)
        assert any("cycles" in m for m in mismatches)

    def test_no_op_steps_skip_reference_builds(self):
        """Enable steps with nothing disabled are no-ops: not compared."""
        program = get_program("lcms")
        oracle = DifferentialOracle(program, max_inputs=1)
        from repro.check.schedules import ProbeSchedule, ScheduleStep

        schedule = ProbeSchedule(0, 99, (ScheduleStep("enable", 2, 0),))
        outcome = oracle.check_schedule(schedule)
        assert outcome.ok
        assert outcome.comparisons == 0


class TestEquivalenceHooks:
    def test_record_fingerprints_on_rebuild_report(self):
        program = get_program("lcms")
        engine, _tool = make_built_engine(program, record_fingerprints=True)
        report = engine.history[-1]
        assert set(report.object_fingerprints) == set(report.fragment_ids)
        assert report.object_fingerprints == engine.object_fingerprints()

    def test_executable_fingerprint_stable_and_sensitive(self):
        program = get_program("lcms")
        engine_a, tool_a = make_built_engine(program)
        engine_b, tool_b = make_built_engine(program)
        assert engine_a.executable_fingerprint() == engine_b.executable_fingerprint()
        # Disabling a probe changes the generated code, hence the digest.
        engine_b.manager.disable(tool_b.probes[min(tool_b.probes)])
        engine_b.rebuild()
        assert engine_a.executable_fingerprint() != engine_b.executable_fingerprint()

    def test_unbuilt_engine_has_no_fingerprint(self):
        program = get_program("lcms")
        engine = Odin(program.compile(), preserve=PRESERVED)
        assert engine.executable_fingerprint() is None
