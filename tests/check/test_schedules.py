"""Schedule generation: determinism, bounds, and target picking."""

import pytest

from repro.check.schedules import (
    STEP_KINDS,
    STEP_PRUNE,
    ProbeSchedule,
    ScheduleStep,
    generate_schedules,
    pick_targets,
)
from repro.utils.rng import DeterministicRNG


class TestGeneration:
    def test_same_seed_same_schedules(self):
        assert generate_schedules(10, 42) == generate_schedules(10, 42)

    def test_different_seed_different_schedules(self):
        assert generate_schedules(10, 1) != generate_schedules(10, 2)

    def test_bounds_respected(self):
        schedules = generate_schedules(
            20, 7, min_steps=2, max_steps=4,
            max_probes_per_step=3, max_inputs_per_step=2,
        )
        assert len(schedules) == 20
        for schedule in schedules:
            assert 2 <= len(schedule.steps) <= 4
            for step in schedule.steps:
                assert step.kind in STEP_KINDS
                assert 1 <= step.count <= 3
                assert 0 <= step.inputs <= 2

    def test_include_prune_false(self):
        schedules = generate_schedules(20, 3, include_prune=False)
        assert all(
            step.kind != STEP_PRUNE
            for schedule in schedules
            for step in schedule.steps
        )

    def test_replay_seeds_are_distinct(self):
        schedules = generate_schedules(10, 5)
        assert len({s.seed for s in schedules}) == 10

    def test_describe(self):
        schedule = ProbeSchedule(0, 1, (ScheduleStep("disable", 2, 1),))
        assert "disable 2" in schedule.describe()

    def test_invalid_step_kind_rejected(self):
        with pytest.raises(ValueError):
            ScheduleStep("explode", 1, 1)


class TestPickTargets:
    def test_deterministic_and_distinct(self):
        eligible = list(range(20))
        a = pick_targets(DeterministicRNG(9), eligible, 5)
        b = pick_targets(DeterministicRNG(9), eligible, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_bounded_by_eligible(self):
        assert len(pick_targets(DeterministicRNG(1), [1, 2], 5)) == 2
        assert pick_targets(DeterministicRNG(1), [], 3) == []
