"""The tier sweep: all three recompile tiers produce identical artifacts."""

from repro.check import TierSweep, generate_schedules
from repro.check.schedules import (
    STEP_DISABLE,
    STEP_ENABLE,
    STEP_REMOVE,
    ProbeSchedule,
    ScheduleStep,
)
from repro.programs.registry import get_program


class TestTierSweep:
    def test_generated_schedules_have_zero_divergences(self):
        sweep = TierSweep(get_program("json"), max_inputs=2)
        report = sweep.run(generate_schedules(2, 21, max_steps=4))
        assert report.ok, report.mismatches
        assert report.comparisons >= 1
        assert "ok" in report.summary()

    def test_sweep_exercises_every_tier(self):
        """A toggle-then-remove schedule must hit patch, memo and full."""
        schedule = ProbeSchedule(
            schedule_id=0,
            seed=7,
            steps=(
                ScheduleStep(STEP_DISABLE, count=2, inputs=1),
                ScheduleStep(STEP_ENABLE, count=1, inputs=1),
                ScheduleStep(STEP_REMOVE, count=2, inputs=1),
            ),
        )
        sweep = TierSweep(get_program("json"), max_inputs=2)
        report = sweep.run([schedule])
        assert report.ok, report.mismatches
        hit = report.tiers_hit
        # The patch session patches the toggles; the memo session's
        # remove replays memoized IR for untouched-but-recompiled
        # fragments; everything else is the full path.
        assert hit.get("patch", 0) >= 1
        assert hit.get("memo", 0) >= 1
        assert hit.get("full", 0) >= 1
