"""CompileCluster: routing, shared cache tier, quotas, stats."""

import pytest

from repro.check.oracle import PRESERVED
from repro.cluster import (
    ClusterError,
    CompileCluster,
    TenantQuotaError,
    TenantSpec,
    TIER_BULK,
)
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program

PROGRAM = "json"


def instrument(engine):
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    return tool


def make_cluster(**kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("reply_timeout_s", 5.0)
    return CompileCluster(**kwargs)


def register(cluster, tenant_id, *, weight=1.0, tier="interactive",
             program=PROGRAM, build=True):
    cluster.register_tenant(TenantSpec(tenant_id, weight=weight, tier=tier))
    return cluster.register_target(
        tenant_id, program, get_program(program).compile(),
        instrument=instrument, preserve=PRESERVED, build=build,
    )


class TestRouting:
    def test_same_program_lands_on_same_shard_across_tenants(self):
        cluster = make_cluster()
        try:
            register(cluster, "alice")
            register(cluster, "bob", tier=TIER_BULK)
            assert cluster.shard_of("alice", PROGRAM) == cluster.shard_of(
                "bob", PROGRAM
            )
        finally:
            cluster.close()

    def test_routing_is_deterministic_across_clusters(self):
        a, b = make_cluster(), make_cluster()
        try:
            register(a, "alice", build=False)
            register(b, "alice", build=False)
            assert a.shard_of("alice", PROGRAM) == b.shard_of("alice", PROGRAM)
        finally:
            a.close()
            b.close()

    def test_unknown_tenant_and_duplicate_target_rejected(self):
        cluster = make_cluster()
        try:
            with pytest.raises(Exception):
                cluster.register_target(
                    "ghost", PROGRAM, get_program(PROGRAM).compile()
                )
            register(cluster, "alice", build=False)
            with pytest.raises(ClusterError):
                cluster.register_target(
                    "alice", PROGRAM, get_program(PROGRAM).compile()
                )
        finally:
            cluster.close()


class TestSharedCacheTier:
    def test_second_tenant_build_hits_cross_tenant(self):
        cluster = make_cluster()
        try:
            register(cluster, "alice")
            assert cluster.metrics.counter("cross_tenant_cache_hits") == 0
            register(cluster, "bob", tier=TIER_BULK)
            # bob's initial build was served from objects alice compiled.
            assert cluster.metrics.counter("cross_tenant_cache_hits") > 0
        finally:
            cluster.close()

    def test_one_cache_instance_mounted_by_every_shard(self):
        cluster = make_cluster()
        try:
            for shard in cluster.shards.values():
                assert shard.service.cache is cluster.cache
                assert shard.service.pass_memo is cluster.pass_memo
        finally:
            cluster.close()


class TestRequestPath:
    def test_rebuild_round_trip(self):
        cluster = make_cluster()
        try:
            engine = register(cluster, "alice")
            cluster.start()
            client = cluster.client("alice", PROGRAM, client_id="c0")
            pids = sorted(p.id for p in engine.manager)[:4]
            reply = client.rebuild(client.disable(*pids))
            assert reply.ops_applied == 4
            state = {p.id: p.enabled for p in engine.manager}
            assert all(state[pid] is False for pid in pids)
        finally:
            cluster.close()

    def test_quota_shed_raises_before_touching_a_shard(self):
        cluster = make_cluster(quota_window=8)
        try:
            engine = register(cluster, "alice", weight=3.0)
            register(cluster, "bob", tier=TIER_BULK)
            cluster.start()
            alice = cluster.client("alice", PROGRAM)
            bob = cluster.client("bob", PROGRAM)
            pid = sorted(p.id for p in engine.manager)[0]
            shed = 0
            for _ in range(12):
                for client in (alice, bob):
                    try:
                        client.rebuild(client.mark_changed(pid))
                    except TenantQuotaError as error:
                        assert error.retry_after_s is not None
                        shed += 1
            assert shed > 0
            stats = cluster.tenants.stats()["tenants"]
            assert stats["bob"]["shed_quota"] > 0
            assert stats["alice"]["shed_quota"] == 0
        finally:
            cluster.close()


class TestStats:
    def test_stats_shape(self):
        cluster = make_cluster()
        try:
            register(cluster, "alice")
            stats = cluster.stats()
            assert stats["cluster"]["shards"] == 3
            assert stats["cluster"]["live_shards"] == 3
            assert stats["cluster"]["degraded"] is False
            assert f"alice:{PROGRAM}" in stats["cluster"]["targets"]
            assert set(stats["shards"]) == {"shard-0", "shard-1", "shard-2"}
            for shard_stats in stats["shards"].values():
                assert shard_stats["state"] == "up"
                assert "breaker" in shard_stats
            assert "alice" in stats["tenants"]["tenants"]
            assert "shared_cache" in stats
            assert "pass_memo" in stats
        finally:
            cluster.close()
