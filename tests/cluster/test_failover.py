"""Shard failover: kill/hang/partition semantics + state recovery."""

import pytest

from repro.check.oracle import PRESERVED, DifferentialOracle
from repro.cluster import (
    CompileCluster,
    RouterPartitionError,
    ShardDownError,
    TenantSpec,
)
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.service.jobs import CompileRequest

PROGRAM = "json"


def instrument(engine):
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    return tool


def make_cluster(**kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("reply_timeout_s", 2.0)
    kwargs.setdefault("heartbeat_miss_threshold", 2)
    cluster = CompileCluster(**kwargs)
    cluster.register_tenant(TenantSpec("alice", weight=2.0))
    cluster.register_target(
        "alice", PROGRAM, get_program(PROGRAM).compile(),
        instrument=instrument, preserve=PRESERVED,
    )
    return cluster


class TestShardFaultSemantics:
    def test_killed_shard_resets_submits_and_queued_jobs(self):
        cluster = make_cluster()
        try:
            home = cluster.shards[cluster.shard_of("alice", PROGRAM)]
            job = home.submit(CompileRequest(target=f"alice:{PROGRAM}"))
            errored = home.kill()
            assert errored == 1
            with pytest.raises(ShardDownError):
                job.result(1.0)
            with pytest.raises(ShardDownError):
                home.submit(CompileRequest(target=f"alice:{PROGRAM}"))
        finally:
            cluster.close()

    def test_partitioned_shard_is_unreachable_until_healed(self):
        cluster = make_cluster()
        try:
            home = cluster.shards[cluster.shard_of("alice", PROGRAM)]
            home.partition()
            with pytest.raises(RouterPartitionError):
                home.submit(CompileRequest(target=f"alice:{PROGRAM}"))
            assert home.heartbeat() is False
            home.heal_partition()
            assert home.heartbeat() is True
            home.submit(CompileRequest(target=f"alice:{PROGRAM}"))
        finally:
            cluster.close()


class TestFailover:
    def test_kill_migrates_and_preserves_probe_state(self):
        cluster = make_cluster()
        try:
            cluster.start()
            engine = cluster.engine("alice", PROGRAM)
            client = cluster.client("alice", PROGRAM, client_id="c0")
            pids = sorted(p.id for p in engine.manager)
            client.rebuild(client.disable(*pids[:3]))
            client.rebuild(client.remove(pids[3]))

            home = cluster.shard_of("alice", PROGRAM)
            cluster.shards[home].kill()
            # The next request fails over and resubmits transparently.
            reply = client.rebuild(client.enable(pids[0]))
            assert reply is not None
            assert cluster.shard_of("alice", PROGRAM) != home
            assert cluster.metrics.counter("failovers") == 1
            assert cluster.metrics.counter("targets_migrated") == 1

            # Acked ledger replayed on the new shard: disabled probes
            # stay disabled, the removed probe stays gone, the re-enabled
            # one is enabled.
            engine = cluster.engine("alice", PROGRAM)
            state = {p.id: p.enabled for p in engine.manager}
            assert pids[3] not in state
            assert state[pids[0]] is True
            assert state[pids[1]] is False and state[pids[2]] is False
        finally:
            cluster.close()

    def test_recovered_state_is_fingerprint_identical(self):
        cluster = make_cluster()
        try:
            cluster.start()
            engine = cluster.engine("alice", PROGRAM)
            client = cluster.client("alice", PROGRAM)
            pids = sorted(p.id for p in engine.manager)
            client.rebuild(client.disable(*pids[:2]))
            cluster.shards[cluster.shard_of("alice", PROGRAM)].kill()
            client.rebuild(client.disable(pids[2]))
            # The recovery oracle: post-failover state rebuilds identical
            # (objects, linked image, behaviour) to an uninterrupted run.
            oracle = DifferentialOracle(get_program(PROGRAM), max_inputs=2)
            mismatches = oracle.compare_to_reference(
                cluster.engine("alice", PROGRAM)
            )
            assert mismatches == []
        finally:
            cluster.close()

    def test_hang_recovers_via_result_deadline(self):
        cluster = make_cluster(reply_timeout_s=1.0)
        try:
            cluster.start()
            engine = cluster.engine("alice", PROGRAM)
            client = cluster.client("alice", PROGRAM)
            pid = sorted(p.id for p in engine.manager)[0]
            home = cluster.shard_of("alice", PROGRAM)
            cluster.shards[home].hang()
            # Submit is accepted by the hung shard; the bounded result()
            # wait expires, the router condemns the shard, and the same
            # token is resubmitted on the takeover shard.
            reply = client.rebuild(client.disable(pid))
            assert reply is not None
            assert cluster.shard_of("alice", PROGRAM) != home
            assert cluster.metrics.counter("resubmits") >= 1
            state = {p.id: p.enabled for p in cluster.engine("alice", PROGRAM).manager}
            assert state[pid] is False
        finally:
            cluster.close()

    def test_transient_partition_heals_without_failover(self):
        cluster = make_cluster()
        try:
            cluster.start()
            home = cluster.shard_of("alice", PROGRAM)
            cluster.shards[home].partition()
            cluster.check_health_once()  # one miss: below threshold
            cluster.shards[home].heal_partition()
            cluster.check_health_once()
            assert cluster.shard_of("alice", PROGRAM) == home
            assert cluster.metrics.counter("failovers") == 0
            client = cluster.client("alice", PROGRAM)
            assert client.rebuild(()) is not None
        finally:
            cluster.close()

    def test_sustained_partition_escalates_to_failover(self):
        cluster = make_cluster()
        try:
            cluster.start()
            home = cluster.shard_of("alice", PROGRAM)
            cluster.shards[home].partition()
            cluster.check_health_once()
            assert cluster.metrics.counter("failovers") == 0
            cluster.check_health_once()  # second consecutive miss condemns
            assert cluster.metrics.counter("failovers") == 1
            assert cluster.shard_of("alice", PROGRAM) != home
            assert home not in cluster.ring
        finally:
            cluster.close()

    def test_degraded_mode_follows_capacity_loss(self):
        cluster = make_cluster()
        try:
            cluster.start()
            assert cluster.degraded is False
            victim = next(
                sid for sid in cluster.ring.nodes
            )
            cluster.shards[victim].kill()
            cluster.check_health_once()
            assert cluster.degraded is True
            assert cluster.tenants.degraded is True
        finally:
            cluster.close()
