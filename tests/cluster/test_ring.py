"""Consistent-hash ring: determinism, balance, minimal disruption."""

import pytest

from repro.cluster.ring import ConsistentHashRing, RingError, content_route_key

KEYS = [f"key-{i}" for i in range(200)]


def make_ring(n=3, **kwargs):
    return ConsistentHashRing([f"shard-{i}" for i in range(n)], **kwargs)


class TestRouting:
    def test_route_is_deterministic(self):
        a, b = make_ring(), make_ring()
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_route_independent_of_add_order(self):
        a = ConsistentHashRing(["shard-0", "shard-1", "shard-2"])
        b = ConsistentHashRing(["shard-2", "shard-0", "shard-1"])
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_every_shard_gets_keys(self):
        spread = make_ring().spread(KEYS)
        assert set(spread) == {"shard-0", "shard-1", "shard-2"}
        assert all(count > 0 for count in spread.values())

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(RingError):
            ConsistentHashRing().route("anything")

    def test_duplicate_add_rejected(self):
        ring = make_ring()
        with pytest.raises(RingError):
            ring.add("shard-0")

    def test_remove_unknown_rejected(self):
        with pytest.raises(RingError):
            make_ring().remove("shard-9")


class TestMinimalDisruption:
    def test_remove_remaps_only_dead_shards_keys(self):
        ring = make_ring()
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("shard-1")
        for key in KEYS:
            after = ring.route(key)
            if before[key] != "shard-1":
                # Survivors' keys keep their home: only the dead shard's
                # hash range reroutes.
                assert after == before[key]
            else:
                assert after != "shard-1"

    def test_add_back_restores_original_routing(self):
        ring = make_ring()
        before = {k: ring.route(k) for k in KEYS}
        ring.remove("shard-2")
        ring.add("shard-2")
        assert {k: ring.route(k) for k in KEYS} == before


class TestContentRouteKey:
    def test_tenant_agnostic(self):
        # Same IR text -> same key; no tenant identity involved.
        assert content_route_key("module text") == content_route_key("module text")
        assert content_route_key("a") != content_route_key("b")

    def test_stats_shape(self):
        stats = make_ring(2, virtual_nodes=8).stats()
        assert stats["nodes"] == ["shard-0", "shard-1"]
        assert stats["virtual_nodes"] == 8
        assert stats["points"] == 16
