"""Tenant fairness: weighted window quotas, degraded mode, accounting."""

import pytest

from repro.cluster.tenants import (
    TIER_BULK,
    TIER_INTERACTIVE,
    TenantAccountant,
    TenantQuotaError,
    TenantSpec,
)
from repro.errors import ReproError


def make_accountant(window=16, **kwargs):
    acct = TenantAccountant(window=window, **kwargs)
    acct.register(TenantSpec("heavy", weight=3.0))
    acct.register(TenantSpec("light", weight=1.0, tier=TIER_BULK))
    return acct


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", weight=0)
        with pytest.raises(ValueError):
            TenantSpec("t", tier="batch")

    def test_duplicate_registration_rejected(self):
        acct = make_accountant()
        with pytest.raises(ReproError):
            acct.register(TenantSpec("heavy"))

    def test_unknown_tenant_rejected(self):
        with pytest.raises(ReproError):
            make_accountant().admit("stranger")


class TestAdmission:
    def test_lone_tenant_is_never_throttled(self):
        # Work-conserving: shares are computed over tenants active in
        # the window, so an idle cluster never sheds its only client.
        acct = make_accountant(window=8)
        for _ in range(50):
            acct.admit("light")
        assert acct.stats()["tenants"]["light"]["shed_quota"] == 0

    def test_contending_tenants_shed_by_weight(self):
        acct = make_accountant(window=16)
        shed = {"heavy": 0, "light": 0}
        for _ in range(40):  # interleaved equal offered load
            for tenant in ("heavy", "light"):
                try:
                    acct.admit(tenant)
                except TenantQuotaError:
                    shed[tenant] += 1
        # weight 3 vs 1: the light tenant sheds, the heavy one does not.
        assert shed["light"] > 0
        assert shed["heavy"] == 0

    def test_quota_error_carries_retry_hint(self):
        acct = make_accountant(window=4)
        hint = None
        for _ in range(20):
            for tenant in ("heavy", "light"):
                try:
                    acct.admit(tenant, retry_after_s=1.25)
                except TenantQuotaError as error:
                    hint = error.retry_after_s
        assert hint == 1.25

    def test_default_retry_hint(self):
        acct = make_accountant(window=4)
        hints = []
        for _ in range(20):
            for tenant in ("heavy", "light"):
                try:
                    acct.admit(tenant)
                except TenantQuotaError as error:
                    hints.append(error.retry_after_s)
        assert hints and all(
            h == TenantAccountant.DEFAULT_RETRY_AFTER_S for h in hints
        )


class TestDegradedMode:
    def test_degraded_throttles_bulk_before_interactive(self):
        acct = make_accountant(window=16, degraded_bulk_factor=0.25)
        # Warm the window with both tenants active.
        for _ in range(8):
            for tenant in ("heavy", "light"):
                try:
                    acct.admit(tenant)
                except TenantQuotaError:
                    pass
        healthy_bulk = acct.allowance("light")
        healthy_interactive = acct.allowance("heavy")
        acct.set_degraded(True)
        assert acct.allowance("light") < healthy_bulk
        # Interactive tenants are untouched by degraded mode.
        assert acct.allowance("heavy") == healthy_interactive

    def test_allowance_never_zero(self):
        acct = make_accountant(window=4, degraded_bulk_factor=0.01)
        acct.set_degraded(True)
        assert acct.allowance("light") >= 1


class TestAccounting:
    def test_counters_and_stats_shape(self):
        acct = make_accountant()
        acct.admit("heavy")
        acct.note_reply("heavy")
        acct.note_resubmit("heavy")
        acct.note_deadline_expired("light")
        stats = acct.stats()
        assert stats["window"] == 16
        assert stats["degraded"] is False
        heavy = stats["tenants"]["heavy"]
        assert heavy["admitted"] == 1
        assert heavy["replies"] == 1
        assert heavy["resubmits"] == 1
        assert heavy["tier"] == TIER_INTERACTIVE
        assert stats["tenants"]["light"]["shed_deadline"] == 1
        assert stats["tenants"]["light"]["tier"] == TIER_BULK
