"""Shared fixtures and helpers for the test suite.

Compiling the target programs is the expensive part of testing, so
session-scoped caches hand out *pristine clones*: tests receive a fresh
deep copy of each compiled module and can mutate freely.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.programs.registry import TargetProgram, all_programs, get_program
from repro.toolchain import build_module
from repro.vm.interpreter import VM

_MODULE_CACHE: Dict[str, Module] = {}
_BUILD_CACHE: Dict[Tuple[str, int], object] = {}


def fresh_module(program_name: str) -> Module:
    """A fresh unoptimized IR module for a benchmark program (cached parse)."""
    if program_name not in _MODULE_CACHE:
        _MODULE_CACHE[program_name] = get_program(program_name).compile()
    return clone_module(_MODULE_CACHE[program_name]).module


def cached_build(program_name: str, opt_level: int = 2):
    """A (shared, read-only) classic build of a benchmark program."""
    key = (program_name, opt_level)
    if key not in _BUILD_CACHE:
        _BUILD_CACHE[key] = build_module(fresh_module(program_name), opt_level)
    return _BUILD_CACHE[key]


def run_entry(executable, entry: str, data: bytes, **vm_kwargs):
    """Run ``entry(data, len)`` in a fresh VM; returns the ExecutionResult."""
    vm = VM(executable, **vm_kwargs)
    addr = vm.alloc(max(len(data), 1) + 1)
    vm.write_bytes(addr, data)
    return vm.run(entry, (addr, len(data)), reset=False)


@pytest.fixture(scope="session")
def program_names() -> List[str]:
    return [p.name for p in all_programs()]


@pytest.fixture
def json_program() -> TargetProgram:
    return get_program("json")


@pytest.fixture
def json_module() -> Module:
    return fresh_module("json")


@pytest.fixture
def harfbuzz_module() -> Module:
    return fresh_module("harfbuzz")
