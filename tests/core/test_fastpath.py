"""The tiered recompile fast path: patching, no-op rebuilds, cached walls.

Three contracts from the tiered-recompilation work:

* **byte identity** — a patch-tier rebuild (toggling probe sites in the
  cached master object) produces exactly the objects, image and
  behaviour a from-scratch build of the same probe state produces;
* **no-op rebuilds** — a probe-state diff that cancelled out costs
  nothing: zero-cost report, empty span tree, no optimize/isel spans;
* **tiered cost accounting** — cache and patch hits contribute their
  tier's cost (zero for cache, patch cost for patches) to
  ``compile_wall_ms``, so a fully-cached rebuild reports ~0 compile wall.
"""

import pytest

from repro.backend.patching import probe_site_ids, toggle_object
from repro.core.engine import (
    TIER_CACHE,
    TIER_FULL,
    TIER_NOOP,
    TIER_PATCH,
    Odin,
)
from repro.core.manager import REC_CANCELLED, REC_REMOVED, REC_TOGGLED
from repro.frontend.codegen import compile_source
from repro.instrument.coverage import OdinCov
from repro.service.cache import InMemoryCodeCache
from repro.vm.interpreter import VM

SOURCE = r"""
static int acc;

int helper_a(int x) {
    int i;
    for (i = 0; i < x; i = i + 1) acc = acc + i * 3;
    return acc;
}

int helper_b(int x) {
    if (x > 5) return helper_a(x - 2);
    return acc - x;
}

int run_input(const char *data, long size) {
    int i;
    int r;
    r = 0;
    for (i = 0; i < size; i = i + 1) {
        r = r + helper_b((int)data[i] & 255);
    }
    return r;
}

int main(void) { return run_input("seed", 4); }
"""


def build_engine(**kwargs):
    engine = Odin(
        compile_source(SOURCE, "fastpath"), preserve=("main", "run_input"),
        **kwargs,
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()
    return engine, tool


def probes_by_id(engine):
    return {p.id: p for p in engine.manager}


def run_main(engine) -> int:
    vm = VM(engine.executable)
    return vm.run("main", ()).exit_code


class TestPatchByteIdentity:
    def test_patched_objects_match_scratch_build(self):
        engine, _ = build_engine()
        victims = sorted(probes_by_id(engine))[:3]
        for pid in victims:
            engine.manager.disable(probes_by_id(engine)[pid])
        report = engine.rebuild_if_needed()
        assert report.tier == TIER_PATCH

        # From scratch: fresh engine, same probes disabled *before* the
        # first build, so it never sees a patch path.
        scratch, _tool = (None, None)
        scratch_engine = Odin(
            compile_source(SOURCE, "fastpath"), preserve=("main", "run_input")
        )
        tool = OdinCov(scratch_engine)
        tool.add_all_block_probes()
        for pid in victims:
            scratch_engine.manager.disable(probes_by_id(scratch_engine)[pid])
        tool.build()

        assert (
            engine.object_fingerprints()
            == scratch_engine.object_fingerprints()
        )
        assert (
            engine.executable_fingerprint()
            == scratch_engine.executable_fingerprint()
        )
        assert run_main(engine) == run_main(scratch_engine)

    def test_toggle_back_restores_original_bytes(self):
        engine, _ = build_engine()
        baseline_objs = engine.object_fingerprints()
        baseline_exe = engine.executable_fingerprint()
        victim = sorted(probes_by_id(engine))[0]

        engine.manager.disable(probes_by_id(engine)[victim])
        off = engine.rebuild_if_needed()
        assert off.tier == TIER_PATCH
        assert engine.object_fingerprints() != baseline_objs

        engine.manager.enable(probes_by_id(engine)[victim])
        on = engine.rebuild_if_needed()
        assert on.tier == TIER_PATCH
        assert engine.object_fingerprints() == baseline_objs
        assert engine.executable_fingerprint() == baseline_exe

    def test_toggle_object_unit_roundtrip(self):
        """toggle_object deletes exactly the asked-for sites, shares the rest."""
        engine, _ = build_engine()
        # The engine keeps the site-complete masters privately; pick a
        # fragment that actually carries patchable sites.
        fid = next(f for f in sorted(engine._site_sets) if engine._site_sets[f])
        master = engine._masters[fid]
        sites = engine._site_sets[fid]
        victim = sorted(sites)[0]
        toggled = toggle_object(master, frozenset({victim}))
        assert probe_site_ids(toggled) == sites - {victim}
        # Toggling nothing is the identity (same object, not a copy).
        assert toggle_object(master, frozenset()) is master


class TestNoopRebuild:
    def test_cancelled_diff_is_a_real_noop(self):
        engine, _ = build_engine()
        victim = sorted(probes_by_id(engine))[0]
        engine.manager.disable(probes_by_id(engine)[victim])
        engine.manager.enable(probes_by_id(engine)[victim])
        assert engine.manager.has_pending_changes
        assert not engine.manager.has_effective_changes()

        exe_before = engine.executable
        report = engine.rebuild_if_needed()
        assert report is not None
        assert report.tier == TIER_NOOP
        assert report.wall_ms == 0.0
        assert report.total_compile_ms == 0.0
        assert report.fragment_ids == []
        assert engine.executable is exe_before
        # Empty span tree: no schedule/compile/link stages, and in
        # particular no optimize or isel spans anywhere.
        assert report.trace is not None
        assert report.trace.sim_ms == 0.0
        assert report.trace.children == []
        # The clean state is fully consumed: a second ask is silent.
        assert engine.rebuild_if_needed() is None

    def test_noop_records_classified_cancelled(self):
        engine, _ = build_engine()
        victim = sorted(probes_by_id(engine))[0]
        engine.manager.disable(probes_by_id(engine)[victim])
        record = engine.manager.dirty_records()[victim]
        assert record.kind == REC_TOGGLED
        engine.manager.enable(probes_by_id(engine)[victim])
        assert record.effective_kind() == REC_CANCELLED

    def test_remove_is_never_a_noop(self):
        engine, _ = build_engine()
        victim = sorted(probes_by_id(engine))[0]
        engine.manager.remove(probes_by_id(engine)[victim])
        record = engine.manager.dirty_records()[victim]
        assert record.effective_kind() == REC_REMOVED
        assert engine.manager.has_effective_changes()
        report = engine.rebuild_if_needed()
        assert report.tier == TIER_FULL

    def test_initial_build_survives_cancelled_records(self):
        """Regression: probes added then removed before the first build.

        The differential oracle's from-scratch reference does exactly
        this — add every probe, remove some to mirror the incremental
        state, then build.  The cancelled add+remove records must not
        let the classifier skip a never-compiled fragment: the external
        dirt initial_build plants has to stay visible even on symbols a
        probe record also covers (it used to be inferred away, leaving
        a fragment uncompiled and the link raising PartitionError).
        """
        engine = Odin(
            compile_source(SOURCE, "fastpath"), preserve=("main", "run_input")
        )
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        # Wipe every probe on one function before anything is compiled:
        # its add+remove records all cancel out.
        doomed = [
            p for p in engine.manager if p.target_symbol() == "helper_a"
        ]
        assert doomed
        for probe in doomed:
            tool.probes.pop(probe.id, None)
            engine.manager.remove(probe)
        # External dirt (initial build) must win over cancelled records.
        assert engine.manager.has_effective_changes()
        report = tool.build()
        assert engine.executable is not None
        # Every fragment was compiled, including helper_a's.
        assert sorted(engine.cache) == sorted(
            f.id for f in engine.fragdef.fragments
        )
        assert sorted(report.fragment_ids) == sorted(engine.cache)
        # And the image behaves like any other build of this program.
        reference, _ = build_engine()
        assert run_main(engine) == run_main(reference)

    def test_external_dirt_visible_despite_probe_records(self):
        """mark_symbols_dirty on a symbol with a cancelled record."""
        engine, _ = build_engine()
        victim = sorted(probes_by_id(engine))[0]
        symbol = probes_by_id(engine)[victim].target_symbol()
        probe = probes_by_id(engine)[victim]
        engine.manager.disable(probe)
        engine.manager.enable(probe)  # record cancels out
        engine.manager.mark_symbols_dirty([symbol])
        assert symbol in engine.manager.external_dirty_symbols()
        assert engine.manager.has_effective_changes()
        report = engine.rebuild_if_needed()
        assert report is not None
        assert report.tier == TIER_FULL
        assert engine.manager.external_dirty_symbols() == set()


class TestTieredCompileWall:
    def test_patch_tier_costs_are_tiny_but_nonzero(self):
        engine, _ = build_engine()
        victim = sorted(probes_by_id(engine))[0]
        full_wall = engine.history[0].compile_wall_ms
        engine.manager.disable(probes_by_id(engine)[victim])
        report = engine.rebuild_if_needed()
        assert report.tier == TIER_PATCH
        assert report.patched == len(report.fragment_ids) > 0
        assert all(t == TIER_PATCH for t in report.fragment_tiers.values())
        assert 0.0 < report.compile_wall_ms < full_wall / 100.0

    def test_fully_cached_rebuild_reports_zero_compile_wall(self):
        """Satellite 1: a warm content cache means zero compile wall."""
        shared = InMemoryCodeCache()
        first, _ = build_engine(object_cache=shared)
        # Second engine, same module and probe state, sharing the cache:
        # its initial build is all content-key hits.
        second = Odin(
            compile_source(SOURCE, "fastpath"),
            preserve=("main", "run_input"),
            object_cache=shared,
        )
        tool = OdinCov(second)
        tool.add_all_block_probes()
        tool.build()
        report = second.history[0]
        assert report.tier == TIER_CACHE
        assert report.cache_hits == len(report.fragment_ids) > 0
        assert report.compile_wall_ms == 0.0
        assert report.total_compile_ms == 0.0
        assert all(t == TIER_CACHE for t in report.fragment_tiers.values())
        # The two engines still agree on every artifact.
        assert second.object_fingerprints() == first.object_fingerprints()
        assert (
            second.executable_fingerprint() == first.executable_fingerprint()
        )
