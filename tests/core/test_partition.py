"""Tests for the partitioner: classification, Algorithm 1, internalization.

Includes the paper's Figure 6 walkthrough program.
"""

import pytest

from repro.core.partition import (
    CLASS_BOND,
    CLASS_COPY_ON_USE,
    CLASS_FIXED,
    STRATEGY_MAX,
    STRATEGY_ODIN,
    STRATEGY_ONE,
    apply_fragment_linkage,
    partition,
)
from repro.errors import PartitionError
from repro.ir.clone import extract_module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

# Figure 6's source program, hand-lowered to IR:
#   static int n;
#   static int add() { return ++n; }
#   static int neg(int x) { return -n; }      // x is dead
#   static const char* fmt = "hi\n";
#   void show() { printf(fmt); }
#   int main() { show(); return neg(add()); }
#
# (fmt is inlined to the printf call since pointer-data relocations are
# out of scope; the classification outcome is identical.)
FIG6 = """
@n = internal global i32 0
@fmt = internal const [4 x i8] c"hi\\0A\\00"

declare i32 @printf(ptr, ...)

define internal i32 @add() {
entry:
  %v = load i32, ptr @n
  %v2 = add i32 %v, 1
  store i32 %v2, ptr @n
  ret i32 %v2
}

define internal i32 @neg(i32 %x) {
entry:
  %v = load i32, ptr @n
  %r = sub i32 0, %v
  ret i32 %r
}

define void @show() {
entry:
  %r = call i32 @printf(ptr @fmt)
  ret void
}

define i32 @main() {
entry:
  call void @show()
  %a = call i32 @add()
  %r = call i32 @neg(i32 %a)
  ret i32 %r
}
"""


class TestFigure6:
    def setup_method(self):
        self.module = parse_module(FIG6)
        self.fragdef = partition(self.module, STRATEGY_ODIN, preserve=("main",))

    def test_fmt_is_copy_on_use(self):
        """The printf->puts rewrite inspects @fmt (local optimization)."""
        assert self.fragdef.classification["fmt"] == CLASS_COPY_ON_USE
        assert "fmt" in self.fragdef.copy_on_use

    def test_interprocedural_pairs_bonded(self):
        """neg's dead argument requires its caller main; small functions
        inline into main — all are Bond'ed into main's cluster."""
        main_frag = self.fragdef.fragment_of("main")
        assert "neg" in main_frag.symbols

    def test_variable_n_owned_by_one_fragment(self):
        frags = self.fragdef.fragments_containing("n")
        assert len(frags) == 1

    def test_copy_on_use_owns_no_fragment(self):
        assert "fmt" not in self.fragdef.owner

    def test_every_definition_covered(self):
        for name in ("main", "show", "add", "neg", "n"):
            assert name in self.fragdef.owner

    def test_internalization(self):
        """Symbols referenced only inside their fragment become internal;
        cross-fragment references stay exported."""
        assert "main" in self.fragdef.exported  # preserved
        # neg lives with main; nothing else calls it -> internalized.
        if self.fragdef.owner["neg"] == self.fragdef.owner["main"]:
            assert "neg" not in self.fragdef.exported

    def test_fragments_extract_and_verify(self):
        for fragment in self.fragdef.fragments:
            frag = extract_module(
                self.module, fragment.symbols, copy_on_use=self.fragdef.copy_on_use
            )
            apply_fragment_linkage(frag, self.fragdef)
            verify_module(frag)


class TestStrategies:
    def test_one_partition_single_fragment(self):
        m = parse_module(FIG6)
        fragdef = partition(m, STRATEGY_ONE)
        assert fragdef.num_fragments == 1
        assert len(fragdef.fragments[0].symbols) == len(m.definitions())

    def test_max_partition_one_symbol_each(self):
        m = parse_module(FIG6)
        fragdef = partition(m, STRATEGY_MAX)
        assert fragdef.num_fragments == len(m.definitions())

    def test_odin_between_extremes(self):
        m = parse_module(FIG6)
        one = partition(m, STRATEGY_ONE).num_fragments
        odin = partition(m, STRATEGY_ODIN).num_fragments
        max_ = partition(m, STRATEGY_MAX).num_fragments
        assert one <= odin <= max_

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PartitionError):
            partition(parse_module(FIG6), "bogus")


class TestInnateConstraints:
    ALIASED = FIG6 + "\n@add_alias = alias @add\n"

    def test_alias_clustered_with_aliasee_in_max(self):
        """Even MaxPartition must honour innate constraints (§2.3)."""
        m = parse_module(self.ALIASED)
        fragdef = partition(m, STRATEGY_MAX)
        alias_frag = fragdef.fragment_of("add_alias")
        assert "add" in alias_frag.symbols

    def test_alias_clustered_in_odin(self):
        m = parse_module(self.ALIASED)
        fragdef = partition(m, STRATEGY_ODIN)
        assert fragdef.owner["add_alias"] == fragdef.owner["add"]


class TestCopyOnUseEligibility:
    def test_non_const_global_never_copy_on_use(self):
        """Mutable state is semantically non-clonable."""
        m = parse_module(FIG6)
        fragdef = partition(m, STRATEGY_ODIN)
        assert "n" not in fragdef.copy_on_use

    def test_exported_const_not_cloned(self):
        src = FIG6.replace(
            '@fmt = internal const [4 x i8] c"hi\\0A\\00"',
            '@fmt = const [4 x i8] c"hi\\0A\\00"',
        )
        m = parse_module(src)
        fragdef = partition(m, STRATEGY_ODIN)
        assert "fmt" not in fragdef.copy_on_use


class TestPartitionInvariants:
    """Structural invariants every partition must satisfy, checked on the
    real benchmark programs."""

    @pytest.mark.parametrize("program", ["json", "harfbuzz", "x509"])
    @pytest.mark.parametrize("strategy", [STRATEGY_ODIN, STRATEGY_MAX, STRATEGY_ONE])
    def test_every_symbol_in_exactly_one_fragment(self, program, strategy):
        from tests.conftest import fresh_module

        m = fresh_module(program)
        fragdef = partition(m, strategy, preserve=("main", "run_input"))
        seen = {}
        for fragment in fragdef.fragments:
            for symbol in fragment.symbols:
                assert symbol not in seen, f"{symbol} in two fragments"
                seen[symbol] = fragment.id
        for symbol in m.definitions():
            assert symbol.name in seen or symbol.name in fragdef.copy_on_use

    @pytest.mark.parametrize("program", ["json", "libxml2"])
    def test_preserved_symbols_exported(self, program):
        from tests.conftest import fresh_module

        m = fresh_module(program)
        fragdef = partition(m, STRATEGY_ODIN, preserve=("main", "run_input"))
        assert "main" in fragdef.exported
        assert "run_input" in fragdef.exported
