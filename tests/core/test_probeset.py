"""ProbeSet: the shared probe registry every tool family sits on."""

import pytest

from repro.core.engine import Odin
from repro.core.probe import BlockProbe
from repro.core.probeset import ProbeSet, SyncOutcome
from repro.errors import ScheduleError
from repro.ir.parser import parse_module

PROGRAM = """
define internal i32 @alpha(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal i32 @beta(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @main() {
entry:
  %a = call i32 @alpha(i32 10)
  %b = call i32 @beta(i32 %a)
  ret i32 %b
}
"""


class NopProbe(BlockProbe):
    patchable = True
    family = "test"

    def __init__(self, fn, block):
        super().__init__(fn, block)
        self.hits = 0

    def instrument(self, builder, sched):
        pass


def make_set():
    engine = Odin(parse_module(PROGRAM), preserve=("main", "alpha", "beta"))
    probes = ProbeSet(engine.manager, family="test")
    installed = {}
    for name in ("alpha", "beta", "main"):
        fn = engine.module.get(name)
        installed[name] = probes.register(NopProbe(fn, fn.entry))
    return engine, probes, installed


class TestDictProtocol:
    def test_dict_compatibility(self):
        _, probes, installed = make_set()
        alpha = installed["alpha"]
        assert len(probes) == 3
        assert alpha.id in probes
        assert probes[alpha.id] is alpha
        assert probes.get(alpha.id) is alpha
        assert probes.get(-5) is None
        assert sorted(probes) == sorted(p.id for p in installed.values())
        assert set(probes.keys()) == {p.id for p in installed.values()}
        assert alpha in probes.values()
        assert (alpha.id, alpha) in probes.items()

    def test_pop_and_setitem(self):
        _, probes, installed = make_set()
        alpha = installed["alpha"]
        popped = probes.pop(alpha.id)
        assert popped is alpha
        assert alpha.id not in probes
        probes[alpha.id] = alpha
        assert probes[alpha.id] is alpha


class TestRegistration:
    def test_register_assigns_manager_id(self):
        engine, probes, installed = make_set()
        for probe in installed.values():
            assert probe.id >= 0
            assert engine.manager.get_probe(probe.id) is probe

    def test_adopt_requires_registered(self):
        engine, probes, _ = make_set()
        fn = engine.module.get("alpha")
        loose = NopProbe(fn, fn.entry)
        with pytest.raises(ValueError):
            probes.adopt(loose)

    def test_discard_unregisters(self):
        engine, probes, installed = make_set()
        alpha = installed["alpha"]
        probes.discard(alpha.id)
        assert alpha.id not in probes
        assert alpha.id == -1  # manager.remove resets the id


class TestSymbolState:
    def test_for_symbol_and_symbols(self):
        _, probes, installed = make_set()
        assert probes.for_symbol("alpha") == [installed["alpha"]]
        assert probes.symbols() == {"alpha", "beta", "main"}

    def test_set_symbol_enabled_flips_and_counts(self):
        engine, probes, installed = make_set()
        engine.initial_build()
        assert probes.set_symbol_enabled("alpha", False) == 1
        assert not installed["alpha"].enabled
        # Idempotent: already-disabled probes don't count as flips.
        assert probes.set_symbol_enabled("alpha", False) == 0
        assert probes.set_symbol_enabled("alpha", True) == 1

    def test_set_symbol_enabled_skips_externally_removed(self):
        engine, probes, installed = make_set()
        engine.initial_build()
        alpha = installed["alpha"]
        # Removed behind the set's back: id resets to -1; the flip loop
        # must skip it instead of tripping the manager's ScheduleError.
        engine.manager.remove(alpha)
        assert probes.set_symbol_enabled("alpha", False) == 0

    def test_apply_state_drives_diff(self):
        engine, probes, installed = make_set()
        engine.initial_build()
        desired = {pid: False for pid in probes}
        assert probes.apply_state(desired) == 3
        assert probes.apply_state(desired) == 0
        assert all(not p.enabled for p in probes.values())


class TestSyncCounts:
    def test_attributed_lands_on_annotation(self):
        _, probes, installed = make_set()
        alpha = installed["alpha"]
        outcome = probes.sync_counts({alpha.id: 7}, "hits")
        assert isinstance(outcome, SyncOutcome)
        assert outcome.attributed == 7 and outcome.unattributed == 0
        assert alpha.hits == 7
        probes.sync_counts({alpha.id: 3}, "hits")
        assert alpha.hits == 10  # accumulates

    def test_unknown_ids_tallied_not_dropped(self):
        _, probes, installed = make_set()
        alpha = installed["alpha"]
        outcome = probes.sync_counts({alpha.id: 2, 9999: 5}, "hits")
        assert outcome.attributed == 2
        assert outcome.unattributed == 5
