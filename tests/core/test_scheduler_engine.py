"""Tests for the PatchManager, Scheduler (Algorithm 2) and Odin engine."""

import pytest

from repro.core.engine import Odin
from repro.core.probe import BlockProbe, Probe
from repro.errors import PartitionError, ScheduleError
from repro.instrument.coverage import CovProbe, OdinCov
from repro.ir.builder import IRBuilder
from repro.ir.parser import parse_module
from repro.vm.interpreter import VM

PROGRAM = """
@state = global i32 0

define internal i32 @alpha(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal i32 @beta(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @gamma(i32 %x) {
entry:
  %r = sub i32 %x, 3
  ret i32 %r
}

define i32 @main() {
entry:
  %a = call i32 @alpha(i32 10)
  %b = call i32 @beta(i32 %a)
  %c = call i32 @gamma(i32 %b)
  ret i32 %c
}
"""


class NopProbe(BlockProbe):
    """A probe that counts how many times it was applied."""

    def __init__(self, fn, block):
        super().__init__(fn, block)
        self.applied = 0

    def instrument(self, builder, sched):
        self.applied += 1


def make_engine(strategy="max"):
    # MaxPartition gives deterministic one-symbol fragments, ideal for
    # testing Algorithm 2's propagation precisely.
    m = parse_module(PROGRAM)
    return Odin(m, strategy=strategy, preserve=("main", "gamma"))


class TestPatchManager:
    def test_add_assigns_ids(self):
        engine = make_engine()
        fn = engine.module.get("alpha")
        p1 = engine.manager.add(NopProbe(fn, fn.entry))
        p2 = engine.manager.add(NopProbe(fn, fn.entry))
        assert p1.id != p2.id
        assert engine.manager.get_probe(p1.id) is p1

    def test_double_add_rejected(self):
        engine = make_engine()
        fn = engine.module.get("alpha")
        probe = engine.manager.add(NopProbe(fn, fn.entry))
        with pytest.raises(ScheduleError):
            engine.manager.add(probe)

    def test_remove_unregistered_rejected(self):
        engine = make_engine()
        fn = engine.module.get("alpha")
        probe = NopProbe(fn, fn.entry)
        with pytest.raises(ScheduleError):
            engine.manager.remove(probe)

    def test_disable_unregistered_rejected(self):
        # Regression: disable/enable on a never-added probe used to record
        # dirt keyed at id -1 instead of raising.
        engine = make_engine()
        fn = engine.module.get("alpha")
        probe = NopProbe(fn, fn.entry)
        with pytest.raises(ScheduleError):
            engine.manager.disable(probe)
        with pytest.raises(ScheduleError):
            engine.manager.enable(probe)
        assert not engine.manager.has_pending_changes

    def test_toggle_after_remove_rejected(self):
        engine = make_engine()
        fn = engine.module.get("alpha")
        probe = engine.manager.add(NopProbe(fn, fn.entry))
        engine.manager.remove(probe)
        with pytest.raises(ScheduleError):
            engine.manager.disable(probe)

    def test_unknown_target_rejected(self):
        engine = make_engine()
        other = parse_module(PROGRAM).get("alpha")
        with pytest.raises(ScheduleError, match="unknown symbol"):
            engine.manager.add(NopProbe(other, other.entry))

    def test_dirty_tracking(self):
        engine = make_engine()
        fn = engine.module.get("alpha")
        assert not engine.manager.has_pending_changes
        probe = engine.manager.add(NopProbe(fn, fn.entry))
        assert engine.manager.dirty_symbols() == {"alpha"}


class TestAlgorithm2:
    def test_only_changed_fragment_scheduled(self):
        engine = make_engine()
        engine.initial_build()
        fn = engine.module.get("alpha")
        engine.manager.add(NopProbe(fn, fn.entry))
        sched = engine.manager.schedule()
        names = {f.symbols for f in sched.changed_fragments}
        assert names == {("alpha",)}

    def test_fragment_propagation_pulls_in_cluster(self):
        """Stage 2: symbols sharing a fragment are recompiled together."""
        engine = make_engine(strategy="one")
        engine.initial_build()
        fn = engine.module.get("alpha")
        engine.manager.add(NopProbe(fn, fn.entry))
        sched = engine.manager.schedule()
        assert set(sched.changed_symbols) == {"alpha", "beta", "gamma", "main", "state"}

    def test_back_propagation_reapplies_unchanged_probes(self):
        """Stage 3: an *unchanged but active* probe on a recompiled symbol
        must be re-applied."""
        engine = make_engine(strategy="one")
        alpha = engine.module.get("alpha")
        beta = engine.module.get("beta")
        stable = engine.manager.add(NopProbe(beta, beta.entry))
        engine.initial_build()
        assert stable.applied == 1
        # Changing only alpha still reapplies beta's probe (same fragment).
        engine.manager.add(NopProbe(alpha, alpha.entry))
        engine.rebuild()
        assert stable.applied == 2

    def test_unrelated_probe_not_reapplied(self):
        engine = make_engine()  # max partition: separate fragments
        alpha = engine.module.get("alpha")
        beta = engine.module.get("beta")
        stable = engine.manager.add(NopProbe(beta, beta.entry))
        engine.initial_build()
        engine.manager.add(NopProbe(alpha, alpha.entry))
        engine.rebuild()
        assert stable.applied == 1

    def test_disabled_probe_not_applied(self):
        engine = make_engine()
        alpha = engine.module.get("alpha")
        probe = engine.manager.add(NopProbe(alpha, alpha.entry))
        engine.manager.disable(probe)
        engine.initial_build()
        assert probe.applied == 0

    def test_scheduler_map_translates_blocks(self):
        engine = make_engine()
        engine.manager._dirty_symbols.add("alpha")
        sched = engine.manager.schedule()
        alpha = engine.module.get("alpha")
        mapped = sched.map_block(alpha.entry)
        assert mapped is not alpha.entry
        assert mapped.parent.name == "alpha"

    def test_double_rebuild_rejected(self):
        engine = make_engine()
        engine.manager._dirty_symbols.update(engine.fragdef.owner.keys())
        sched = engine.manager.schedule()
        sched.rebuild()
        with pytest.raises(ScheduleError):
            sched.rebuild()


class TestEngine:
    def test_initial_build_produces_runnable_executable(self):
        engine = make_engine()
        report = engine.initial_build()
        assert report.cache_reused == 0
        assert VM(engine.executable).run("main").exit_code == 19

    def test_rebuild_reuses_cache(self):
        engine = make_engine()
        engine.initial_build()
        alpha = engine.module.get("alpha")
        engine.manager.add(NopProbe(alpha, alpha.entry))
        report = engine.rebuild()
        assert report.fragment_ids == [engine.fragdef.owner["alpha"]]
        assert report.cache_reused == engine.num_fragments - 1

    def test_rebuild_without_initial_build_fails(self):
        engine = make_engine()
        alpha = engine.module.get("alpha")
        engine.manager.add(NopProbe(alpha, alpha.entry))
        with pytest.raises(PartitionError, match="initial_build"):
            engine.rebuild()

    def test_rebuild_if_needed_noop_when_clean(self):
        engine = make_engine()
        engine.initial_build()
        assert engine.rebuild_if_needed() is None

    def test_original_module_never_mutated(self):
        from repro.ir.printer import print_module

        engine = make_engine()
        before = print_module(engine.module)
        cov = OdinCov(engine)
        cov.add_all_block_probes()
        cov.build()
        assert print_module(engine.module) == before

    def test_execution_identical_across_rebuilds(self):
        """Instrumentation must never change program results (§5 replay)."""
        engine = make_engine()
        cov = OdinCov(engine)
        cov.add_all_block_probes()
        cov.build()
        r1 = cov.make_vm().run("main")
        cov.prune_covered()  # triggers an on-the-fly rebuild
        r2 = cov.make_vm().run("main")
        assert r1.exit_code == r2.exit_code == 19
        assert r2.cycles <= r1.cycles  # probes got cheaper, never dearer

    def test_clock_accumulates(self):
        engine = make_engine()
        engine.initial_build()
        assert engine.clock.total("compile") > 0
        assert engine.clock.total("link") > 0

    def test_describe_partition(self):
        engine = make_engine()
        text = engine.describe_partition()
        assert "strategy=max" in text
        assert "alpha" in text


class TestProbeTargetsSurviveOptimization:
    def test_probe_on_inlined_function_still_fires(self):
        """Instrument-first: alpha inlines into main, carrying its probe."""
        engine = make_engine(strategy="one")
        cov = OdinCov(engine, prune=False)
        alpha = engine.module.get("alpha")
        probe = engine.manager.add(CovProbe(alpha, alpha.entry))
        cov.probes[probe.id] = probe
        cov.build()
        vm = cov.make_vm()
        vm.run("main")
        assert cov.runtime.counters.get(probe.id, 0) >= 1
