"""Tests for MiniC code generation: compile-and-execute golden results.

Each case compiles a small program at O0 (no optimization beyond what the
frontend emits) and checks ``main``'s exit code / stdout, exercising one
language feature end-to-end through the backend and VM.
"""

import pytest

from repro.errors import FrontendError
from repro.frontend.codegen import compile_source
from repro.ir.verifier import verify_module
from repro.toolchain import run_source


def run(source, entry="main", args=(), opt_level=0):
    return run_source(source, entry, args, opt_level=opt_level)


def exit_code(source, **kwargs):
    result = run(source, **kwargs)
    assert result.trap is None, result.trap
    code = result.exit_code
    return code - 2**32 if code >= 2**31 else code


class TestArithmetic:
    def test_integer_ops(self):
        assert exit_code("int main() { return (7 * 3 - 1) / 4 % 3; }") == 2

    def test_signed_division_truncates(self):
        assert exit_code("int main() { return -7 / 2; }") == -3
        assert exit_code("int main() { return -7 % 2; }") == -1

    def test_unsigned_division(self):
        src = "int main() { unsigned int x = 0xFFFFFFFFu; return (int)(x / 16u) & 0xFF; }"
        assert exit_code(src) == 0xFF

    def test_bitwise_and_shifts(self):
        assert exit_code("int main() { return (0xF0 | 0x0C) & ~0x08; }") == 0xF4
        assert exit_code("int main() { return 1 << 10 >> 8; }") == 4
        assert exit_code("int main() { return -16 >> 2; }") == -4

    def test_char_arithmetic_promotes(self):
        assert exit_code("int main() { char c = 200; return c + 0; }") == -56

    def test_long_arithmetic(self):
        src = "int main() { long a = 1; a = a << 40; return (int)(a >> 38); }"
        assert exit_code(src) == 4


class TestControlFlow:
    def test_if_else(self):
        src = "int main() { int x = 5; if (x > 3) return 1; else return 2; }"
        assert exit_code(src) == 1

    def test_while_loop(self):
        src = "int main() { int s = 0, i = 0; while (i < 5) { s += i; i++; } return s; }"
        assert exit_code(src) == 10

    def test_do_while_runs_once(self):
        src = "int main() { int n = 0; do { n++; } while (0); return n; }"
        assert exit_code(src) == 1

    def test_for_with_break_continue(self):
        src = """
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 7) break;
        if (i % 2) continue;
        s += i;
    }
    return s;
}
"""
        assert exit_code(src) == 12  # 0+2+4+6

    def test_switch_fallthrough_and_default(self):
        src = """
int classify(int x) {
    int r = 0;
    switch (x) {
        case 1:
        case 2: r = 10; break;
        case 3: r = 20;      // falls through
        case 4: r += 1; break;
        default: r = -1; break;
    }
    return r;
}
int main() {
    return classify(1) * 1000 + classify(3) * 10 + (classify(9) == -1)
         + classify(4);
}
"""
        assert exit_code(src) == 10212

    def test_logical_short_circuit(self):
        src = """
static int calls;
static int bump(int v) { calls++; return v; }
int main() {
    int a = bump(0) && bump(1);
    int b = bump(1) || bump(1);
    return calls * 10 + a + b;
}
"""
        assert exit_code(src) == 21

    def test_ternary(self):
        assert exit_code("int main() { int x = 4; return x > 2 ? x * 2 : -1; }") == 8


class TestPointersAndArrays:
    def test_array_indexing(self):
        src = "int main() { int a[4] = {5, 6, 7, 8}; return a[2]; }"
        assert exit_code(src) == 7

    def test_pointer_arithmetic(self):
        src = """
int main() {
    int a[4] = {10, 20, 30, 40};
    int *p = a;
    p++;
    p += 2;
    return *p + *(p - 2);
}
"""
        assert exit_code(src) == 60

    def test_pointer_difference(self):
        src = """
int main() {
    int a[8];
    int *p = a + 6;
    int *q = a + 1;
    return (int)(p - q);
}
"""
        assert exit_code(src) == 5

    def test_address_of_local(self):
        src = """
static void set(int *out, int v) { *out = v; }
int main() { int x = 0; set(&x, 9); return x; }
"""
        assert exit_code(src) == 9

    def test_string_literal_and_strlen(self):
        src = 'int main() { return (int)strlen("hello"); }'
        assert exit_code(src) == 5

    def test_char_array_string_init(self):
        src = "int main() { char s[8] = \"abc\"; return s[0] + s[3]; }"
        assert exit_code(src) == 97

    def test_two_dimensional_array(self):
        src = """
static int grid[3][4];
int main() {
    int i, j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            grid[i][j] = i * 4 + j;
    return grid[2][3];
}
"""
        assert exit_code(src) == 11

    def test_function_pointer_call(self):
        src = """
static int twice(int x) { return x * 2; }
static int thrice(int x) { return x * 3; }
int main() {
    int (*op)(int) ;
    return 0;
}
"""
        # Function pointer declarations are not supported; calling through
        # a pointer value obtained from a function name is.
        src = """
static int twice(int x) { return x * 2; }
int apply(int x) { return twice(x); }
int main() { return apply(21); }
"""
        assert exit_code(src) == 42


class TestGlobals:
    def test_global_counter(self):
        src = """
static int counter = 5;
static void bump(void) { counter += 3; }
int main() { bump(); bump(); return counter; }
"""
        assert exit_code(src) == 11

    def test_global_array_initializer(self):
        src = """
static const int primes[5] = {2, 3, 5, 7, 11};
int main() { return primes[0] + primes[4]; }
"""
        assert exit_code(src) == 13

    def test_global_char_array_string(self):
        src = """
static char greeting[16] = "hey";
int main() { return greeting[1]; }
"""
        assert exit_code(src) == ord("e")

    def test_write_to_const_global_traps(self):
        src = """
static const int ro[2] = {1, 2};
int main() { int *p = (int *)ro; *p = 5; return 0; }
"""
        result = run(src)
        assert result.trap == "bad-memory"


class TestCallsAndVarargs:
    def test_printf_formats(self):
        src = r"""
int main() {
    printf("%d %u %x %c %s|", -5, 200u, 255, 'A', "str");
    printf("%%d\n");
    return 0;
}
"""
        result = run(src)
        assert result.stdout == b"-5 200 ff A str|%d\n"

    def test_recursion(self):
        src = """
static int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() { return fib(10); }
"""
        assert exit_code(src) == 55

    def test_mutual_recursion(self):
        src = """
static int is_odd(int n);
static int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
static int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
int main() { return is_even(10) * 10 + is_odd(7); }
"""
        assert exit_code(src) == 11

    def test_malloc_and_memset(self):
        src = """
int main() {
    char *p = malloc(16);
    memset(p, 7, 16);
    return p[0] + p[15];
}
"""
        assert exit_code(src) == 14

    def test_exit_builtin(self):
        src = "int main() { exit(3); return 0; }"
        assert exit_code(src) == 3

    def test_abort_traps(self):
        result = run("int main() { abort(); return 0; }")
        assert result.trap == "abort"


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(FrontendError, match="undeclared"):
            compile_source("int main() { return ghost; }")

    def test_wrong_arity(self):
        with pytest.raises(FrontendError, match="arguments"):
            compile_source("static int f(int a) { return a; } int main() { return f(); }")

    def test_redefined_global(self):
        with pytest.raises(FrontendError, match="redefinition"):
            compile_source("int x; int x;")

    def test_conflicting_declaration(self):
        with pytest.raises(FrontendError, match="conflicting"):
            compile_source("int f(int); long f(int);")

    def test_break_outside_loop(self):
        with pytest.raises(FrontendError, match="break"):
            compile_source("int main() { break; return 0; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(FrontendError, match="lvalue"):
            compile_source("int main() { 1 = 2; return 0; }")


class TestIRShape:
    def test_o0_uses_allocas(self):
        module = compile_source("int main() { int x = 1; return x; }")
        verify_module(module)
        opcodes = [i.opcode for i in module.get("main").instructions()]
        assert "alloca" in opcodes and "store" in opcodes and "load" in opcodes

    def test_static_function_is_internal(self):
        module = compile_source("static int f() { return 0; } int main() { return f(); }")
        assert module.get("f").is_internal
        assert not module.get("main").is_internal
