"""Tests for the MiniC lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FrontendError
from repro.frontend.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        toks = kinds("int interesting return returning")
        assert toks == [
            ("keyword", "int"), ("ident", "interesting"),
            ("keyword", "return"), ("ident", "returning"),
        ]

    def test_numbers(self):
        toks = kinds("0 42 0x1F 7u 9L 3ul")
        values = [v for k, v in toks if k == "number"]
        assert values == [(0, ""), (42, ""), (31, ""), (7, "u"), (9, "l"), (3, "ul")]

    def test_char_constants(self):
        toks = kinds(r"'a' '\n' '\0' '\\'")
        assert [v for _, v in toks] == [97, 10, 0, 92]

    def test_string_literals(self):
        toks = kinds(r'"hi" "a\tb" ""')
        assert [v for _, v in toks] == [b"hi", b"a\tb", b""]

    def test_operators_longest_match(self):
        toks = kinds("a <<= b >> c >= d >")
        ops = [v for k, v in toks if k == "op"]
        assert ops == ["<<=", ">>", ">=", ">"]

    def test_ellipsis(self):
        assert ("op", "...") in kinds("int f(int a, ...)")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(FrontendError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_column_tracking(self):
        toks = tokenize("int\n  x;")
        assert toks[0].line == 1
        assert toks[1].line == 2 and toks[1].column == 3


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(FrontendError):
            tokenize("int a = 1 @ 2;")

    def test_unterminated_string(self):
        with pytest.raises(FrontendError):
            tokenize('"never ends')

    def test_newline_in_string(self):
        with pytest.raises(FrontendError):
            tokenize('"line\nbreak"')

    def test_bad_escape(self):
        with pytest.raises(FrontendError):
            tokenize(r'"\q"')


class TestProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12))
    def test_identifiers_lex_as_single_token(self, name):
        from repro.frontend.lexer import KEYWORDS

        toks = tokenize(name)
        assert len(toks) == 2  # token + eof
        expected = "keyword" if name in KEYWORDS else "ident"
        assert toks[0].kind == expected

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_decimal_numbers_roundtrip(self, n):
        toks = tokenize(str(n))
        assert toks[0].value == (n, "")
