"""Tests for the MiniC parser (AST shapes + diagnostics)."""

import pytest

from repro.errors import FrontendError
from repro.frontend import ast
from repro.frontend.ctypes import CArray, CInt, CPointer
from repro.frontend.parser import parse


def parse_stmt(body: str) -> ast.Stmt:
    unit = parse(f"void f() {{ {body} }}")
    return unit.items[0].body.stmts[0]


def parse_expr(expr: str) -> ast.Expr:
    stmt = parse_stmt(f"{expr};")
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestTopLevel:
    def test_function_definition(self):
        unit = parse("static int f(int a, char *b) { return a; }")
        item = unit.items[0]
        assert isinstance(item, ast.FuncDef)
        assert item.static
        assert item.param_names == ["a", "b"]
        assert item.ctype.params[1] == CPointer(CInt(8))

    def test_function_declaration(self):
        unit = parse("int g(void);")
        assert isinstance(unit.items[0], ast.FuncDecl)
        assert unit.items[0].ctype.params == ()

    def test_vararg_signature(self):
        unit = parse("int printf(const char *fmt, ...);")
        assert unit.items[0].ctype.vararg

    def test_global_with_initializer(self):
        unit = parse("static const int limit = 42;")
        item = unit.items[0]
        assert isinstance(item, ast.GlobalDecl)
        assert item.static and item.const
        assert isinstance(item.init, ast.IntLit)

    def test_global_array_with_list(self):
        unit = parse("int table[4] = {1, 2, 3, 4};")
        item = unit.items[0]
        assert item.ctype == CArray(CInt(32), 4)
        assert len(item.init_list) == 4

    def test_multi_declarator_globals(self):
        unit = parse("int a, b = 2, c;")
        assert [i.name for i in unit.items] == ["a", "b", "c"]

    def test_two_dimensional_array(self):
        unit = parse("char grid[8][16];")
        assert unit.items[0].ctype == CArray(CArray(CInt(8), 16), 8)

    def test_pointer_to_const_is_not_const_object(self):
        unit = parse("const char *p;")
        assert not unit.items[0].const
        unit = parse("char *const q;")
        assert unit.items[0].const


class TestStatements:
    def test_if_else_chain(self):
        stmt = parse_stmt("if (1) ; else if (2) ; else ;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse, ast.If)

    def test_for_with_declaration(self):
        stmt = parse_stmt("for (int i = 0; i < 4; i++) ;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_with_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_do_while(self):
        stmt = parse_stmt("do { } while (0);")
        assert isinstance(stmt, ast.DoWhile)

    def test_switch_with_multi_labels_and_default(self):
        stmt = parse_stmt(
            "switch (x) { case 1: case 2: break; case -3: break; default: break; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert stmt.cases[0].values == [1, 2]
        assert stmt.cases[1].values == [-3]
        assert stmt.cases[2].values == []

    def test_local_declaration_with_init_list(self):
        stmt = parse_stmt("int a[3] = {1, 2, 3};")
        assert isinstance(stmt, ast.DeclStmt)
        assert len(stmt.decls[0].init_list) == 3


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_comparison_precedence_vs_logical(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += b << 2")
        assert expr.op == "+=" and expr.value.op == "<<"

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_false, ast.Ternary)

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert expr.op == "-" and expr.operand.op == "~"

    def test_postfix_index_and_call(self):
        expr = parse_expr("f(a)[1]++")
        assert isinstance(expr, ast.Unary) and expr.postfix
        assert isinstance(expr.operand, ast.Index)
        assert isinstance(expr.operand.base, ast.Call)

    def test_cast(self):
        expr = parse_expr("(unsigned int)x")
        assert isinstance(expr, ast.Cast)
        assert expr.ctype == CInt(32, signed=False)

    def test_parenthesized_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, ast.Binary)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(long)")
        assert isinstance(expr, ast.SizeofType)
        assert expr.ctype == CInt(64)

    def test_address_and_deref(self):
        expr = parse_expr("*&x")
        assert expr.op == "*" and expr.operand.op == "&"


class TestDiagnostics:
    def test_missing_semicolon(self):
        with pytest.raises(FrontendError):
            parse("int f() { return 1 }")

    def test_statement_before_case(self):
        with pytest.raises(FrontendError):
            parse("void f(int x) { switch (x) { x++; } }")

    def test_array_size_must_be_constant(self):
        with pytest.raises(FrontendError):
            parse("void f(int n) { int a[n]; }")

    def test_error_carries_line(self):
        try:
            parse("int f() {\n  return 1\n}")
        except FrontendError as e:
            assert e.line >= 2
        else:  # pragma: no cover
            pytest.fail("expected FrontendError")
