"""MiniC printer: parse → print must round-trip for every construct."""

import pytest

from repro.frontend import compile_source, parse
from repro.frontend import ast
from repro.frontend.printer import print_expr, print_unit

KITCHEN_SINK = """
int g = 42;
static const int mask = 15;
int table[4] = {1, 2, 3, 4};
char msg[6] = "hello";

int helper(int a, long b);

unsigned int mix(unsigned int x)
{
    unsigned int acc = 0u;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        acc = acc + (unsigned int)table[i & 3];
        if (acc > 100u)
            break;
        else
            continue;
    }
    while (x > 0u) {
        x = x >> 1;
        acc = acc ^ x;
    }
    do {
        acc = acc + 1u;
    } while (acc < 3u);
    switch (acc & 3u) {
    case 0:
        acc = acc + 1u;
        break;
    case 1:
    case 2:
        acc = acc * 2u;
        break;
    default:
        acc = 0u;
    }
    return acc + (x ? 1u : 2u) + (unsigned int)sizeof(int);
}

int helper(int a, long b)
{
    int *p = &a;
    *p = *p + (int)b;
    return -a + !b + ~a;
}

int main(void)
{
    printf("%d %s\\n", helper(g, 7l), msg);
    return (int)mix(9u) & 127;
}
"""


def roundtrip(source, name="t"):
    once = print_unit(parse(source, name))
    twice = print_unit(parse(once, name))
    return once, twice


class TestRoundTrip:
    def test_kitchen_sink_is_printer_fixpoint(self):
        once, twice = roundtrip(KITCHEN_SINK)
        assert once == twice

    def test_reprint_preserves_semantics(self):
        # Same IR instruction count is too strict (names may shift), but
        # both versions must compile and agree on structure.
        module_a = compile_source(KITCHEN_SINK, "a")
        reprinted, _ = roundtrip(KITCHEN_SINK)
        module_b = compile_source(reprinted, "b")
        assert sorted(f.name for f in module_a.defined_functions()) == \
               sorted(f.name for f in module_b.defined_functions())
        assert module_a.count_instructions() == module_b.count_instructions()

    def test_unbraced_bodies_become_braced(self):
        source = "int f(int a)\n{\n    if (a) return 1;\n    return 0;\n}\n"
        printed = print_unit(parse(source, "t"))
        assert "{" in printed.split("if")[1].splitlines()[1] or \
               printed.count("{") >= 3  # fn body + both branches


class TestEscapes:
    def test_string_escapes_roundtrip(self):
        source = 'int main(void)\n{\n    printf("a\\tb\\n\\"q\\"\\\\");\n    return 0;\n}\n'
        once, twice = roundtrip(source)
        assert once == twice

    def test_unprintable_byte_is_rejected(self):
        lit = ast.StringLit(data=b"\x01\x00")
        with pytest.raises(ValueError, match="unprintable byte"):
            print_expr(lit)


class TestExpressions:
    def test_fully_parenthesized(self):
        unit = parse("int f(int a)\n{\n    return a + a * 2;\n}\n", "t")
        printed = print_unit(unit)
        assert "(a + (a * 2))" in printed
