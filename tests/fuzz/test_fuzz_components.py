"""Tests for the fuzzing substrate: corpus, mutators, input-to-state."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.corpus import Corpus
from repro.fuzz.i2s import solve_comparisons, substitution_candidates
from repro.fuzz.mutator import MUTATIONS, Mutator
from repro.utils.rng import DeterministicRNG


class TestCorpus:
    def test_new_coverage_retained(self):
        corpus = Corpus()
        assert corpus.consider(b"a", {1, 2}, 0) is not None
        assert corpus.consider(b"b", {2, 3}, 1) is not None
        assert len(corpus) == 2
        assert corpus.global_coverage == {1, 2, 3}

    def test_redundant_coverage_dropped(self):
        corpus = Corpus()
        corpus.consider(b"a", {1, 2}, 0)
        assert corpus.consider(b"b", {1}, 1) is None
        assert len(corpus) == 1

    def test_first_entry_always_kept(self):
        corpus = Corpus()
        assert corpus.consider(b"seed", set(), 0) is not None

    def test_pending_seeds_drain_once(self):
        corpus = Corpus([b"x", b"y"])
        assert corpus.pending_seeds() == [b"x", b"y"]
        assert corpus.pending_seeds() == []

    def test_pick_deterministic(self):
        corpus = Corpus()
        for i in range(5):
            corpus.consider(bytes([i]), {i}, i)
        picks1 = [corpus.pick(DeterministicRNG(7)).data for _ in range(5)]
        picks2 = [corpus.pick(DeterministicRNG(7)).data for _ in range(5)]
        assert picks1 == picks2

    def test_pick_empty_raises(self):
        with pytest.raises(IndexError):
            Corpus().pick(DeterministicRNG(0))


class TestMutator:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=64), st.integers(0, 2**31))
    def test_mutations_produce_bytes_within_limit(self, data, seed):
        mutator = Mutator(DeterministicRNG(seed), max_size=128)
        out = mutator.mutate(data)
        assert isinstance(out, bytes)
        assert len(out) <= 128

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=32), st.integers(0, 2**31))
    def test_each_primitive_total(self, data, seed):
        """Every mutation primitive returns bytes for any input."""
        rng = DeterministicRNG(seed)
        for primitive in MUTATIONS:
            out = primitive(data, rng)
            assert isinstance(out, bytes)

    def test_deterministic_given_seed(self):
        a = Mutator(DeterministicRNG(3)).mutate(b"hello world")
        b = Mutator(DeterministicRNG(3)).mutate(b"hello world")
        assert a == b

    def test_splice_combines(self):
        rng = DeterministicRNG(1)
        mutator = Mutator(rng)
        outs = {mutator.mutate(b"AAAA", splice_with=b"BBBB") for _ in range(50)}
        assert len(outs) > 1  # actually mutating


class TestInputToState:
    def test_byte_substitution(self):
        candidates = substitution_candidates(b"hello\x05world", 5, 9)
        assert b"hello\x09world" in candidates

    def test_word_substitution_little_endian(self):
        data = b"ab" + (1000).to_bytes(2, "little") + b"cd"
        candidates = substitution_candidates(data, 1000, 2000)
        assert b"ab" + (2000).to_bytes(2, "little") + b"cd" in candidates

    def test_big_endian_occurrence_found(self):
        data = (1000).to_bytes(2, "big") + b"xx"
        candidates = substitution_candidates(data, 1000, 7)
        assert any(c.startswith((7).to_bytes(2, "little")) for c in candidates)

    def test_no_occurrence_no_candidates(self):
        assert substitution_candidates(b"abc", 0x55AA77, 1) == []

    def test_solve_tries_both_directions(self):
        # input contains the RHS constant; solver should also replace it.
        data = b"=" + (42).to_bytes(1, "little") + b"="
        out = solve_comparisons(data, [(1000, 42)])
        assert any((1000 & 0xFF) in c for c in out)

    def test_solve_respects_limit(self):
        data = bytes([5]) * 64
        out = solve_comparisons(data, [(5, 6)], limit_total=10)
        assert len(out) <= 10

    def test_equal_pairs_skipped(self):
        assert solve_comparisons(b"\x05", [(5, 5)]) == []

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=32), st.integers(0, 255), st.integers(0, 255))
    def test_candidates_same_length_for_byte_width(self, data, a, b):
        if a == b:
            return
        for cand in substitution_candidates(data, a, b, limit=4):
            assert len(cand) == len(data)
