"""Tests for the fuzzing loop and executors over a real target."""

import pytest

from repro.core.engine import Odin
from repro.fuzz.executor import (
    DrCovExecutor,
    LibInstExecutor,
    OdinCovExecutor,
    PlainExecutor,
    SanCovExecutor,
)
from repro.fuzz.fuzzer import CmpLogFuzzer, Fuzzer
from repro.frontend.codegen import compile_source
from repro.instrument.cmplog import CmpLogRuntime, add_cmp_probes
from repro.instrument.coverage import OdinCov
from repro.instrument.sancov import build_sancov
from repro.toolchain import build

TARGET = r"""
static int seen_magic;

int run_input(const char *data, long size) {
    if (size < 4) return 0;
    if (data[0] == 'F') {
        if (data[1] == 'U') {
            if (data[2] == 'Z') {
                if (data[3] == 'Z') {
                    seen_magic = 1;
                    return 100;
                }
                return 3;
            }
            return 2;
        }
        return 1;
    }
    return 0;
}

int main(void) { return 0; }
"""

MAGIC32 = r"""
int run_input(const char *data, long size) {
    int key;
    if (size < 4) return 0;
    key = ((int)data[0] & 255) | (((int)data[1] & 255) << 8)
        | (((int)data[2] & 255) << 16) | (((int)data[3] & 255) << 24);
    if (key == 0x4A3B2C1D) return 100;
    return 0;
}

int main(void) { return 0; }
"""


def odincov_executor(source=TARGET, prune=True):
    engine = Odin(compile_source(source, "t"), preserve=("main", "run_input"))
    tool = OdinCov(engine, prune=prune)
    tool.add_all_block_probes()
    tool.build()
    return OdinCovExecutor(tool)


class TestExecutors:
    def test_plain_executor_counts(self):
        exe = build(TARGET).executable
        executor = PlainExecutor(exe)
        executor.execute(b"ABCD")
        executor.execute(b"FUZZ")
        assert executor.executions == 2
        assert executor.total_cycles > 0

    def test_odincov_executor_reports_new_coverage(self):
        executor = odincov_executor()
        first = executor.execute(b"A")
        second = executor.execute(b"A")
        assert first.coverage  # first run covers blocks
        assert second.coverage == first.coverage  # counters keep growing

    def test_sancov_executor(self):
        san = build_sancov(compile_source(TARGET, "t"))
        executor = SanCovExecutor(san)
        outcome = executor.execute(b"FUZZ")
        assert outcome.result.exit_code == 100
        assert outcome.coverage

    def test_baseline_executors_collect_block_coverage(self):
        exe = build(TARGET).executable
        for cls in (DrCovExecutor, LibInstExecutor):
            executor = cls(exe)
            executor.execute(b"FUZZ")
            assert executor.tool.blocks_covered > 0

    def test_baseline_coverage_is_per_execution_delta(self):
        """Regression: DrCov/LibInst used to report the full cumulative
        covered set on every input, so everything looked novel forever."""
        exe = build(TARGET).executable
        for cls in (DrCovExecutor, LibInstExecutor):
            executor = cls(exe)
            first = executor.execute(b"FUZZ")
            assert first.coverage  # a fresh tool sees new blocks
            repeat = executor.execute(b"FUZZ")
            assert repeat.coverage == set()  # same path: no delta
            # An input on a previously seen path also reports no delta.
            executor.execute(b"FxZZ")
            covered_before = executor.tool.blocks_covered
            again = executor.execute(b"FxZZ")
            assert again.coverage == set()
            # The tool's cumulative map is unaffected by the delta fix.
            assert executor.tool.blocks_covered == covered_before


class TestFuzzerLoop:
    def test_coverage_guided_progress(self):
        """The fuzzer climbs the magic-bytes staircase."""
        executor = odincov_executor(prune=False)
        fuzzer = Fuzzer(executor, seeds=[b"AAAA"], seed=5)
        stats = fuzzer.run(400)
        assert stats.corpus_size > 1
        assert stats.coverage > 0
        assert stats.executions >= 400

    def test_prune_interval_triggers_rebuilds(self):
        executor = odincov_executor(prune=True)
        fuzzer = Fuzzer(executor, seeds=[b"AAAA", b"FUZ", b"xy"], prune_interval=50)
        stats = fuzzer.run(120)
        assert stats.rebuilds >= 1
        assert stats.rebuild_ms > 0

    def test_prune_fires_every_interval_not_every_iteration(self):
        """Regression: the loop used to read ``stats.executions`` (synced
        only after the loop, so 0 throughout) and pruned on EVERY
        iteration instead of every ``prune_interval`` executions."""
        executor = odincov_executor(prune=True)
        prune_calls = []
        original_prune = executor.prune
        executor.prune = lambda: prune_calls.append(1) or original_prune()
        fuzzer = Fuzzer(
            executor, seeds=[b"AAAA", b"FUZ", b"xy"], prune_interval=50
        )
        stats = fuzzer.run(120)
        # 3 seed executions + 120 mutations = executions 4..123, which
        # cross exactly two multiples of 50 (50 and 100).
        assert len(prune_calls) == 2
        assert stats.prunes == 2
        assert stats.executions == 123

    def test_replay_mode(self):
        executor = odincov_executor(prune=False)
        fuzzer = Fuzzer(executor, seeds=[])
        stats = fuzzer.replay([b"FUZZ", b"F..."])
        assert stats.executions == 2

    def test_deterministic_given_seed(self):
        s1 = Fuzzer(odincov_executor(prune=False), seeds=[b"AAAA"], seed=9).run(150)
        s2 = Fuzzer(odincov_executor(prune=False), seeds=[b"AAAA"], seed=9).run(150)
        assert s1.coverage == s2.coverage
        assert s1.corpus_size == s2.corpus_size


CRASHY = r"""
int run_input(const char *data, long size) {
    int x;
    x = 0;
    return 100 / x;
}

int main(void) { return 0; }
"""


class TestRebuildAccounting:
    def test_wall_vs_cpu_split(self):
        """Regression: ``rebuild_ms`` used to accumulate the serial
        lane-sum (``total_ms``), overstating the latency a worker-pool
        rebuild actually imposes; the lane-sum now lands in
        ``rebuild_cpu_ms``."""
        from repro.core.engine import RebuildReport

        report = RebuildReport()
        report.workers = 2
        report.fragment_compile_ms = {0: 40.0, 1: 30.0, 2: 30.0}
        report.compile_wall_ms = 60.0  # LPT makespan of the lanes above
        report.link_ms = 10.0

        fuzzer = Fuzzer(PlainExecutor(build(TARGET).executable), seeds=[])
        fuzzer._note_rebuild(report)
        assert fuzzer.stats.rebuilds == 1
        assert fuzzer.stats.rebuild_ms == report.wall_ms == 70.0
        assert fuzzer.stats.rebuild_cpu_ms == report.total_ms == 110.0
        assert fuzzer.stats.rebuild_ms < fuzzer.stats.rebuild_cpu_ms

    def test_worker_pool_campaign_reports_wall(self):
        """End-to-end ``workers>1``: recorded latency is the makespan."""
        from repro.service.workers import ThreadFragmentCompiler

        engine = Odin(
            compile_source(TARGET, "t"), preserve=("main", "run_input"),
            compiler=ThreadFragmentCompiler(workers=2),
        )
        tool = OdinCov(engine, prune=True)
        tool.add_all_block_probes()
        tool.build()
        fuzzer = Fuzzer(
            OdinCovExecutor(tool), seeds=[b"AAAA", b"FUZ", b"xy"],
            prune_interval=50,
        )
        stats = fuzzer.run(120)
        assert stats.rebuilds >= 1
        wall = sum(r.wall_ms for r in engine.history[1:])
        cpu = sum(r.total_ms for r in engine.history[1:])
        assert stats.rebuild_ms == wall
        assert stats.rebuild_cpu_ms == cpu


class TestSeedTriage:
    def test_all_crashing_seeds_fail_fast(self):
        """Regression: a corpus emptied by seed triage used to surface
        as a bare ``IndexError("corpus is empty")`` from ``pick`` on the
        first mutation."""
        from repro.errors import FuzzError

        executor = PlainExecutor(build(CRASHY).executable)
        fuzzer = Fuzzer(executor, seeds=[b"a", b"bb"])
        with pytest.raises(FuzzError, match="all 2 seed inputs crashed"):
            fuzzer.run(10)
        assert fuzzer.stats.crashes == 2

    def test_one_good_seed_is_enough(self):
        executor = odincov_executor(prune=False)
        fuzzer = Fuzzer(executor, seeds=[b"AAAA"])
        stats = fuzzer.run(5)
        assert stats.executions >= 5


class TestCorpusEnergy:
    def test_energy_multiplies_pick_weight(self):
        from repro.fuzz.corpus import Corpus
        from repro.utils.rng import DeterministicRNG

        corpus = Corpus()
        corpus.consider(b"a" * 100, {1}, 0)
        corpus.consider(b"b" * 100, {2}, 0)
        corpus.entries[0].energy = 500
        rng = DeterministicRNG(3)
        picks = [corpus.pick(rng) for _ in range(200)]
        boosted = sum(1 for e in picks if e is corpus.entries[0])
        assert boosted > 190

    def test_nonpositive_energy_clamps_to_neutral(self):
        """A zeroed-out entry must not break the weighted roll."""
        from repro.fuzz.corpus import Corpus, CorpusEntry
        from repro.utils.rng import DeterministicRNG

        assert CorpusEntry(b"x", frozenset()).energy == 1
        corpus = Corpus()
        corpus.consider(b"a", {1}, 0)
        corpus.consider(b"b", {2}, 0)
        corpus.entries[0].energy = 0
        rng = DeterministicRNG(11)
        picks = {corpus.pick(rng).data for _ in range(100)}
        assert picks == {b"a", b"b"}


class TestCmpLogFuzzer:
    def test_solves_32bit_magic(self):
        """Random mutation can't find 0x4A3B2C1D; input-to-state can."""
        engine = Odin(compile_source(MAGIC32, "t"), preserve=("main", "run_input"))
        tool = OdinCov(engine, prune=False)
        tool.add_all_block_probes()
        cmp_probes = add_cmp_probes(engine, functions={"run_input"})
        tool.build()
        cmplog = CmpLogRuntime()
        executor = OdinCovExecutor(tool, extra_runtime=cmplog)
        fuzzer = CmpLogFuzzer(
            executor, seeds=[b"\x00\x00\x00\x00"], cmplog_runtime=cmplog,
            cmp_probes=cmp_probes,
        )
        fuzzer.run(30)  # collects pairs, cannot solve by chance
        solved = fuzzer.solve_roadblocks()
        assert solved >= 1
        assert any(
            e.data[:4] == (0x4A3B2C1D).to_bytes(4, "little")
            for e in fuzzer.corpus.entries
        )

    def test_solved_probe_removed_and_rebuilt(self):
        engine = Odin(compile_source(MAGIC32, "t"), preserve=("main", "run_input"))
        tool = OdinCov(engine, prune=False)
        tool.add_all_block_probes()
        cmp_probes = add_cmp_probes(engine, functions={"run_input"})
        tool.build()
        cmplog = CmpLogRuntime()
        executor = OdinCovExecutor(tool, extra_runtime=cmplog)
        fuzzer = CmpLogFuzzer(
            executor, seeds=[b"\x00\x00\x00\x00"], cmplog_runtime=cmplog,
            cmp_probes=cmp_probes,
        )
        fuzzer.run(10)
        before = len(list(engine.manager))
        if fuzzer.solve_roadblocks():
            assert len(list(engine.manager)) < before
            assert fuzzer.stats.rebuilds >= 1
