"""Tests for CmpLog, UBSan-lite and ASan-lite probe schemes."""

import pytest

from repro.core.engine import Odin
from repro.instrument.asan import ASanTool
from repro.instrument.cmplog import CmpLogRuntime, CmpProbe, add_cmp_probes
from repro.instrument.coverage import OdinCov
from repro.instrument.ubsan import UBSanTool
from repro.ir.instructions import IcmpInst
from repro.ir.parser import parse_module
from repro.vm.interpreter import VM

MAGIC = """
define i32 @check(i32 %value) {
entry:
  %hit = icmp eq i32 %value, 133700
  br i1 %hit, label %yes, label %no
yes:
  ret i32 1
no:
  ret i32 0
}

define i32 @main() {
entry:
  %r = call i32 @check(i32 5)
  ret i32 %r
}
"""


class TestCmpLog:
    def make(self):
        engine = Odin(parse_module(MAGIC), preserve=("main", "check"))
        probes = add_cmp_probes(engine)
        engine.initial_build()
        runtime = CmpLogRuntime()
        return engine, probes, runtime

    def test_probe_attached_to_comparison(self):
        engine, probes, _ = self.make()
        assert len(probes) == 1
        assert isinstance(probes[0].the_cmp, IcmpInst)

    def test_operands_recorded_exactly(self):
        """Input-to-state prerequisite: recorded values are direct copies."""
        engine, probes, runtime = self.make()
        vm = VM(engine.executable, probe_runtime=runtime)
        vm.run("check", (5,))
        pairs = runtime.pairs[probes[0].id]
        assert pairs == [(5, 133700)]

    def test_pair_deduplication_and_cap(self):
        engine, probes, runtime = self.make()
        vm = VM(engine.executable, probe_runtime=runtime)
        for _ in range(3):
            vm.run("check", (5,))
        assert len(runtime.pairs[probes[0].id]) == 1

    def test_removed_probe_stops_recording(self):
        engine, probes, runtime = self.make()
        engine.manager.remove(probes[0])
        engine.rebuild()
        vm = VM(engine.executable, probe_runtime=runtime)
        vm.run("check", (5,))
        assert runtime.pairs == {}

    def test_optimized_late_instrumentation_shifts_operands(self):
        """The Figure 2 CmpLog-breakage: after the range fold, a late
        probe would see `chr - 'a'` instead of `chr`."""
        from repro.ir.printer import print_module
        from repro.opt.pipeline import optimize

        src = """
define i1 @islower(i8 %chr) {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ false, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
"""
        m = parse_module(src)
        optimize(m, 2)
        text = print_module(m)
        # The comparison that survives compares the *shifted* value.
        assert "add i8 %chr, -97" in text


OVERFLOWING = """
define i32 @mix(i32 %a, i32 %b) {
entry:
  %sum = add i32 %a, %b
  ret i32 %sum
}

define i32 @main() {
entry:
  %r = call i32 @mix(i32 1, i32 2)
  ret i32 %r
}
"""


class TestUBSan:
    def make(self):
        engine = Odin(parse_module(OVERFLOWING), preserve=("main", "mix"))
        tool = UBSanTool(engine)
        tool.add_all_overflow_probes()
        tool.build()
        return tool

    def test_benign_execution_passes(self):
        tool = self.make()
        assert tool.make_vm().run("mix", (1, 2)).trap is None

    def test_overflow_traps(self):
        tool = self.make()
        result = tool.make_vm().run("mix", (2**31 - 1, 1))
        assert result.trap == "ubsan"

    def test_fired_probe_removed_on_demand(self):
        """§7: remove the faulty probe and the campaign continues."""
        tool = self.make()
        assert tool.make_vm().run("mix", (2**31 - 1, 1)).trap == "ubsan"
        report = tool.remove_fired_probe()
        assert report is not None
        result = tool.make_vm().run("mix", (2**31 - 1, 1))
        assert result.trap is None  # same input now survives

    def test_remove_without_fire_is_noop(self):
        tool = self.make()
        assert tool.remove_fired_probe() is None


BUGGY = """
@buf = global [8 x i8] c"\\00\\00\\00\\00\\00\\00\\00\\00"

define i8 @read_at(i64 %i) {
entry:
  %p = gep i8, ptr @buf, i64 %i
  %v = load i8, ptr %p
  ret i8 %v
}

define i32 @main() {
entry:
  %v = call i8 @read_at(i64 3)
  %r = zext i8 %v to i32
  ret i32 %r
}
"""


class TestASan:
    def make(self):
        engine = Odin(parse_module(BUGGY), preserve=("main", "read_at"))
        tool = ASanTool(engine)
        count = tool.add_all_access_probes()
        assert count >= 1
        tool.build()
        return tool

    def test_valid_access_passes(self):
        tool = self.make()
        assert tool.make_vm().run("read_at", (3,)).trap is None

    def test_wild_access_trapped(self):
        tool = self.make()
        result = tool.make_vm().run("read_at", (10**8,))
        assert result.trap == "asan"

    def test_hot_check_pruning(self):
        """§7 / ASAP: hot checks get removed online, lowering cost."""
        tool = self.make()
        vm = tool.make_vm()
        for i in range(10):
            vm.run("read_at", (i % 8,))
        before = tool.make_vm().run("read_at", (0,)).cycles
        report = tool.prune_hot_checks(hot_fraction=1.0)
        assert report is not None
        after = tool.make_vm().run("read_at", (0,)).cycles
        assert after < before
