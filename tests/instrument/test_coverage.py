"""Tests for OdinCov and the SanitizerCoverage analogue."""

import pytest

from repro.core.engine import Odin
from repro.instrument.coverage import CoverageRuntime, OdinCov
from repro.instrument.sancov import build_sancov, instrument_sancov
from repro.ir.parser import parse_module
from repro.opt.pipeline import optimize
from repro.vm.interpreter import VM

# The islower shape (Figure 2): O2 folds classify to a single block, so
# late (SanCov) instrumentation sees fewer sites than instrument-first.
PROGRAM = """
define i32 @classify(i8 %c) {
entry:
  %low = icmp sge i8 %c, 97
  br i1 %low, label %check_hi, label %end
check_hi:
  %hi = icmp sle i8 %c, 122
  br label %end
end:
  %r = phi i1 [ false, %entry ], [ %hi, %check_hi ]
  %z = zext i1 %r to i32
  ret i32 %z
}

define i32 @main() {
entry:
  %a = call i32 @classify(i8 33)
  ret i32 %a
}
"""


def make_tool(prune=True, strategy="odin"):
    engine = Odin(parse_module(PROGRAM), strategy=strategy, preserve=("main", "classify"))
    tool = OdinCov(engine, prune=prune)
    tool.add_all_block_probes()
    tool.build()
    return tool


class TestOdinCov:
    def test_probe_per_block(self):
        tool = make_tool()
        # classify: entry + end (check_hi is a forwarding block... it has
        # the icmp, so it counts too) = 3, plus main = 4 probes.
        assert len(tool.probes) == 4

    def test_counters_reflect_execution(self):
        tool = make_tool()
        vm = tool.make_vm()
        assert vm.run("main").exit_code == 0
        counts = tool.runtime.counters
        # '!' fails the low check: entry + end + main covered, not check_hi.
        assert len(tool.runtime.covered_ids()) == 3

    def test_hit_counts_sync_to_probe_annotations(self):
        tool = make_tool()
        tool.make_vm().run("main")
        tool.sync_hit_counts()
        assert any(p.hits >= 1 for p in tool.probes.values())

    def test_prune_removes_covered_probes(self):
        tool = make_tool()
        tool.make_vm().run("main")
        report = tool.prune_covered()
        assert report.pruned == 3
        assert report.rebuild is not None
        # The probe on the never-executed check_hi block survives.
        assert report.remaining == len(tool.probes) == 1

    def test_pruned_binary_has_lower_cost(self):
        tool = make_tool()
        before = tool.make_vm().run("main").cycles
        tool.prune_covered()
        after = tool.make_vm().run("main").cycles
        assert after < before

    def test_noprune_keeps_probes(self):
        tool = make_tool(prune=False)
        tool.make_vm().run("main")
        report = tool.prune_covered()
        assert report.pruned == 0 and report.rebuild is None

    def test_noprune_prune_covered_still_syncs_hit_counts(self):
        # Regression: the NoPrune early return used to skip the profile
        # sync, so CovProbe.hits stayed 0 forever in NoPrune mode.
        tool = make_tool(prune=False)
        tool.make_vm().run("main")
        report = tool.prune_covered()
        assert report.remaining == len(tool.probes)
        assert sum(p.hits for p in tool.probes.values()) > 0

    def test_noprune_sync_clears_counters_no_double_count(self):
        tool = make_tool(prune=False)
        tool.make_vm().run("main")
        tool.prune_covered()
        first = {pid: p.hits for pid, p in tool.probes.items()}
        # No executions in between: a second cadence point must not
        # re-accumulate the same counters.
        tool.prune_covered()
        assert {pid: p.hits for pid, p in tool.probes.items()} == first

    def test_sync_tallies_unattributed_counters(self):
        # Regression: counters whose probe vanished between execution and
        # sync (pruned mid-window) were silently discarded.
        tool = make_tool(prune=False)
        tool.make_vm().run("main")
        counts = tool.profile_counts()
        dropped = next(iter(tool.runtime.covered_ids()))
        tool.probes.pop(dropped)
        outcome = tool.sync_profiles()
        assert outcome.unattributed == counts[dropped]
        assert tool.unattributed == counts[dropped]
        # The lifetime tally accumulates across syncs.
        tool.make_vm().run("main")
        tool.sync_profiles()
        assert tool.unattributed == 2 * counts[dropped]

    def test_uncovered_probe_survives_and_still_fires(self):
        tool = make_tool()
        tool.make_vm().run("main")
        tool.prune_covered()
        # Execute the path that was never covered: a lowercase letter
        # takes the check_hi block where the surviving probe lives.
        vm = tool.make_vm()
        result = vm.run("classify", (ord("h"),))
        assert result.exit_code == 1
        assert tool.runtime.covered_ids()  # the surviving probe fired


class TestSanCov:
    def test_instruments_after_optimization(self):
        m = parse_module(PROGRAM)
        optimize(m, 2)
        blocks_after_opt = sum(len(f.blocks) for f in m.defined_functions())
        sites = instrument_sancov(m)
        assert len(sites) == blocks_after_opt

    def test_feedback_distortion_vs_odincov(self):
        """Figure 2's consequence measured: SanCov sees fewer distinct
        coverage sites than instrument-first OdinCov on the same program."""
        tool = make_tool(prune=False)
        san = build_sancov(parse_module(PROGRAM))
        assert san.num_probes < len(tool.probes)

    def test_sancov_executes_and_counts(self):
        san = build_sancov(parse_module(PROGRAM))
        runtime = CoverageRuntime()
        vm = VM(san.executable, probe_runtime=runtime)
        assert vm.run("main").exit_code == 0
        assert runtime.counters

    def test_probe_sites_map_to_functions(self):
        san = build_sancov(parse_module(PROGRAM))
        for fn_name, block_name in san.probe_sites.values():
            assert fn_name in ("classify", "main")
