"""Guided UBSan placement: range analysis prunes provably-safe probes."""

from repro.check import DifferentialOracle, generate_schedules
from repro.core.engine import Odin
from repro.instrument.ubsan import UBSanTool
from repro.programs.registry import get_program

PRESERVED = ("main", "run_input")
TARGET = "lcms"


def make_tool(guided):
    program = get_program(TARGET)
    engine = Odin(program.compile(), preserve=PRESERVED)
    tool = UBSanTool(engine)
    count = tool.add_all_overflow_probes(guided=guided)
    return tool, count


class TestGuidedPlacement:
    def test_guided_emits_fewer_probes(self):
        _, n_all = make_tool(guided=False)
        tool, n_guided = make_tool(guided=True)
        assert 0 < n_guided < n_all
        assert tool.pruned > 0
        assert n_guided + tool.pruned == n_all

    def test_unguided_mode_prunes_nothing(self):
        tool, _ = make_tool(guided=False)
        assert tool.pruned == 0

    def test_guided_build_executes_seeds(self):
        program = get_program(TARGET)
        tool, _ = make_tool(guided=True)
        tool.build()
        vm = tool.make_vm()
        data = program.seeds()[0]
        addr = vm.alloc(max(len(data), 1) + 1)
        vm.write_bytes(addr, data)
        result = vm.run("run_input", (addr, len(data)), reset=False)
        # The instrumented build runs to completion (a ubsan trap would
        # be a real overflow the guided analysis rightly kept a probe on).
        assert result.trap in (None, "ubsan")

    def test_target_still_passes_differential_check(self):
        """The acceptance pairing: guided UBSan saves probes on a program
        on which `repro check` (the rebuild oracle) still passes."""
        program = get_program(TARGET)
        oracle = DifferentialOracle(program, max_inputs=2)
        report = oracle.run(generate_schedules(2, 11, max_steps=4))
        assert report.ok, report.mismatches
