"""Tests for the build-cost model (Fig. 3) and small experiment harness runs."""

import pytest

from repro.buildsim.buildcost import measure_build
from repro.experiments.overhead import measure_overheads
from repro.experiments.partition import measure_partition_variants
from repro.experiments.recompile import measure_recompile_times
from repro.experiments.runners import TOOL_ODINCOV, TOOL_SANCOV
from repro.programs.registry import get_program


class TestBuildBreakdown:
    @pytest.fixture(scope="class")
    def libxml2(self):
        p = get_program("libxml2")
        return measure_build(p.name, p.source)

    def test_stage_fractions_match_paper_shape(self, libxml2):
        """Fig. 3: build system ~38%, frontend ~16%, opt+instr largest
        compute stage, linker well under 1%."""
        f = libxml2.fractions()
        assert 0.25 <= f["build_system"] <= 0.50
        assert 0.08 <= f["frontend"] <= 0.25
        assert f["opt_instrument"] > f["codegen"]
        assert f["link"] < 0.05

    def test_autogen_configure_ratio(self, libxml2):
        assert libxml2.autogen_ms > libxml2.configure_ms

    def test_odin_savings_around_45_percent(self, libxml2):
        """§2.3: eliminating build system + frontend saves ~45%."""
        assert 0.35 <= libxml2.odin_savings() <= 0.60

    def test_recompile_scope_excludes_frontend(self, libxml2):
        assert libxml2.recompile_scope_ms() < libxml2.total_ms / 2

    def test_larger_program_costs_more(self):
        small = get_program("json")
        large = get_program("sqlite")
        b_small = measure_build(small.name, small.source)
        b_large = measure_build(large.name, large.source)
        assert b_large.total_ms > b_small.total_ms


class TestExperimentHarnessSmall:
    """Shape checks of the per-figure harness on a 2-program subset (the
    full suite runs in benchmarks/)."""

    @pytest.fixture(scope="class")
    def programs(self):
        return [get_program("x509"), get_program("libjpeg")]

    def test_overhead_ordering(self, programs):
        summary = measure_overheads(programs, tools=[TOOL_ODINCOV, TOOL_SANCOV])
        for row in summary.rows:
            assert row.normalized(TOOL_ODINCOV) < row.normalized(TOOL_SANCOV)
            assert row.normalized(TOOL_ODINCOV) < 1.10

    def test_partition_variants_ordering(self, programs):
        summary = measure_partition_variants(programs)
        for row in summary.rows:
            assert row.num_fragments["one"] == 1
            assert row.num_fragments["max"] >= row.num_fragments["odin"]
            # MaxPartition is never *faster* than Odin beyond noise.
            assert row.normalized("max") >= row.normalized("odin") - 0.02

    def test_recompile_times_shape(self, programs):
        summary = measure_recompile_times(programs)
        for program in summary.programs():
            one = summary.row(program, "one")
            odin = summary.row(program, "odin")
            maxp = summary.row(program, "max")
            assert one.num_fragments == 1
            # Average fragment compile: one >= odin >= max.
            assert one.average_ms >= odin.average_ms >= maxp.average_ms
            # Worst case never exceeds the whole-program compile.
            assert odin.worst_ms <= one.worst_ms + 1e-9
            assert one.link_ms > 0
