"""End-to-end integration tests: the full Odin workflow on real targets."""

import pytest

from repro.core.engine import Odin
from repro.core.partition import STRATEGY_MAX, STRATEGY_ONE
from repro.fuzz.executor import OdinCovExecutor
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.vm.interpreter import VM
from tests.conftest import cached_build, fresh_module, run_entry


class TestOdinCovLifecycle:
    """The complete §5 workflow on the json target."""

    @pytest.fixture(scope="class")
    def deployed(self):
        engine = Odin(fresh_module("json"), preserve=("main", "run_input"))
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        tool.build()
        return tool

    def test_instrumented_outputs_match_plain(self, deployed):
        plain = cached_build("json", 2)
        for seed in get_program("json").seeds()[:6]:
            instrumented = run_entry(
                deployed.engine.executable, "run_input", seed,
                probe_runtime=deployed.runtime,
            )
            reference = run_entry(plain.executable, "run_input", seed)
            assert instrumented.exit_code == reference.exit_code

    def test_prune_cycle_preserves_behaviour_and_improves_speed(self, deployed):
        seeds = get_program("json").seeds()
        executor = OdinCovExecutor(deployed)
        before = [executor.execute(s) for s in seeds]
        report = executor.prune()
        assert report.pruned > 0
        after = [executor.execute(s) for s in seeds]
        for b, a in zip(before, after):
            assert b.result.exit_code == a.result.exit_code
        assert sum(a.result.cycles for a in after) < sum(
            b.result.cycles for b in before
        )

    def test_rebuild_scope_is_partial(self, deployed):
        """After the big prune, touching one probe recompiles only its
        fragment; the rest of the cache is reused."""
        engine = deployed.engine
        if not deployed.probes:
            pytest.skip("all probes pruned")
        probe = next(iter(deployed.probes.values()))
        engine.manager.mark_changed(probe)
        report = engine.rebuild()
        assert report.cache_reused > 0


class TestVariantEquivalence:
    """All three partition variants produce semantically equal binaries."""

    @pytest.mark.parametrize("program", ["harfbuzz", "x509"])
    def test_variants_agree_with_baseline(self, program):
        seeds = get_program(program).seeds()[:5]
        plain = cached_build(program, 2)
        reference = [
            run_entry(plain.executable, "run_input", s).exit_code for s in seeds
        ]
        for strategy in ("one", "odin", "max"):
            engine = Odin(
                fresh_module(program), strategy=strategy,
                preserve=("main", "run_input"),
            )
            engine.initial_build()
            got = [
                run_entry(engine.executable, "run_input", s).exit_code
                for s in seeds
            ]
            assert got == reference, strategy


class TestRecompilationScaling:
    def test_fragment_recompile_cheaper_than_whole(self):
        """The core Fig. 11 claim as an invariant: changing one probe under
        the Odin partition recompiles less than under OnePartition, with
        identical instrumentation on both sides."""

        def single_probe_rebuild_cost(strategy):
            engine = Odin(
                fresh_module("libxml2"), strategy=strategy,
                preserve=("main", "run_input"),
            )
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            tool.build()
            probe = min(tool.probes.values(), key=lambda p: p.id)
            engine.manager.mark_changed(probe)
            return engine.rebuild().total_compile_ms

        whole = single_probe_rebuild_cost(STRATEGY_ONE)
        partial = single_probe_rebuild_cost("odin")
        assert partial < whole

    def test_max_partition_compiles_fragments_fastest(self):
        module_odin = fresh_module("x509")
        module_max = fresh_module("x509")
        odin = Odin(module_odin, preserve=("main", "run_input"))
        maxp = Odin(module_max, strategy=STRATEGY_MAX, preserve=("main", "run_input"))
        r_odin = odin.initial_build()
        r_max = maxp.initial_build()
        avg_odin = r_odin.total_compile_ms / len(r_odin.fragment_ids)
        avg_max = r_max.total_compile_ms / len(r_max.fragment_ids)
        assert avg_max <= avg_odin


class TestMultiSchemeCoexistence:
    def test_coverage_and_cmplog_together(self):
        from repro.instrument.cmplog import CmpLogRuntime, add_cmp_probes

        engine = Odin(fresh_module("x509"), preserve=("main", "run_input"))
        tool = OdinCov(engine, prune=False)
        tool.add_all_block_probes()
        cmp_probes = add_cmp_probes(engine, functions={"run_input", "parse_tlv"})
        tool.build()
        cmplog = CmpLogRuntime()
        executor = OdinCovExecutor(tool, extra_runtime=cmplog)
        seed = get_program("x509").seeds()[0]
        outcome = executor.execute(seed)
        assert outcome.result.trap is None
        assert outcome.coverage          # coverage probes fired
        assert cmplog.pairs              # cmplog probes fired too
