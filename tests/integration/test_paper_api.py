"""The paper's §4 user-facing API, transliterated.

The paper shows three snippets: a ``CmpProbe`` class with free-form
annotations, the ``PatchManager`` add/remove/change interface, and the
schedule → map → instrument → rebuild loop.  These tests write the same
code in this library's Python API and verify each claimed capability.
"""

from repro.core.engine import Odin
from repro.core.probe import InstructionProbe
from repro.frontend.codegen import compile_source
from repro.ir.builder import IRBuilder
from repro.ir.instructions import IcmpInst
from repro.ir.types import FunctionType, I64, VOID
from repro.ir.values import ConstantInt
from repro.vm.interpreter import ProbeRuntime, VM

SOURCE = r"""
static int check(int value, int other) {
    if (value == other) return 1;
    if (value < 10) return 2;
    return 0;
}

int run_input(const char *data, long size) {
    if (size < 2) return -1;
    return check((int)data[0], (int)data[1]);
}

int main(void) { return 0; }
"""

_FN_TYPE = FunctionType(VOID, (I64, I64, I64))


class CmpProbe(InstructionProbe):
    """The paper's CmpProbe, §4 — including free-form annotations."""

    def __init__(self, the_cmp):
        super().__init__(the_cmp)
        self.the_cmp = the_cmp               # "The comparison to instrument."
        self.last_observed_value = None      # "Dynamic information from profiling."
        self.notes = {"anything": ["goes", "here"]}  # std::vector/DenseMap-ish

    # "The framework invokes this method to find the function to patch."
    def get_patch_target(self):
        return self.the_cmp.function

    def instrument(self, builder: IRBuilder, mapped, sched) -> None:
        # "User logic comes here.  It is similar to static instrumentation:
        #  just manipulate the IR with the builder."
        runtime = sched.declare_runtime("__cmplog_hit", _FN_TYPE)
        lhs = builder.zext(mapped.operands[0], I64) \
            if mapped.operands[0].type.is_integer() and mapped.operands[0].type.bits < 64 \
            else mapped.operands[0]
        rhs = builder.zext(mapped.operands[1], I64) \
            if mapped.operands[1].type.is_integer() and mapped.operands[1].type.bits < 64 \
            else mapped.operands[1]
        builder.call(runtime, [ConstantInt(I64, self.id), lhs, rhs], _FN_TYPE)


class Recorder(ProbeRuntime):
    def __init__(self):
        self.events = []

    def on_probe(self, kind, probe_id, args, vm):
        self.events.append((kind, probe_id, args))


def comparisons_of(module, fn_name):
    return [
        i for i in module.get(fn_name).instructions() if isinstance(i, IcmpInst)
    ]


class TestPaperSection4API:
    def test_probe_lifecycle_and_patch_loop(self):
        module = compile_source(SOURCE, "t")
        engine = Odin(module, preserve=("main", "run_input"))
        manager = engine.manager

        cmps = comparisons_of(module, "check")
        assert len(cmps) >= 2

        # Probes can be added...
        probe_a = manager.add(CmpProbe(cmps[0]))
        probe_b = manager.add(CmpProbe(cmps[1]))
        # ... queried ...
        assert manager.get_probe(probe_a.id) is probe_a
        # ... and their probe-specific state changed freely.
        probe_a.last_observed_value = 0xBEEF
        probe_a.notes["anything"].append("more")

        # getPatchTarget analogue resolves the function to patch.
        assert probe_a.get_patch_target().name == "check"

        engine.initial_build()

        recorder = Recorder()
        vm = VM(engine.executable, probe_runtime=recorder)
        addr = vm.alloc(3)
        vm.write_bytes(addr, bytes([5, 9]))
        result = vm.run("run_input", (addr, 2), reset=False)
        assert result.trap is None
        fired = {pid for _, pid, _ in recorder.events}
        assert probe_a.id in fired and probe_b.id in fired

        # Probes can be removed; the recompile drops their code.
        manager.remove(probe_b)
        report = engine.rebuild()
        assert report.probes_applied == 1  # only probe_a reapplied

        recorder.events.clear()
        vm = VM(engine.executable, probe_runtime=recorder)
        addr = vm.alloc(3)
        vm.write_bytes(addr, bytes([5, 9]))
        vm.run("run_input", (addr, 2), reset=False)
        fired = {pid for _, pid, _ in recorder.events}
        assert probe_a.id in fired and probe_b.id not in fired

    def test_scheduler_map_and_lookup(self):
        """The explicit schedule/map/rebuild loop from the paper listing."""
        module = compile_source(SOURCE, "t")
        engine = Odin(module, preserve=("main", "run_input"))
        cmps = comparisons_of(module, "check")
        probes = [engine.manager.add(CmpProbe(c)) for c in cmps]
        engine.manager._dirty_symbols.update(engine.fragdef.owner.keys())

        sched = engine.manager.schedule()
        assert set(probes) <= set(sched.active_probes)
        for probe in sched.active_probes:
            if not isinstance(probe, CmpProbe):
                continue
            # "Get the temporary instruction cloned for this recompilation."
            the_cmp = sched.map(probe.the_cmp)
            assert isinstance(the_cmp, IcmpInst)
            assert the_cmp is not probe.the_cmp
            builder = IRBuilder.before(the_cmp)
            probe.instrument(builder, the_cmp, sched)
        report = sched.rebuild()
        assert engine.executable is not None
        assert report.fragment_ids

    def test_instrumentation_author_loc_claim(self):
        """§5.1: OdinCov's probe setup + instrumentation + prune logic is
        ~33 lines, versus ~600 for DrCov.  Count ours."""
        import inspect

        from repro.instrument import coverage

        probe_src = inspect.getsource(coverage.CovProbe)
        prune_src = inspect.getsource(coverage.OdinCov.prune_covered)
        setup_src = inspect.getsource(coverage.OdinCov.add_all_block_probes)
        total = sum(
            1
            for line in (probe_src + prune_src + setup_src).splitlines()
            if line.strip() and not line.strip().startswith(("#", '"""', "'''"))
        )
        assert total < 60, "probe logic must stay tiny (paper: 33 LoC)"
