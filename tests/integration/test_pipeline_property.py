"""Property-based whole-pipeline differential testing.

Hypothesis generates random MiniC expression trees and small programs;
each is compiled at O0 and O2 and executed on several inputs.  Any
divergence means an optimizer or backend bug.  This is the strongest
single invariant in the repo: it closes the loop over frontend, every
optimization pass, instruction selection, linking and the VM.
"""

from hypothesis import given, settings, strategies as st

from repro.toolchain import build
from repro.vm.interpreter import VM

# -- random expression generator ------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>"]
_CMPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def expr(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return str(draw(st.integers(-100, 100)))
        if kind == 1:
            return draw(st.sampled_from(["a", "b", "c"]))
        return str(draw(st.integers(1, 7)))  # small shift-safe constant
    op = draw(st.sampled_from(_BINOPS + _CMPS))
    lhs = draw(expr(depth=depth - 1))
    rhs = draw(expr(depth=depth - 1))
    if op in ("<<", ">>"):
        rhs = str(draw(st.integers(0, 7)))  # keep shifts well-defined
    if op == "*":
        # Bound multiplication chains to avoid huge trees of wraps only.
        return f"(({lhs}) {op} (({rhs}) & 15))"
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def program(draw):
    body = draw(expr(depth=4))
    loop_bound = draw(st.integers(0, 6))
    accumulate = draw(st.sampled_from(["+", "^"]))
    return f"""
int compute(int a, int b, int c) {{
    int acc = 0;
    int i;
    for (i = 0; i < {loop_bound}; i++) {{
        acc = acc {accumulate} ({body});
        a = a + 1;
    }}
    return acc {accumulate} ({body});
}}

int main() {{ return 0; }}
"""


class TestRandomProgramDifferential:
    @settings(max_examples=40, deadline=None)
    @given(program(), st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_o0_equals_o2(self, source, a, b, c):
        exe0 = build(source, "rand", opt_level=0).executable
        exe2 = build(source, "rand", opt_level=2).executable
        args = tuple(x & 0xFFFFFFFF for x in (a, b, c))
        r0 = VM(exe0).run("compute", args)
        r2 = VM(exe2).run("compute", args)
        assert r0.trap == r2.trap
        if r0.trap is None:
            assert r0.exit_code == r2.exit_code, source

    @settings(max_examples=25, deadline=None)
    @given(program(), st.integers(-9, 9))
    def test_odin_fragments_equal_whole(self, source, a):
        """Odin's fragment compilation must match classic compilation."""
        from repro.core.engine import Odin
        from repro.frontend.codegen import compile_source

        exe_whole = build(source, "rand", opt_level=2).executable
        engine = Odin(
            compile_source(source, "rand"), preserve=("main", "compute")
        )
        engine.initial_build()
        args = (a & 0xFFFFFFFF, 3, 5)
        r_whole = VM(exe_whole).run("compute", args)
        r_odin = VM(engine.executable).run("compute", args)
        assert r_whole.trap == r_odin.trap
        if r_whole.trap is None:
            assert r_whole.exit_code == r_odin.exit_code, source
