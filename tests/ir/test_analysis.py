"""Tests for CFG analyses: RPO, dominators, loops, call graph, SCCs."""

from repro.ir.analysis import (
    bottom_up_sccs,
    call_graph,
    compute_dominators,
    dominates,
    executable_blocks,
    feasible_successors,
    find_loops,
    predecessor_map,
    reachable_blocks,
)
from repro.ir.parser import parse_module

DIAMOND = """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  %r = phi i32 [ 1, %left ], [ 2, %right ]
  ret i32 %r
}
"""

LOOP = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %latch, label %exit
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"""


class TestReachability:
    def test_rpo_starts_at_entry(self):
        fn = parse_module(DIAMOND).get("f")
        order = reachable_blocks(fn)
        assert order[0].name == "entry"
        assert {b.name for b in order} == {"entry", "left", "right", "join"}

    def test_rpo_dominators_precede(self):
        fn = parse_module(LOOP).get("f")
        order = [b.name for b in reachable_blocks(fn)]
        assert order.index("entry") < order.index("header")
        assert order.index("header") < order.index("latch")

    def test_unreachable_excluded(self):
        fn = parse_module(
            "define void @f() {\nentry:\n  ret void\ndead:\n  ret void\n}"
        ).get("f")
        assert [b.name for b in reachable_blocks(fn)] == ["entry"]


class TestDominators:
    def test_diamond_idoms(self):
        fn = parse_module(DIAMOND).get("f")
        idom = compute_dominators(fn)
        by_name = {b.name: b for b in fn.blocks}
        assert idom[by_name["entry"]] is None
        assert idom[by_name["left"]].name == "entry"
        assert idom[by_name["right"]].name == "entry"
        assert idom[by_name["join"]].name == "entry"

    def test_dominates_reflexive_and_transitive(self):
        fn = parse_module(LOOP).get("f")
        idom = compute_dominators(fn)
        by_name = {b.name: b for b in fn.blocks}
        assert dominates(idom, by_name["entry"], by_name["exit"])
        assert dominates(idom, by_name["header"], by_name["latch"])
        assert dominates(idom, by_name["header"], by_name["header"])
        assert not dominates(idom, by_name["latch"], by_name["header"])


class TestLoops:
    def test_natural_loop_found(self):
        fn = parse_module(LOOP).get("f")
        loops = find_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.name == "header"
        assert loop.latch.name == "latch"
        assert {b.name for b in loop.blocks} == {"header", "latch"}

    def test_no_loops_in_diamond(self):
        fn = parse_module(DIAMOND).get("f")
        assert find_loops(fn) == []


# Two blocks branching into each other with distinct outside entries:
# neither header dominates the other, so no back edge is a natural loop.
IRREDUCIBLE = """
define i32 @f(i1 %c, i1 %k) {
entry:
  br i1 %c, label %a, label %b
a:
  br i1 %k, label %b, label %exit
b:
  br i1 %k, label %a, label %exit
exit:
  ret i32 0
}
"""


class TestIrregularCFGs:
    def test_irreducible_idoms_collapse_to_entry(self):
        fn = parse_module(IRREDUCIBLE).get("f")
        idom = compute_dominators(fn)
        by_name = {b.name: b for b in fn.blocks}
        assert idom[by_name["a"]].name == "entry"
        assert idom[by_name["b"]].name == "entry"
        assert idom[by_name["exit"]].name == "entry"

    def test_irreducible_cycle_is_not_a_natural_loop(self):
        fn = parse_module(IRREDUCIBLE).get("f")
        assert find_loops(fn) == []

    def test_dominators_ignore_unreachable_predecessor(self):
        # %dead branches into %join; it must not disturb join's idom.
        fn = parse_module(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %left, label %join
left:
  br label %join
join:
  ret i32 0
dead:
  br label %join
}
"""
        ).get("f")
        idom = compute_dominators(fn)
        by_name = {b.name: b for b in fn.blocks}
        assert idom[by_name["join"]].name == "entry"
        assert by_name["dead"] not in idom

    def test_loop_body_excludes_unreachable_predecessor(self):
        # %dead jumps into the loop body; it can never execute, so it
        # must not leak into the natural loop's block set.
        fn = parse_module(
            """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %latch, label %exit
latch:
  %next = add i32 %i, 1
  br label %header
dead:
  br label %latch
exit:
  ret i32 %i
}
"""
        ).get("f")
        loops = find_loops(fn)
        assert len(loops) == 1
        assert {b.name for b in loops[0].blocks} == {"header", "latch"}


class TestExecutableReachability:
    CONST_BRANCH = """
define i32 @f() {
entry:
  br i1 1, label %live, label %dead_arm
live:
  ret i32 1
dead_arm:
  ret i32 0
}
"""

    def test_constant_branch_has_one_feasible_successor(self):
        fn = parse_module(self.CONST_BRANCH).get("f")
        entry = fn.get_block("entry")
        assert [b.name for b in feasible_successors(entry)] == ["live"]
        # Plain CFG reachability still sees both arms.
        assert len(entry.successors()) == 2

    def test_executable_blocks_exclude_dead_arm(self):
        fn = parse_module(self.CONST_BRANCH).get("f")
        assert {b.name for b in executable_blocks(fn)} == {"entry", "live"}
        assert {b.name for b in reachable_blocks(fn)} == {
            "entry", "live", "dead_arm"
        }

    def test_constant_switch_follows_matching_case(self):
        fn = parse_module(
            """
define i32 @f() {
entry:
  switch i32 2, label %other [ i32 2, label %two ]
two:
  ret i32 2
other:
  ret i32 0
}
"""
        ).get("f")
        assert [b.name for b in feasible_successors(fn.entry)] == ["two"]

    def test_constant_switch_falls_back_to_default(self):
        fn = parse_module(
            """
define i32 @f() {
entry:
  switch i32 7, label %other [ i32 2, label %two ]
two:
  ret i32 2
other:
  ret i32 0
}
"""
        ).get("f")
        assert [b.name for b in feasible_successors(fn.entry)] == ["other"]

    def test_non_constant_condition_keeps_all_successors(self):
        fn = parse_module(DIAMOND).get("f")
        assert len(feasible_successors(fn.entry)) == 2
        assert executable_blocks(fn) == reachable_blocks(fn)


class TestCallGraph:
    MUTUAL = """
define i32 @even(i32 %n) {
entry:
  %r = call i32 @odd(i32 %n)
  ret i32 %r
}

define i32 @odd(i32 %n) {
entry:
  %r = call i32 @even(i32 %n)
  ret i32 %r
}

define i32 @top() {
entry:
  %r = call i32 @even(i32 4)
  ret i32 %r
}
"""

    def test_call_graph_edges(self):
        graph = call_graph(parse_module(self.MUTUAL))
        assert graph["even"] == {"odd"}
        assert graph["top"] == {"even"}

    def test_sccs_bottom_up(self):
        sccs = bottom_up_sccs(parse_module(self.MUTUAL))
        assert ["even", "odd"] in sccs
        flat = [name for scc in sccs for name in scc]
        # Callee SCC appears before the caller.
        assert flat.index("even") < flat.index("top")

    def test_predecessor_map(self):
        fn = parse_module(DIAMOND).get("f")
        preds = predecessor_map(fn)
        by_name = {b.name: b for b in fn.blocks}
        assert {b.name for b in preds[by_name["join"]]} == {"left", "right"}
