"""Tests for module cloning and fragment extraction."""

import pytest

from repro.errors import IRError
from repro.ir.clone import ValueMap, clone_module, extract_module, extract_module_ex
from repro.ir.module import Function
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.values import GlobalVariable
from repro.ir.verifier import verify_module

PROGRAM = """
@fmt = internal const [4 x i8] c"%d\\0A\\00"
@n = global i32 0

declare i32 @printf(ptr, ...)

define internal i32 @add_n(i32 %x) {
entry:
  %v = load i32, ptr @n
  %r = add i32 %v, %x
  ret i32 %r
}

define i32 @main() {
entry:
  %r = call i32 @add_n(i32 5)
  %ignore = call i32 @printf(ptr @fmt, i32 %r)
  ret i32 %r
}
"""


class TestCloneModule:
    def test_clone_is_identical_text(self):
        m = parse_module(PROGRAM)
        cloned = clone_module(m)
        verify_module(cloned.module)
        assert print_module(cloned.module) == print_module(m)

    def test_clone_shares_nothing(self):
        m = parse_module(PROGRAM)
        cloned = clone_module(m)
        # Mutating the clone leaves the original alone.
        cloned.module.get("main").blocks[0].instructions[0].erase()
        assert print_module(m) == print_module(parse_module(PROGRAM))

    def test_value_map_translates_instructions(self):
        m = parse_module(PROGRAM)
        cloned = clone_module(m)
        original_inst = m.get("main").entry.instructions[0]
        mapped = cloned.map(original_inst)
        assert mapped is not original_inst
        assert mapped.opcode == original_inst.opcode
        assert mapped.function.name == "main"

    def test_unreachable_blocks_dropped(self):
        m = parse_module(
            """
define i32 @f() {
entry:
  ret i32 1
dead:
  ret i32 2
}
"""
        )
        cloned = clone_module(m)
        assert len(cloned.module.get("f").blocks) == 1


class TestExtractModule:
    def test_imports_created_for_missing_symbols(self):
        m = parse_module(PROGRAM)
        frag = extract_module(m, ["main"])
        verify_module(frag)
        assert frag.get("add_n").is_declaration()
        assert frag.get("printf").is_declaration()
        assert frag.get("fmt").is_declaration()

    def test_copy_on_use_clones_internally(self):
        m = parse_module(PROGRAM)
        frag = extract_module(m, ["main"], copy_on_use=["fmt"])
        fmt = frag.get("fmt")
        assert not fmt.is_declaration()
        assert fmt.is_internal

    def test_copy_on_use_not_referenced_not_cloned(self):
        m = parse_module(PROGRAM)
        frag = extract_module(m, ["add_n"], copy_on_use=["fmt"])
        assert "fmt" not in frag

    def test_shared_global_imported_not_cloned(self):
        m = parse_module(PROGRAM)
        frag = extract_module(m, ["add_n"])
        assert frag.get("n").is_declaration()

    def test_alias_requires_aliasee(self):
        m = parse_module(PROGRAM + "\n@other = alias @add_n\n")
        with pytest.raises(IRError, match="innate constraint"):
            extract_module(m, ["other"])

    def test_alias_with_aliasee_ok(self):
        m = parse_module(PROGRAM + "\n@other = alias @add_n\n")
        frag = extract_module(m, ["other", "add_n"])
        verify_module(frag)
        assert frag.get("other").aliasee.name == "add_n"

    def test_extract_with_map_translates(self):
        m = parse_module(PROGRAM)
        frag, vmap = extract_module_ex(m, ["main"])
        inst = m.get("main").entry.instructions[0]
        assert vmap.get(inst).function.name == "main"

    def test_extracted_fragment_is_self_contained(self):
        m = parse_module(PROGRAM)
        for symbols in (["main"], ["add_n"], ["main", "add_n"]):
            frag = extract_module(m, symbols, copy_on_use=["fmt"])
            verify_module(frag)


class TestValueMap:
    def test_constants_map_to_themselves(self):
        from repro.ir.values import ConstantInt
        from repro.ir.types import I32

        vmap = ValueMap()
        c = ConstantInt(I32, 3)
        assert vmap.get(c) is c

    def test_unmapped_instruction_raises(self):
        m = parse_module(PROGRAM)
        inst = m.get("main").entry.instructions[0]
        with pytest.raises(IRError):
            ValueMap().get(inst)

    def test_globals_default_to_identity(self):
        m = parse_module(PROGRAM)
        g = m.get("n")
        assert ValueMap().get(g) is g
