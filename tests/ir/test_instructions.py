"""Tests for IR instruction construction and invariants."""

import pytest

from repro.errors import IRError, IRTypeError
from repro.ir.builder import IRBuilder, build_function
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    IcmpInst,
    INVERTED_PREDICATE,
    PhiInst,
    SelectInst,
    StoreInst,
    SWAPPED_PREDICATE,
    SwitchInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import FunctionType, I1, I32, I64, I8, PTR, VOID
from repro.ir.values import ConstantInt, NullPtr


def make_fn():
    m = Module("t")
    return build_function(m, "f", FunctionType(I32, (I32, I32)), ["a", "b"])


class TestBinary:
    def test_type_mismatch_rejected(self):
        with pytest.raises(IRTypeError):
            BinaryInst("add", ConstantInt(I32, 1), ConstantInt(I64, 1))

    def test_unknown_opcode(self):
        with pytest.raises(IRError):
            BinaryInst("fadd", ConstantInt(I32, 1), ConstantInt(I32, 1))

    def test_commutativity(self):
        add = BinaryInst("add", ConstantInt(I32, 1), ConstantInt(I32, 2))
        sub = BinaryInst("sub", ConstantInt(I32, 1), ConstantInt(I32, 2))
        assert add.is_commutative()
        assert not sub.is_commutative()


class TestIcmp:
    def test_produces_i1(self):
        cmp = IcmpInst("slt", ConstantInt(I32, 1), ConstantInt(I32, 2))
        assert cmp.type is I1

    def test_pointer_compare(self):
        cmp = IcmpInst("eq", NullPtr(), NullPtr())
        assert cmp.type is I1

    def test_bad_predicate(self):
        with pytest.raises(IRError):
            IcmpInst("lt", ConstantInt(I32, 1), ConstantInt(I32, 2))

    def test_predicate_tables_are_involutions(self):
        for pred, swapped in SWAPPED_PREDICATE.items():
            assert SWAPPED_PREDICATE[swapped] == pred
        for pred, inv in INVERTED_PREDICATE.items():
            assert INVERTED_PREDICATE[inv] == pred


class TestCasts:
    def test_zext_must_widen(self):
        with pytest.raises(IRTypeError):
            CastInst("zext", ConstantInt(I32, 0), I32)
        with pytest.raises(IRTypeError):
            CastInst("zext", ConstantInt(I32, 0), I8)

    def test_trunc_must_narrow(self):
        with pytest.raises(IRTypeError):
            CastInst("trunc", ConstantInt(I8, 0), I32)

    def test_ptr_int_roundtrip_types(self):
        p2i = CastInst("ptrtoint", NullPtr(), I64)
        assert p2i.type is I64
        i2p = CastInst("inttoptr", ConstantInt(I64, 0), PTR)
        assert i2p.type is PTR


class TestSelect:
    def test_condition_must_be_i1(self):
        with pytest.raises(IRTypeError):
            SelectInst(ConstantInt(I32, 1), ConstantInt(I32, 1), ConstantInt(I32, 2))

    def test_arm_types_must_match(self):
        with pytest.raises(IRTypeError):
            SelectInst(ConstantInt(I1, 1), ConstantInt(I32, 1), ConstantInt(I64, 2))


class TestCalls:
    def test_arity_checked(self):
        m = Module("t")
        callee = m.add(Function("g", FunctionType(VOID, (I32,))))
        with pytest.raises(IRTypeError):
            CallInst(callee, [], callee.function_type)

    def test_vararg_extra_args_allowed(self):
        m = Module("t")
        callee = m.add(Function("g", FunctionType(I32, (PTR,), vararg=True)))
        call = CallInst(callee, [NullPtr(), ConstantInt(I64, 1)], callee.function_type)
        assert call.called_function_name() == "g"

    def test_arg_type_checked(self):
        m = Module("t")
        callee = m.add(Function("g", FunctionType(VOID, (I32,))))
        with pytest.raises(IRTypeError):
            CallInst(callee, [ConstantInt(I64, 0)], callee.function_type)


class TestControlFlow:
    def test_branch_successors(self):
        fn, builder, (a, b) = make_fn()
        t = fn.add_block("t")
        f = fn.add_block("f")
        cond = builder.icmp("slt", a, b)
        br = builder.condbr(cond, t, f)
        assert br.successors() == [t, f]
        assert br.is_conditional

    def test_switch_duplicate_case_rejected(self):
        fn, builder, (a, _) = make_fn()
        d = fn.add_block("d")
        sw = builder.switch(a, d)
        c = fn.add_block("c")
        sw.add_case(ConstantInt(I32, 1), c)
        with pytest.raises(IRError):
            sw.add_case(ConstantInt(I32, 1), c)

    def test_switch_case_type_checked(self):
        fn, builder, (a, _) = make_fn()
        d = fn.add_block("d")
        sw = builder.switch(a, d)
        with pytest.raises(IRTypeError):
            sw.add_case(ConstantInt(I64, 1), d)

    def test_terminator_blocks_further_appends(self):
        fn, builder, (a, _) = make_fn()
        builder.ret(a)
        with pytest.raises(IRError):
            builder.ret(a)


class TestPhi:
    def test_incoming_type_checked(self):
        fn, builder, _ = make_fn()
        phi = PhiInst(I32)
        with pytest.raises(IRTypeError):
            phi.add_incoming(ConstantInt(I64, 0), fn.entry)

    def test_replace_uses_covers_incomings(self):
        fn, builder, (a, b) = make_fn()
        phi = PhiInst(I32)
        phi.add_incoming(a, fn.entry)
        assert phi.replace_uses_of(a, b) == 1
        assert phi.incoming[0][0] is b

    def test_incoming_for_missing_block(self):
        fn, _, _ = make_fn()
        phi = PhiInst(I32)
        with pytest.raises(IRError):
            phi.incoming_for(fn.entry)


class TestRewriting:
    def test_replace_uses_of(self):
        fn, builder, (a, b) = make_fn()
        add = builder.add(a, a)
        assert add.replace_uses_of(a, b) == 2
        assert add.lhs is b and add.rhs is b

    def test_erase_detaches(self):
        fn, builder, (a, b) = make_fn()
        add = builder.add(a, b)
        add.erase()
        assert add.parent is None
        assert add not in fn.entry.instructions
        with pytest.raises(IRError):
            add.erase()

    def test_side_effects(self):
        fn, builder, (a, b) = make_fn()
        add = builder.add(a, b)
        slot = builder.alloca(I32)
        store = builder.store(a, slot)
        assert not add.has_side_effects()
        assert store.has_side_effects()
