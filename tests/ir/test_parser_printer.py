"""Tests for the textual IR parser and printer (roundtrip + errors)."""

import pytest

from repro.errors import IRParseError
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module

ISLOWER = """
define i1 @islower(i8 %chr) {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ false, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
"""

FULL = """
@str = internal const [7 x i8] c"hello\\0A\\00"
@counter = global i32 0
@table = const [3 x i32] [i32 1, i32 2, i32 3]
@pointer = global ptr null

declare i32 @printf(ptr, ...)

define internal void @helper(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, ptr %p
  %v = load i32, ptr %p
  %g = gep i32, ptr @table, i64 1
  %t = load i32, ptr %g
  %sum = add i32 %v, %t
  store i32 %sum, ptr @counter
  ret void
}

define i32 @main() {
entry:
  call void @helper(i32 41)
  %c = load i32, ptr @counter
  switch i32 %c, label %done [ i32 1, label %one i32 2, label %two ]
one:
  br label %done
two:
  br label %done
done:
  %r = phi i32 [ %c, %entry ], [ 1, %one ], [ 2, %two ]
  %cmp = icmp sgt i32 %r, 0
  %sel = select i1 %cmp, i32 %r, i32 0
  %w = zext i32 %sel to i64
  %n = trunc i64 %w to i8
  %z = freeze i8 %n
  %x = sext i8 %z to i32
  ret i32 %x
}
"""


class TestRoundtrip:
    @pytest.mark.parametrize("source", [ISLOWER, FULL], ids=["islower", "full"])
    def test_print_parse_print_fixpoint(self, source):
        m1 = parse_module(source)
        verify_module(m1)
        text1 = print_module(m1)
        m2 = parse_module(text1)
        verify_module(m2)
        assert print_module(m2) == text1

    def test_forward_references_resolve(self):
        # @callee and @data are defined after their uses.
        m = parse_module(
            """
define i32 @caller() {
entry:
  %r = call i32 @callee()
  %p = gep i8, ptr @data, i64 0
  ret i32 %r
}

define i32 @callee() {
entry:
  ret i32 7
}

@data = const [2 x i8] c"x\\00"
"""
        )
        verify_module(m)
        assert "callee" in m.symbols and "data" in m.symbols

    def test_alias_roundtrip(self):
        src = """
define i32 @base() {
entry:
  ret i32 1
}

@alias_name = alias @base
"""
        m = parse_module(src)
        verify_module(m)
        text = print_module(m)
        assert "@alias_name = alias @base" in text
        m2 = parse_module(text)
        assert m2.get("alias_name").aliasee.name == "base"


class TestParseErrors:
    def test_undefined_value(self):
        with pytest.raises(IRParseError):
            parse_module(
                "define i32 @f() {\nentry:\n  ret i32 %nope\n}"
            )

    def test_undefined_global(self):
        with pytest.raises(IRParseError):
            parse_module(
                "define void @f() {\nentry:\n  call void @missing()\n  ret void\n}"
            )

    def test_redefined_value(self):
        with pytest.raises(IRParseError):
            parse_module(
                "define i32 @f(i32 %a) {\nentry:\n"
                "  %x = add i32 %a, 1\n  %x = add i32 %a, 2\n  ret i32 %x\n}"
            )

    def test_bad_token(self):
        with pytest.raises(IRParseError):
            parse_module("define i32 @f() ???")

    def test_unterminated_body(self):
        with pytest.raises(IRParseError):
            parse_module("define i32 @f() {\nentry:\n  ret i32 0\n")

    def test_phi_forward_reference_to_missing_value(self):
        with pytest.raises(IRParseError):
            parse_module(
                """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %a
a:
  %r = phi i32 [ %ghost, %entry ]
  ret i32 %r
}
"""
            )


class TestStringEscapes:
    def test_hex_escapes_roundtrip(self):
        m = parse_module('@s = const [4 x i8] c"\\00\\FFa\\0A"')
        data = m.get("s").initializer.data
        assert data == b"\x00\xffa\n"
        assert print_module(parse_module(print_module(m))) == print_module(m)


class TestDeclarations:
    def test_global_declaration(self):
        m = parse_module("@ext = declare global i64")
        assert m.get("ext").is_declaration()

    def test_function_declaration_printed_without_names(self):
        m = parse_module("declare i32 @printf(ptr, ...)")
        text = print_module(m)
        assert "declare i32 @printf(ptr, ...)" in text
