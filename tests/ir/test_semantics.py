"""Property-based tests: the shared integer semantics versus Python.

These invariants are what the differential O0/O2 tests ultimately rest on:
if :mod:`repro.ir.semantics` models two's-complement arithmetic correctly,
both the constant folder and the VM do.
"""

import pytest
from hypothesis import given, strategies as st

from repro.ir.semantics import eval_binary, eval_cast, eval_icmp
from repro.ir.types import I16, I32, I64, I8, IntType

TYPES = [I8, I16, I32, I64]


def unsigned(type_):
    return st.integers(min_value=0, max_value=type_.umax)


@st.composite
def typed_pair(draw):
    type_ = draw(st.sampled_from(TYPES))
    return type_, draw(unsigned(type_)), draw(unsigned(type_))


class TestBinaryProperties:
    @given(typed_pair())
    def test_add_matches_python_mod(self, tpl):
        type_, a, b = tpl
        assert eval_binary("add", type_, a, b) == (a + b) % (type_.umax + 1)

    @given(typed_pair())
    def test_sub_add_roundtrip(self, tpl):
        type_, a, b = tpl
        s = eval_binary("add", type_, a, b)
        assert eval_binary("sub", type_, s, b) == a

    @given(typed_pair())
    def test_mul_commutative(self, tpl):
        type_, a, b = tpl
        assert eval_binary("mul", type_, a, b) == eval_binary("mul", type_, b, a)

    @given(typed_pair())
    def test_xor_involutive(self, tpl):
        type_, a, b = tpl
        x = eval_binary("xor", type_, a, b)
        assert eval_binary("xor", type_, x, b) == a

    @given(typed_pair())
    def test_sdiv_matches_c_truncation(self, tpl):
        type_, a, b = tpl
        if b == 0:
            with pytest.raises(ZeroDivisionError):
                eval_binary("sdiv", type_, a, b)
            return
        sa, sb = type_.to_signed(a), type_.to_signed(b)
        if sa == type_.smin and sb == -1:
            return  # overflow case wraps; C leaves it undefined
        expected = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            expected = -expected
        assert type_.to_signed(eval_binary("sdiv", type_, a, b)) == expected

    @given(typed_pair())
    def test_srem_identity(self, tpl):
        """(a / b) * b + (a % b) == a, the C89 identity."""
        type_, a, b = tpl
        if b == 0:
            return
        sa, sb = type_.to_signed(a), type_.to_signed(b)
        if sa == type_.smin and sb == -1:
            return
        q = eval_binary("sdiv", type_, a, b)
        r = eval_binary("srem", type_, a, b)
        back = eval_binary("add", type_, eval_binary("mul", type_, q, b), r)
        assert back == a

    @given(typed_pair())
    def test_udiv_urem_identity(self, tpl):
        type_, a, b = tpl
        if b == 0:
            return
        q = eval_binary("udiv", type_, a, b)
        r = eval_binary("urem", type_, a, b)
        assert q * b + r == a

    @given(st.sampled_from(TYPES), st.integers(0, 2**64 - 1), st.integers(0, 100))
    def test_shifts_beyond_width_well_defined(self, type_, raw, amount):
        a = type_.wrap(raw)
        if amount >= type_.bits:
            assert eval_binary("shl", type_, a, amount) == 0
            assert eval_binary("lshr", type_, a, amount) == 0
            expected = type_.umax if type_.to_signed(a) < 0 else 0
            assert eval_binary("ashr", type_, a, amount) == expected

    @given(typed_pair())
    def test_results_in_range(self, tpl):
        type_, a, b = tpl
        for op in ("add", "sub", "mul", "and", "or", "xor"):
            assert 0 <= eval_binary(op, type_, a, b) <= type_.umax


class TestIcmpProperties:
    @given(typed_pair())
    def test_signed_total_order(self, tpl):
        type_, a, b = tpl
        lt = eval_icmp("slt", type_, a, b)
        gt = eval_icmp("sgt", type_, a, b)
        eq = eval_icmp("eq", type_, a, b)
        assert lt + gt + eq == 1

    @given(typed_pair())
    def test_unsigned_matches_raw(self, tpl):
        type_, a, b = tpl
        assert eval_icmp("ult", type_, a, b) == int(a < b)
        assert eval_icmp("uge", type_, a, b) == int(a >= b)

    @given(typed_pair())
    def test_signed_matches_signed_view(self, tpl):
        type_, a, b = tpl
        assert eval_icmp("sle", type_, a, b) == int(
            type_.to_signed(a) <= type_.to_signed(b)
        )


class TestCastProperties:
    @given(st.integers(0, 255))
    def test_sext_then_trunc_roundtrips(self, a):
        wide = eval_cast("sext", I8, I64, a)
        assert eval_cast("trunc", I64, I8, wide) == a

    @given(st.integers(0, 255))
    def test_zext_preserves_value(self, a):
        assert eval_cast("zext", I8, I32, a) == a

    @given(st.integers(0, 255))
    def test_sext_preserves_signed_value(self, a):
        assert I64.to_signed(eval_cast("sext", I8, I64, a)) == I8.to_signed(a)
