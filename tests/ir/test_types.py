"""Tests for the IR type system."""

import pytest

from repro.errors import IRTypeError
from repro.ir.types import (
    ArrayType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PTR,
    PointerType,
    VOID,
    VoidType,
    type_by_name,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is I32
        assert IntType(8) is IntType(8)

    def test_pointer_is_singleton(self):
        assert PointerType() is PTR

    def test_void_is_singleton(self):
        assert VoidType() is VOID

    def test_array_types_are_interned(self):
        assert ArrayType(I8, 4) is ArrayType(I8, 4)
        assert ArrayType(I8, 4) is not ArrayType(I8, 5)

    def test_function_types_are_interned(self):
        a = FunctionType(I32, (I8, PTR))
        b = FunctionType(I32, (I8, PTR))
        assert a is b
        assert FunctionType(I32, (I8,), vararg=True) is not FunctionType(I32, (I8,))


class TestSizes:
    @pytest.mark.parametrize(
        "type_, size",
        [(I1, 1), (I8, 1), (I16, 2), (I32, 4), (I64, 8), (PTR, 8)],
    )
    def test_scalar_sizes(self, type_, size):
        assert type_.size == size

    def test_array_size(self):
        assert ArrayType(I32, 10).size == 40
        assert ArrayType(ArrayType(I8, 16), 4).size == 64

    def test_void_has_no_size(self):
        with pytest.raises(IRTypeError):
            _ = VOID.size


class TestIntegerSemantics:
    def test_wrap(self):
        assert I8.wrap(256) == 0
        assert I8.wrap(-1) == 255
        assert I32.wrap(2**32 + 5) == 5

    def test_to_signed(self):
        assert I8.to_signed(255) == -1
        assert I8.to_signed(127) == 127
        assert I16.to_signed(0x8000) == -(2**15)

    def test_bounds(self):
        assert I8.smin == -128
        assert I8.smax == 127
        assert I8.umax == 255
        assert I64.smax == 2**63 - 1

    def test_invalid_width_rejected(self):
        with pytest.raises(IRTypeError):
            IntType(7)


class TestPredicates:
    def test_first_class(self):
        assert I32.is_first_class()
        assert PTR.is_first_class()
        assert not VOID.is_first_class()
        assert not ArrayType(I8, 2).is_first_class()

    def test_kind_predicates(self):
        assert I32.is_integer() and not I32.is_pointer()
        assert PTR.is_pointer() and not PTR.is_integer()
        assert VOID.is_void()
        assert ArrayType(I8, 1).is_array()
        assert FunctionType(VOID).is_function()


class TestLookup:
    def test_by_name(self):
        assert type_by_name("i32") is I32
        assert type_by_name("ptr") is PTR
        assert type_by_name("void") is VOID

    def test_unknown_name(self):
        with pytest.raises(IRTypeError):
            type_by_name("i33")


class TestFunctionTypeValidation:
    def test_void_parameter_rejected(self):
        with pytest.raises(IRTypeError):
            FunctionType(I32, (VOID,))

    def test_array_return_rejected(self):
        with pytest.raises(IRTypeError):
            FunctionType(ArrayType(I8, 4))

    def test_str(self):
        assert str(FunctionType(I32, (I8, PTR), vararg=True)) == "i32 (i8, ptr, ...)"
