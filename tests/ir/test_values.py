"""Tests for IR values: constants, globals, aliases."""

import pytest

from repro.errors import IRError, IRTypeError
from repro.ir.module import Function, Module
from repro.ir.types import ArrayType, FunctionType, I32, I8, VOID
from repro.ir.values import (
    ConstantArray,
    ConstantData,
    ConstantInt,
    GlobalAlias,
    GlobalVariable,
    NullPtr,
    UndefValue,
)


class TestConstantInt:
    def test_wraps_to_width(self):
        c = ConstantInt(I8, 300)
        assert c.value == 44

    def test_signed_view(self):
        assert ConstantInt(I8, -1).value == 255
        assert ConstantInt(I8, -1).signed == -1

    def test_equality_by_type_and_value(self):
        assert ConstantInt(I32, 7) == ConstantInt(I32, 7)
        assert ConstantInt(I32, 7) != ConstantInt(I8, 7)
        assert hash(ConstantInt(I32, 7)) == hash(ConstantInt(I32, 7))

    def test_requires_int_type(self):
        with pytest.raises(IRTypeError):
            ConstantInt(VOID, 0)

    def test_ref_renders_signed(self):
        assert ConstantInt(I8, 255).ref() == "-1"


class TestConstantData:
    def test_from_string_appends_nul(self):
        c = ConstantData.from_string("hi")
        assert c.data == b"hi\x00"
        assert c.type is ArrayType(I8, 3)

    def test_escaping(self):
        c = ConstantData(b"a\nb")
        assert c.ref() == 'c"a\\0Ab"'


class TestConstantArray:
    def test_wraps_elements(self):
        c = ConstantArray(I8, [300, -1])
        assert c.values == [44, 255]
        assert c.type is ArrayType(I8, 2)


class TestGlobals:
    def test_global_variable_is_pointer_valued(self):
        g = GlobalVariable("g", I32, ConstantInt(I32, 0))
        assert g.type.is_pointer()
        assert not g.is_declaration()

    def test_declaration(self):
        g = GlobalVariable("g", I32, None)
        assert g.is_declaration()

    def test_invalid_linkage(self):
        with pytest.raises(IRError):
            GlobalVariable("g", I32, None, linkage="weak")

    def test_unnamed_global_rejected(self):
        with pytest.raises(IRError):
            GlobalVariable("", I32, None)


class TestAliases:
    def test_alias_resolves(self):
        fn = Function("f", FunctionType(VOID))
        alias = GlobalAlias("g", fn)
        assert alias.resolve() is fn
        assert not alias.is_declaration()

    def test_alias_to_alias_rejected(self):
        fn = Function("f", FunctionType(VOID))
        a1 = GlobalAlias("a1", fn)
        with pytest.raises(IRError):
            GlobalAlias("a2", a1)


class TestModuleSymbolTable:
    def test_duplicate_symbol_rejected(self):
        m = Module("m")
        m.add(GlobalVariable("x", I32, ConstantInt(I32, 1)))
        with pytest.raises(IRError):
            m.add(GlobalVariable("x", I32, ConstantInt(I32, 2)))

    def test_get_missing(self):
        with pytest.raises(IRError):
            Module("m").get("nope")

    def test_typed_views(self):
        m = Module("m")
        m.add(GlobalVariable("v", I32, ConstantInt(I32, 0)))
        fn = m.add(Function("f", FunctionType(VOID)))
        m.add(GlobalAlias("a", fn))
        assert [g.name for g in m.global_variables()] == ["v"]
        assert [f.name for f in m.functions()] == ["f"]
        assert [a.name for a in m.aliases()] == ["a"]

    def test_declare_function_idempotent(self):
        m = Module("m")
        ft = FunctionType(I32, (I32,))
        f1 = m.declare_function("f", ft)
        f2 = m.declare_function("f", ft)
        assert f1 is f2

    def test_declare_function_type_conflict(self):
        m = Module("m")
        m.declare_function("f", FunctionType(I32, (I32,)))
        with pytest.raises(IRError):
            m.declare_function("f", FunctionType(VOID))


class TestMiscConstants:
    def test_nullptr(self):
        assert NullPtr() == NullPtr()
        assert NullPtr().ref() == "null"

    def test_undef(self):
        u = UndefValue(I32)
        assert u.type is I32
        assert u.ref() == "undef"
