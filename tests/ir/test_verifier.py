"""Tests for the IR verifier: each violation class must be caught."""

import pytest

from repro.errors import VerifierError
from repro.ir.builder import IRBuilder, build_function
from repro.ir.instructions import BinaryInst, PhiInst, RetInst
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.parser import parse_module
from repro.ir.types import FunctionType, I32, VOID
from repro.ir.values import ConstantInt, GlobalAlias, GlobalVariable
from repro.ir.verifier import verify_function, verify_module


def valid_module():
    return parse_module(
        """
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}
"""
    )


class TestBlockShape:
    def test_valid_module_passes(self):
        verify_module(valid_module())

    def test_missing_terminator(self):
        m = Module("m")
        fn, builder, (a,) = build_function(m, "f", FunctionType(I32, (I32,)))
        builder.add(a, a)
        with pytest.raises(VerifierError, match="missing terminator"):
            verify_module(m)

    def test_empty_block(self):
        m = Module("m")
        fn, builder, (a,) = build_function(m, "f", FunctionType(I32, (I32,)))
        builder.ret(a)
        fn.add_block("empty")
        with pytest.raises(VerifierError, match="empty block"):
            verify_module(m)

    def test_phi_after_non_phi(self):
        m = valid_module()
        fn = m.get("f")
        phi = PhiInst(I32)
        phi.parent = fn.entry
        fn.entry.instructions.insert(1, phi)
        with pytest.raises(VerifierError, match="after non-phi"):
            verify_module(m)

    def test_branch_to_foreign_block(self):
        m = Module("m")
        fn1, b1, _ = build_function(m, "f", FunctionType(VOID))
        fn2, b2, _ = build_function(m, "g", FunctionType(VOID))
        foreign = fn2.add_block("x")
        IRBuilder.at_end(foreign).ret()
        b1.br(foreign)
        b2.ret()
        with pytest.raises(VerifierError, match="outside the function"):
            verify_function(fn1, m)


class TestPhiConsistency:
    def test_phi_incoming_mismatch(self):
        m = parse_module(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ 1, %a ]
  ret i32 %r
}
"""
        )
        with pytest.raises(VerifierError, match="does not match predecessors"):
            verify_module(m)


class TestUseValidation:
    def test_reference_to_symbol_outside_module(self):
        m = valid_module()
        other = Module("other")
        stray = other.add(GlobalVariable("stray", I32, ConstantInt(I32, 0)))
        fn = m.get("f")
        builder = IRBuilder.before(fn.entry.instructions[0])
        builder.load(I32, stray)
        with pytest.raises(VerifierError, match="not in the module"):
            verify_module(m)

    def test_use_of_detached_instruction(self):
        m = valid_module()
        fn = m.get("f")
        add = fn.entry.instructions[0]
        ret = fn.entry.instructions[1]
        add.erase()  # ret still references it
        with pytest.raises(VerifierError, match="detached instruction"):
            verify_module(m)

    def test_use_before_definition_in_block(self):
        m = valid_module()
        fn = m.get("f")
        add = fn.entry.instructions[0]
        # Move the add after the ret's position by inserting a use before it.
        use = BinaryInst("add", add, ConstantInt(I32, 1))
        use.parent = fn.entry
        fn.entry.instructions.insert(0, use)
        with pytest.raises(VerifierError, match="before its definition"):
            verify_module(m)

    def test_dominance_violation_across_blocks(self):
        m = parse_module(
            """
define i32 @f(i1 %c, i32 %a) {
entry:
  br i1 %c, label %left, label %right
left:
  %x = add i32 %a, 1
  br label %join
right:
  br label %join
join:
  ret i32 0
}
"""
        )
        fn = m.get("f")
        join = fn.get_block("join")
        x = fn.get_block("left").instructions[0]
        join.instructions[-1] = RetInst(x)
        join.instructions[-1].parent = join
        with pytest.raises(VerifierError, match="does not dominate"):
            verify_module(m)


class TestPhiTypes:
    DIAMOND = """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %r
}
"""

    def test_incoming_type_mismatch(self):
        from repro.ir.types import I64

        m = parse_module(self.DIAMOND)
        phi = m.get("f").get_block("join").instructions[0]
        # A buggy pass rewrites one arm without retyping the value.
        phi.incoming[0] = (ConstantInt(I64, 1), phi.incoming[0][1])
        with pytest.raises(VerifierError, match="has type i64, expected i32"):
            verify_module(m)


CALLER = """
declare i32 @callee(i32, i32)

define i32 @f(i32 %a) {
entry:
  %r = call i32 @callee(i32 %a, i32 1)
  ret i32 %r
}
"""


class TestCallSignatures:
    def _call(self, m):
        return m.get("f").entry.instructions[0]

    def test_argument_count_mismatch(self):
        m = parse_module(CALLER)
        call = self._call(m)
        call.set_args(call.args[:1])  # a pass dropped an argument
        with pytest.raises(VerifierError, match="passes 1 arguments"):
            verify_module(m)

    def test_extra_argument_rejected_for_non_vararg(self):
        m = parse_module(CALLER)
        call = self._call(m)
        call.set_args(list(call.args) + [ConstantInt(I32, 9)])
        with pytest.raises(VerifierError, match="passes 3 arguments"):
            verify_module(m)

    def test_argument_type_mismatch(self):
        from repro.ir.types import I64

        m = parse_module(CALLER)
        call = self._call(m)
        call.set_args([call.args[0], ConstantInt(I64, 1)])
        with pytest.raises(VerifierError, match="argument 1 has type i64"):
            verify_module(m)

    def test_callee_signature_mismatch(self):
        # Rebuild the callee with a different signature while the call
        # site keeps the stale function_type (the DAE hazard).
        m = parse_module(CALLER)
        call = self._call(m)
        old = m.get("callee")
        m.symbols.pop("callee")
        fresh = m.add(Function("callee", FunctionType(I32, (I32,))))
        call.replace_uses_of(old, fresh)
        with pytest.raises(VerifierError, match="but the callee is declared"):
            verify_module(m)

    def test_valid_call_passes(self):
        verify_module(parse_module(CALLER))


class TestAliasConstraints:
    def test_alias_to_declaration_rejected(self):
        m = Module("m")
        decl = m.add(Function("ext", FunctionType(VOID)))
        m.add(GlobalAlias("a", decl))
        with pytest.raises(VerifierError, match="must be defined"):
            verify_module(m)

    def test_alias_target_missing_from_module(self):
        m = Module("m")
        other = Module("other")
        fn, builder, _ = build_function(other, "f", FunctionType(VOID))
        builder.ret()
        m.add(GlobalAlias("a", fn))
        with pytest.raises(VerifierError, match="not in the module"):
            verify_module(m)
