"""Direct unit tests for the bounded LRU :class:`LinkCache`.

The cache was previously covered only indirectly through service-level
suites; these tests pin down its contract — LRU eviction order, hit/miss
accounting, bound validation, and the epoch semantics of ``clear()``.
"""

import pytest

from repro.linker.cache import LinkCache


def _key(tag: str):
    return (f"variant={tag}", f"obj-{tag}")


class TestLinkCacheLRU:
    def test_eviction_drops_least_recently_used(self):
        cache = LinkCache(max_entries=3)
        for tag in ("a", "b", "c"):
            cache.put(_key(tag), f"exe-{tag}")
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get(_key("a")) == "exe-a"
        cache.put(_key("d"), "exe-d")
        assert len(cache) == 3
        assert cache.get(_key("b")) is None
        assert cache.get(_key("a")) == "exe-a"
        assert cache.get(_key("c")) == "exe-c"
        assert cache.get(_key("d")) == "exe-d"

    def test_put_refreshes_recency(self):
        cache = LinkCache(max_entries=2)
        cache.put(_key("a"), "exe-a")
        cache.put(_key("b"), "exe-b")
        # Re-putting "a" makes "b" the eviction candidate.
        cache.put(_key("a"), "exe-a2")
        cache.put(_key("c"), "exe-c")
        assert cache.get(_key("b")) is None
        assert cache.get(_key("a")) == "exe-a2"

    def test_eviction_respects_bound(self):
        cache = LinkCache(max_entries=2)
        for tag in "abcdef":
            cache.put(_key(tag), f"exe-{tag}")
        assert len(cache) == 2


class TestLinkCacheAccounting:
    def test_hit_and_miss_counters(self):
        cache = LinkCache()
        assert cache.get(_key("a")) is None
        cache.put(_key("a"), "exe-a")
        assert cache.get(_key("a")) == "exe-a"
        assert cache.get(_key("a")) == "exe-a"
        assert cache.get(_key("x")) is None
        assert cache.hits == 2
        assert cache.misses == 2
        assert cache.stats() == {"entries": 1, "hits": 2, "misses": 2}

    def test_clear_resets_stats(self):
        # Regression: clear() used to drop entries but keep the old
        # epoch's hit/miss counters, so post-clear stats() lied.
        cache = LinkCache()
        cache.put(_key("a"), "exe-a")
        cache.get(_key("a"))
        cache.get(_key("missing"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}
        # The new epoch accounts from zero.
        assert cache.get(_key("a")) is None
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 1}

    def test_reset_stats_keeps_entries(self):
        cache = LinkCache()
        cache.put(_key("a"), "exe-a")
        cache.get(_key("a"))
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.get(_key("a")) == "exe-a"


class TestLinkCacheValidation:
    @pytest.mark.parametrize("bad", [0, -1, -32])
    def test_rejects_nonpositive_bound(self, bad):
        with pytest.raises(ValueError):
            LinkCache(max_entries=bad)

    def test_minimum_bound_of_one(self):
        cache = LinkCache(max_entries=1)
        cache.put(_key("a"), "exe-a")
        cache.put(_key("b"), "exe-b")
        assert len(cache) == 1
        assert cache.get(_key("b")) == "exe-b"
