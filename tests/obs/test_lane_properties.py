"""Property tests for the lane-accounting pair (satellite of the tiered
fast path).

``compile_makespan`` prices a batch and ``assign_lanes`` replays exactly
that LPT schedule to place per-fragment spans.  The tiered engine now
feeds them cost vectors where cache hits cost 0.0 and patches cost
fractions of a millisecond, interleaved arbitrarily with full compiles —
the properties below pin down that zero-cost entries can never perturb
the schedule:

* the busiest lane always ends exactly at the makespan;
* within a lane, spans tile contiguously from zero — no gaps, no overlap;
* inserting zero-cost entries anywhere leaves every nonzero entry's
  (lane, start) placement unchanged, and the makespan unchanged;
* one worker degenerates to the serial prefix-sum clock.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import assign_lanes, compile_makespan

# Costs mix realistic tiers: zero (cache hits), tiny (patches), big
# (full compiles).  Integers scaled down keep float addition exact
# enough for equality checks on sums of small lists.
cost = st.one_of(
    st.just(0.0),
    st.integers(1, 50).map(lambda n: n / 100.0),   # patch-sized
    st.integers(1, 400).map(lambda n: float(n)),   # compile-sized
)
costs_lists = st.lists(cost, min_size=0, max_size=24)
workers = st.integers(1, 6)


def lane_loads(costs, lanes, n_workers):
    loads = [0.0] * n_workers
    for c, lane in zip(costs, lanes):
        loads[lane] += c
    return loads


@settings(max_examples=200, deadline=None)
@given(costs_lists, workers)
def test_busiest_lane_ends_at_makespan(costs, n):
    lanes, starts = assign_lanes(costs, n)
    span_ends = [s + c for s, c in zip(starts, costs)]
    makespan = compile_makespan(costs, n)
    assert (max(span_ends) if span_ends else 0.0) == makespan


@settings(max_examples=200, deadline=None)
@given(costs_lists, workers)
def test_lanes_tile_without_gaps(costs, n):
    lanes, starts = assign_lanes(costs, n)
    per_lane = {}
    for i, lane in enumerate(lanes):
        per_lane.setdefault(lane, []).append((starts[i], costs[i]))
    for spans in per_lane.values():
        spans.sort()
        cursor = 0.0
        for start, c in spans:
            assert start == cursor
            cursor += c


@settings(max_examples=200, deadline=None)
@given(costs_lists, workers, st.data())
def test_zero_cost_entries_never_displace_real_work(costs, n, data):
    """Interleaving cache hits anywhere is schedule-invariant."""
    nonzero = [c for c in costs if c > 0.0]
    base_lanes, base_starts = assign_lanes(nonzero, n)
    base = list(zip(base_lanes, base_starts))

    # Splice the zero-cost entries back at random positions.
    mixed = list(nonzero)
    zeros = len(costs) - len(nonzero)
    for _ in range(zeros):
        pos = data.draw(st.integers(0, len(mixed)))
        mixed.insert(pos, 0.0)

    mixed_lanes, mixed_starts = assign_lanes(mixed, n)
    placed = [
        (mixed_lanes[i], mixed_starts[i])
        for i, c in enumerate(mixed)
        if c > 0.0
    ]
    assert placed == base
    assert compile_makespan(mixed, n) == compile_makespan(nonzero, n)
    # Zero-cost spans still land *inside* the schedule, never past the
    # makespan — their spans must not stretch the compile stage.
    makespan = compile_makespan(mixed, n)
    for i, c in enumerate(mixed):
        if c == 0.0:
            assert mixed_starts[i] <= makespan


@settings(max_examples=100, deadline=None)
@given(costs_lists)
def test_single_worker_is_the_serial_clock(costs):
    lanes, starts = assign_lanes(costs, 1)
    assert all(lane == 0 for lane in lanes)
    cursor = 0.0
    for i, c in enumerate(costs):
        assert starts[i] == cursor
        cursor += c
    assert compile_makespan(costs, 1) == sum(costs)
