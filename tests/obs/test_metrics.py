"""The shared metrics registry and its deterministic latency reservoir."""

from repro.obs.metrics import MAX_SAMPLES, LatencyStat, MetricsRegistry


class TestLatencyStat:
    def test_basic_aggregates(self):
        stat = LatencyStat()
        for ms in (1.0, 3.0, 2.0):
            stat.record(ms)
        assert stat.count == 3
        assert stat.total_ms == 6.0
        assert stat.mean_ms == 2.0
        assert stat.max_ms == 3.0
        assert stat.last_ms == 2.0

    def test_percentiles_small(self):
        stat = LatencyStat()
        for ms in range(1, 101):
            stat.record(float(ms))
        assert stat.percentile(50) in (50.0, 51.0)
        assert stat.percentile(99) in (99.0, 100.0)
        assert stat.percentile(0) == 1.0
        assert stat.percentile(100) == 100.0

    def test_percentile_nearest_rank_is_deterministic(self):
        """Regression: round-half-to-even (banker's rounding) made the
        rank depend on sample-count parity — p50 over [1, 2] picked
        index round(0.5) == 0, under-reporting the median."""
        stat = LatencyStat()
        stat.record(1.0)
        stat.record(2.0)
        assert stat.percentile(50) == 2.0

    def test_percentile_ties_round_up(self):
        # Six samples: p90 must be the 6th (rank ceil on the 0..n-1
        # scale), not the banker's-rounded 5th.
        stat = LatencyStat()
        for ms in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0):
            stat.record(ms)
        assert stat.percentile(90) == 60.0
        assert stat.percentile(50) == 40.0
        assert stat.percentile(10) == 20.0  # ceil(0.5) -> rank 1

    def test_percentile_float_noise_does_not_inflate_rank(self):
        # 0.9 * 10 == 9.000000000000002: without an epsilon the ceil
        # would jump a whole rank on pure float noise.
        stat = LatencyStat()
        for ms in range(1, 12):
            stat.record(float(ms))
        assert stat.percentile(90) == 10.0

    def test_reservoir_stays_bounded(self):
        stat = LatencyStat()
        for i in range(MAX_SAMPLES * 5):
            stat.record(float(i))
        assert len(stat._samples) <= MAX_SAMPLES
        assert stat.count == MAX_SAMPLES * 5

    def test_stride_doubles_as_reservoir_fills(self):
        stat = LatencyStat()
        assert stat.sample_stride == 1
        for i in range(MAX_SAMPLES):
            stat.record(float(i))
        assert stat.sample_stride == 1
        stat.record(float(MAX_SAMPLES))
        assert stat.sample_stride == 2

    def test_percentiles_cover_whole_lifetime(self):
        """Regression: the old ring overwrite made percentiles describe
        only the last MAX_SAMPLES observations.

        Two thirds of this history is 1.0 ms, the final third 100.0 ms —
        but the 100s all arrive last, so a last-4096 window reports
        p50 = 100.0 while the lifetime median is 1.0.
        """
        stat = LatencyStat()
        for _ in range(2 * MAX_SAMPLES):
            stat.record(1.0)
        for _ in range(MAX_SAMPLES):
            stat.record(100.0)
        assert stat.count == 3 * MAX_SAMPLES
        assert stat.percentile(50) == 1.0
        assert stat.percentile(99) == 100.0
        # The reservoir is a systematic (every stride-th) sample, so the
        # population mix is preserved to within one stride.
        ones = sum(1 for s in stat._samples if s == 1.0)
        hundreds = sum(1 for s in stat._samples if s == 100.0)
        assert ones > hundreds

    def test_summary_keys(self):
        stat = LatencyStat()
        stat.record(5.0)
        summary = stat.summary()
        assert set(summary) == {
            "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"
        }


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2)
        m.set_gauge("g", 7)
        assert m.counter("a") == 3
        assert m.stats()["gauges"]["g"] == 7

    def test_latency_accessor(self):
        m = MetricsRegistry()
        m.observe("x", 10.0)
        assert m.latency("x").count == 1
        assert m.latency("fresh").count == 0

    def test_service_metrics_shim(self):
        """The historical import path keeps working."""
        from repro.service.metrics import LatencyStat as ShimStat
        from repro.service.metrics import ServiceMetrics

        assert ServiceMetrics is MetricsRegistry
        assert ShimStat is LatencyStat
