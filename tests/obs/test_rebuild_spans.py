"""Span trees recorded by real rebuilds: nesting, attribution, sums.

The invariants here are the contract the trace export relies on:

* stage spans (schedule, extract, instrument, compile, link) sum to
  ``RebuildReport.wall_ms`` exactly, on the simulated clock;
* per-fragment optimize + isel spans sum to the fragment's
  ``compile_ms`` exactly;
* per-pass spans sum to their fragment's optimize span exactly;
* under a worker pool, fragment spans tile their lanes and the busiest
  lane ends exactly at the compile stage's makespan.
"""

import pytest

from repro.core.engine import Odin, assign_lanes, compile_makespan
from repro.frontend.codegen import compile_source
from repro.instrument.coverage import OdinCov
from repro.obs.trace import to_trace_events, validate_trace_events
from repro.obs.tracer import CAT_FRAGMENT, CAT_PASS
from repro.service.workers import ThreadFragmentCompiler

SOURCE = r"""
static int acc;

int helper_a(int x) {
    int i;
    for (i = 0; i < x; i = i + 1) acc = acc + i * 3;
    return acc;
}

int helper_b(int x) {
    int i;
    for (i = 0; i < x; i = i + 1) acc = acc ^ (i + x);
    return acc;
}

int helper_c(int x) {
    if (x > 10) return helper_a(x - 1);
    return helper_b(x + 1);
}

int run_input(const char *data, long size) {
    int i;
    int r;
    r = 0;
    for (i = 0; i < size; i = i + 1) {
        r = r + helper_c((int)data[i] & 255);
    }
    return r;
}

int main(void) { return run_input("seed", 4); }
"""

STAGE_NAMES = ["schedule", "extract", "instrument", "compile", "link"]


def build_engine(**kwargs) -> Odin:
    engine = Odin(
        compile_source(SOURCE, "spans"), preserve=("main", "run_input"),
        **kwargs,
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    engine._span_tool = tool  # keep probes reachable for rebuild tests
    return engine


def check_tree_invariants(report) -> None:
    root = report.trace
    assert root is not None
    assert root.name == "rebuild"
    assert [c.name for c in root.children] == STAGE_NAMES

    # Stage spans sum to the rebuild's simulated wall clock, exactly.
    assert sum(c.sim_ms for c in root.children) == report.wall_ms
    assert root.sim_ms == report.wall_ms

    compile_span = root.children[3]
    assert compile_span.sim_ms == report.compile_wall_ms
    link_span = root.children[4]
    assert link_span.sim_ms == report.link_ms
    assert link_span.sim_start_ms == compile_span.sim_end_ms

    fragments = compile_span.children
    assert len(fragments) == len(report.fragment_ids)
    for frag_span in fragments:
        assert frag_span.cat == CAT_FRAGMENT
        fid = int(frag_span.name.split("#")[1])
        assert frag_span.sim_ms == report.fragment_compile_ms[fid]
        tier = frag_span.args.get("tier")
        assert tier == report.fragment_tiers[fid]
        if frag_span.args.get("cache_hit"):
            assert tier == "cache"
            assert frag_span.sim_ms == 0.0
            continue
        if tier == "patch":
            # Patched fragments never ran optimize or isel: a flat span
            # priced at the patch cost, with no phase children.
            assert frag_span.children == []
            assert frag_span.sim_ms > 0.0
            continue
        opt, isel = frag_span.children[0], frag_span.children[-1]
        assert opt.name == "optimize" and isel.name == "isel"
        # optimize + isel tile the fragment exactly...
        assert opt.sim_ms + isel.sim_ms == frag_span.sim_ms
        assert opt.sim_start_ms == frag_span.sim_start_ms
        assert isel.sim_start_ms == frag_span.sim_start_ms + opt.sim_ms
        # ...and the per-pass spans tile optimize exactly.
        passes = opt.children
        if tier == "memo":
            # Memoized middle end: the optimize span collapses to zero
            # cost with no per-pass children; isel carries everything.
            assert opt.sim_ms == 0.0
            assert passes == []
            continue
        assert passes, "expected per-pass spans under optimize"
        assert all(p.cat == CAT_PASS for p in passes)
        assert all(p.sim_ms >= 0.0 for p in passes)
        assert sum(p.sim_ms for p in passes) == opt.sim_ms


class TestSerialRebuildSpans:
    def test_initial_build_spans(self):
        engine = build_engine()
        report = engine.initial_build()
        check_tree_invariants(report)
        # Serial engine: everything on lane 0.
        assert {s.lane for s in report.trace.walk()} == {0}
        # The recorded tree is the tracer's latest root.
        assert engine.tracer.last() is report.trace

    def test_incremental_rebuild_spans(self):
        engine = build_engine()
        engine.initial_build()
        probe = next(iter(engine._span_tool.probes.values()))
        engine.manager.disable(probe)
        report = engine.rebuild_if_needed()
        check_tree_invariants(report)
        assert report.trace.args["probes_applied"] == report.probes_applied
        # The second tree starts where the simulated clock had advanced
        # to (approx: the serial clock sums per-fragment costs in
        # schedule order, the makespan in size order).
        first = engine.tracer.roots()[0]
        assert report.trace.sim_start_ms == pytest.approx(
            first.sim_end_ms, rel=1e-9
        )

    def test_trace_exports_valid_json(self):
        engine = build_engine()
        engine.initial_build()
        payload = to_trace_events(engine.tracer.roots())
        assert validate_trace_events(payload) == []


class TestParallelRebuildSpans:
    def test_worker_pool_spans(self):
        engine = build_engine(compiler=ThreadFragmentCompiler(workers=2))
        report = engine.initial_build()
        assert report.workers == 2
        check_tree_invariants(report)

        compile_span = report.trace.children[3]
        fragments = [f for f in compile_span.children if f.sim_ms > 0]
        assert len(fragments) > 1, "test needs >1 compiled fragment"
        # With one dominant fragment both lanes may still be makespan-
        # optimal with everything else on one lane; lanes must at least
        # be within the pool.
        assert {f.lane for f in fragments} <= {0, 1}

        # Fragments tile their lanes: no overlap, and the busiest lane
        # ends exactly at the compile stage's makespan.
        by_lane = {}
        for f in fragments:
            by_lane.setdefault(f.lane, []).append(f)
        for lane_frags in by_lane.values():
            lane_frags.sort(key=lambda f: f.sim_start_ms)
            for a, b in zip(lane_frags, lane_frags[1:]):
                assert a.sim_end_ms <= b.sim_start_ms
        assert (
            max(f.sim_end_ms for f in fragments) == compile_span.sim_end_ms
        )
        # The lane-sum exceeds the makespan when work actually overlaps.
        assert report.total_compile_ms > report.compile_wall_ms

    def test_wall_ms_is_makespan_not_lane_sum(self):
        engine = build_engine(compiler=ThreadFragmentCompiler(workers=2))
        report = engine.initial_build()
        assert report.wall_ms == report.compile_wall_ms + report.link_ms
        assert report.wall_ms < report.total_ms


class TestAssignLanes:
    def test_serial_back_to_back(self):
        lanes, starts = assign_lanes([3.0, 1.0, 2.0], workers=1)
        assert lanes == [0, 0, 0]
        assert starts == [0.0, 3.0, 4.0]

    def test_replays_makespan_exactly(self):
        costs = [5.0, 3.0, 3.0, 2.0, 1.0, 0.5]
        for workers in (2, 3, 4):
            lanes, starts = assign_lanes(costs, workers)
            ends = {}
            for cost, lane, start in zip(costs, lanes, starts):
                # Starts are the lane's load at placement time: no overlap.
                assert start == ends.get(lane, 0.0)
                ends[lane] = start + cost
            assert max(ends.values()) == compile_makespan(costs, workers)

    def test_empty(self):
        assert assign_lanes([], 4) == ([], [])
