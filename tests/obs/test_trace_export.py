"""Chrome trace-event export, aggregation and schema validation."""

import json

from repro.obs.trace import (
    flame_summary,
    pass_totals,
    stage_totals,
    to_trace_events,
    trace_json,
    validate_trace_events,
    write_trace,
)
from repro.obs.tracer import CAT_PASS, CAT_PHASE, CAT_REBUILD, Span


def sample_tree() -> Span:
    root = Span("rebuild", cat=CAT_REBUILD, sim_start_ms=10.0, sim_ms=7.0)
    root.add(Span("schedule", sim_start_ms=10.0, sim_ms=0.0))
    compile_span = root.add(Span("compile", sim_start_ms=10.0, sim_ms=5.0))
    frag = compile_span.add(
        Span("fragment#0", cat="fragment", sim_start_ms=10.0, sim_ms=5.0,
             lane=1)
    )
    opt = frag.add(Span("optimize", cat=CAT_PHASE, sim_start_ms=10.0,
                        sim_ms=3.0, lane=1))
    opt.add(Span("dce", cat=CAT_PASS, sim_start_ms=10.0, sim_ms=3.0, lane=1))
    frag.add(Span("isel", cat=CAT_PHASE, sim_start_ms=13.0, sim_ms=2.0,
                  lane=1))
    root.add(Span("link", sim_start_ms=15.0, sim_ms=2.0))
    return root


class TestTraceEvents:
    def test_schema_valid(self):
        payload = to_trace_events([sample_tree()])
        assert validate_trace_events(payload) == []
        # Round-trips through JSON.
        assert validate_trace_events(json.loads(trace_json([sample_tree()]))) == []

    def test_microsecond_scaling_and_lanes(self):
        payload = to_trace_events([sample_tree()])
        by_name = {
            e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["rebuild"]["ts"] == 10_000.0
        assert by_name["rebuild"]["dur"] == 7_000.0
        assert by_name["fragment#0"]["tid"] == 1
        assert by_name["fragment#0"]["args"]["sim_ms"] == 5.0

    def test_metadata_events_name_lanes(self):
        payload = to_trace_events([sample_tree()])
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        lanes = {e["tid"] for e in meta if e["name"] == "thread_name"}
        assert lanes == {0, 1}

    def test_validator_flags_negative_duration(self):
        bad = Span("broken", sim_ms=-1.0)
        problems = validate_trace_events(to_trace_events([bad]))
        assert any("negative" in p for p in problems)

    def test_validator_flags_malformed_payload(self):
        assert validate_trace_events({}) == ["traceEvents is not a list"]
        problems = validate_trace_events({"traceEvents": [{"ph": "X"}]})
        assert problems

    def test_write_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(str(path), [sample_tree()])
        payload = json.loads(path.read_text())
        assert validate_trace_events(payload) == []
        assert payload["displayTimeUnit"] == "ms"


class TestAggregation:
    def test_stage_totals(self):
        totals = stage_totals([sample_tree(), sample_tree()])
        assert totals["compile"] == 10.0
        assert totals["link"] == 4.0
        assert totals["optimize"] == 6.0

    def test_pass_totals(self):
        assert pass_totals([sample_tree()]) == {"dce": 3.0}

    def test_flame_summary_renders(self):
        text = flame_summary([sample_tree()])
        assert "rebuild" in text
        assert "stage totals (simulated):" in text
        assert "dce" in text
        # max_depth clips fragment internals.
        shallow = flame_summary([sample_tree()], max_depth=1)
        assert "fragment#0" not in shallow
