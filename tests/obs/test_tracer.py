"""Span trees and the thread-safe tracer."""

import threading

from repro.obs.tracer import CAT_SERVICE, CAT_STAGE, Span, Tracer


class TestSpan:
    def test_tree_navigation(self):
        root = Span("rebuild")
        a = root.add(Span("compile"))
        a.add(Span("fragment#0", cat="fragment"))
        root.add(Span("link"))
        assert [s.name for s in root.walk()] == [
            "rebuild", "compile", "fragment#0", "link"
        ]
        assert root.find("fragment#0") is not None
        assert root.find("nope") is None
        assert len(root.find_all(cat="fragment")) == 1

    def test_sim_end_and_child_sum(self):
        root = Span("r", sim_start_ms=10.0, sim_ms=5.0)
        root.add(Span("a", sim_ms=2.0))
        root.add(Span("b", sim_ms=3.0, cat=CAT_SERVICE))
        assert root.sim_end_ms == 15.0
        assert root.child_sim_sum() == 5.0
        assert root.child_sim_sum(cat=CAT_SERVICE) == 3.0


class TestTracer:
    def test_record_roots(self):
        tracer = Tracer()
        tracer.record(Span("one"))
        tracer.record(Span("two"))
        assert [r.name for r in tracer.roots()] == ["one", "two"]
        assert tracer.last().name == "two"
        assert tracer.last("one").name == "one"

    def test_span_context_nests_records(self):
        tracer = Tracer()
        with tracer.span("outer", cat=CAT_SERVICE, key="v"):
            tracer.record(Span("inner"))
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert root.args["key"] == "v"
        assert root.real_ms >= 0.0
        assert [c.name for c in root.children] == ["inner"]

    def test_max_roots_drops_oldest(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            tracer.record(Span(f"s{i}"))
        assert [r.name for r in tracer.roots()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_clear(self):
        tracer = Tracer()
        tracer.record(Span("x"))
        tracer.clear()
        assert tracer.roots() == []

    def test_concurrent_recording_keeps_trees_separate(self):
        """Each thread's rebuild trees nest under its own open span —
        never a sibling thread's — and no root is lost."""
        tracer = Tracer(max_roots=1024)
        threads = 8
        per_thread = 25
        barrier = threading.Barrier(threads)
        errors = []

        def worker(tid: int) -> None:
            barrier.wait()
            try:
                for i in range(per_thread):
                    with tracer.span(f"batch-{tid}", cat=CAT_SERVICE):
                        tracer.record(Span(f"rebuild-{tid}-{i}", cat=CAT_STAGE))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert not errors
        roots = tracer.roots()
        assert len(roots) == threads * per_thread
        for root in roots:
            tid = root.name.split("-")[1]
            assert len(root.children) == 1
            assert root.children[0].name.startswith(f"rebuild-{tid}-")
