"""Tests for Dead Argument Elimination and Function Inlining — the two
interprocedural passes whose requirements drive the partitioner (§2.3)."""

from repro.ir.instructions import CallInst
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.dae import DeadArgumentElimination
from repro.opt.inline import FunctionInlining
from repro.opt.pass_manager import OptContext, REQ_BOND

FIG4 = """
define internal void @neg(i32 %unused) {
entry:
  ret void
}

define i32 @main() {
entry:
  call void @neg(i32 1)
  ret i32 0
}
"""


class TestDeadArgumentElimination:
    def test_removes_dead_argument_from_both_sides(self):
        m = parse_module(FIG4)
        changed = DeadArgumentElimination().run(m, OptContext())
        verify_module(m)
        assert changed
        neg = m.get("neg")
        assert neg.function_type.params == ()
        call = next(
            i for i in m.get("main").instructions() if isinstance(i, CallInst)
        )
        assert call.args == []

    def test_external_function_untouched(self):
        """§2.3's remedy: exported symbols keep their ABI."""
        m = parse_module(FIG4.replace("define internal void @neg", "define void @neg"))
        changed = DeadArgumentElimination().run(m, OptContext())
        assert not changed
        assert len(m.get("neg").function_type.params) == 1

    def test_used_argument_kept(self):
        m = parse_module(
            """
define internal i32 @id(i32 %x) {
entry:
  ret i32 %x
}

define i32 @main() {
entry:
  %r = call i32 @id(i32 7)
  ret i32 %r
}
"""
        )
        assert not DeadArgumentElimination().run(m, OptContext())

    def test_partial_removal(self):
        m = parse_module(
            """
define internal i32 @f(i32 %dead1, i32 %live, i32 %dead2) {
entry:
  ret i32 %live
}

define i32 @main() {
entry:
  %r = call i32 @f(i32 1, i32 2, i32 3)
  ret i32 %r
}
"""
        )
        DeadArgumentElimination().run(m, OptContext())
        verify_module(m)
        assert len(m.get("f").function_type.params) == 1
        call = next(i for i in m.get("main").instructions() if isinstance(i, CallInst))
        assert call.args[0].value == 2

    def test_address_taken_blocks_transform(self):
        m = parse_module(
            """
define internal void @f(i32 %unused) {
entry:
  ret void
}

@table = global ptr null

define void @main() {
entry:
  store ptr @f, ptr @table
  call void @f(i32 1)
  ret void
}
"""
        )
        assert not DeadArgumentElimination().run(m, OptContext())

    def test_logs_bond_requirement_in_trial(self):
        m = parse_module(FIG4)
        ctx = OptContext(trial=True)
        DeadArgumentElimination().run(m, ctx)
        assert any(
            r.kind == REQ_BOND and r.subject == "neg" and r.peer == "main"
            for r in ctx.requirements
        )


class TestInlining:
    SIMPLE = """
define internal i32 @twice(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @main() {
entry:
  %r = call i32 @twice(i32 21)
  ret i32 %r
}
"""

    def test_small_callee_inlined(self):
        m = parse_module(self.SIMPLE)
        changed = FunctionInlining().run(m, OptContext())
        verify_module(m)
        assert changed
        assert not any(
            isinstance(i, CallInst) for i in m.get("main").instructions()
        )

    def test_logs_bond_requirement(self):
        m = parse_module(self.SIMPLE)
        ctx = OptContext(trial=True)
        FunctionInlining().run(m, ctx)
        assert any(
            r.kind == REQ_BOND and r.subject == "twice" and r.peer == "main"
            for r in ctx.requirements
        )

    def test_declaration_never_inlined(self):
        """The MaxPartition effect: a callee visible only as a declaration
        cannot be inlined."""
        m = parse_module(
            """
declare i32 @twice(i32)

define i32 @main() {
entry:
  %r = call i32 @twice(i32 21)
  ret i32 %r
}
"""
        )
        assert not FunctionInlining().run(m, OptContext())

    def test_self_recursion_not_inlined(self):
        m = parse_module(
            """
define internal i32 @fact(i32 %n) {
entry:
  %c = icmp sle i32 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %p = mul i32 %n, %r
  ret i32 %p
}
"""
        )
        assert not FunctionInlining().run(m, OptContext())

    def test_mutual_recursion_not_inlined(self):
        m = parse_module(
            """
define internal i32 @a(i32 %n) {
entry:
  %r = call i32 @b(i32 %n)
  ret i32 %r
}

define internal i32 @b(i32 %n) {
entry:
  %r = call i32 @a(i32 %n)
  ret i32 %r
}
"""
        )
        assert not FunctionInlining().run(m, OptContext())

    def test_multi_block_callee_with_multiple_returns(self):
        m = parse_module(
            """
define internal i32 @absval(i32 %x) {
entry:
  %neg = icmp slt i32 %x, 0
  br i1 %neg, label %flip, label %keep
flip:
  %f = sub i32 0, %x
  ret i32 %f
keep:
  ret i32 %x
}

define i32 @main(i32 %v) {
entry:
  %r = call i32 @absval(i32 %v)
  %r2 = add i32 %r, 1
  ret i32 %r2
}
"""
        )
        FunctionInlining().run(m, OptContext())
        verify_module(m)
        main = m.get("main")
        assert not any(isinstance(i, CallInst) for i in main.instructions())
        # The merged return value must come through a phi.
        assert any(i.opcode == "phi" for i in main.instructions())

    def test_semantics_preserved_through_inlining(self):
        """Differential: run main before and after inlining in the VM."""
        from repro.backend.isel import lower_module
        from repro.linker.linker import link
        from repro.vm.interpreter import VM

        def run(module):
            exe = link([lower_module(module)])
            return VM(exe).run("main").exit_code

        m1 = parse_module(self.SIMPLE)
        m2 = parse_module(self.SIMPLE)
        FunctionInlining().run(m2, OptContext())
        assert run(m1) == run(m2) == 42

    def test_big_callee_not_inlined(self):
        body = "\n".join(f"  %x{i} = add i32 %x, {i}" for i in range(60))
        m = parse_module(
            f"""
define i32 @big(i32 %x) {{
entry:
{body}
  ret i32 %x59
}}

define i32 @main() {{
entry:
  %r = call i32 @big(i32 1)
  %r2 = call i32 @big(i32 2)
  ret i32 %r
}}
"""
        )
        assert not FunctionInlining().run(m, OptContext())
