"""Tests for InstCombine, including the paper's Figure 2 and Figure 4."""

import pytest

from repro.ir.instructions import BinaryInst, CallInst, IcmpInst, SelectInst
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.instcombine import InstCombine
from repro.opt.pass_manager import OptContext, REQ_COPY_ON_USE
from repro.opt.simplifycfg import SimplifyCFG


def combine(source, trial=False):
    m = parse_module(source)
    ctx = OptContext(trial=trial)
    InstCombine().run(m, ctx)
    verify_module(m)
    return m, ctx


def opcodes_of(fn):
    return [i.opcode for i in fn.instructions()]


class TestConstantFolding:
    def test_binary_fold(self):
        m, _ = combine(
            "define i32 @f() {\nentry:\n  %x = add i32 2, 3\n  ret i32 %x\n}"
        )
        assert "ret i32 5" in print_module(m)

    def test_icmp_fold(self):
        m, _ = combine(
            "define i1 @f() {\nentry:\n  %x = icmp slt i32 2, 3\n  ret i1 %x\n}"
        )
        assert "ret i1 true" in print_module(m) or "ret i1 1" in print_module(m)

    def test_division_by_zero_not_folded(self):
        m, _ = combine(
            "define i32 @f() {\nentry:\n  %x = sdiv i32 2, 0\n  ret i32 %x\n}"
        )
        assert "sdiv" in opcodes_of(m.get("f"))

    def test_cast_fold(self):
        m, _ = combine(
            "define i64 @f() {\nentry:\n  %x = sext i8 -1 to i64\n  ret i64 %x\n}"
        )
        assert "ret i64 -1" in print_module(m)


class TestAlgebraicIdentities:
    @pytest.mark.parametrize(
        "inst, expect_removed",
        [
            ("add i32 %a, 0", True),
            ("mul i32 %a, 1", True),
            ("sub i32 %a, 0", True),
            ("or i32 %a, 0", True),
            ("xor i32 %a, %a", True),
            ("and i32 %a, %a", True),
        ],
    )
    def test_identity(self, inst, expect_removed):
        m, _ = combine(
            f"define i32 @f(i32 %a) {{\nentry:\n  %x = {inst}\n  ret i32 %x\n}}"
        )
        fn = m.get("f")
        has_binary = any(isinstance(i, BinaryInst) for i in fn.instructions())
        assert has_binary != expect_removed

    def test_mul_power_of_two_becomes_shift(self):
        m, _ = combine(
            "define i32 @f(i32 %a) {\nentry:\n  %x = mul i32 %a, 8\n  ret i32 %x\n}"
        )
        ops = opcodes_of(m.get("f"))
        assert "shl" in ops and "mul" not in ops

    def test_reassociation(self):
        m, _ = combine(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %x = add i32 %a, 3\n  %y = add i32 %x, 4\n  ret i32 %y\n}"
        )
        assert ", 7" in print_module(m)


class TestRangeFoldFigure2:
    """§2.2 / Figure 2: islower folds into one unsigned comparison."""

    ISLOWER = """
define i1 @islower(i8 %chr) {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ false, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
"""

    def optimized(self):
        m = parse_module(self.ISLOWER)
        ctx = OptContext()
        for _ in range(3):
            SimplifyCFG().run(m, ctx)
            InstCombine().run(m, ctx)
        from repro.opt.dce import DeadCodeElimination

        DeadCodeElimination().run(m, ctx)
        verify_module(m)
        return m, ctx

    def test_folds_to_single_block(self):
        m, _ = self.optimized()
        assert len(m.get("islower").blocks) == 1

    def test_folds_to_offset_plus_ult(self):
        """The exact Figure 2 output: add -97 then icmp ult 26."""
        m, ctx = self.optimized()
        text = print_module(m)
        assert "add i8 %chr, -97" in text
        assert "icmp ult" in text and ", 26" in text
        assert ctx.stats.get("instcombine.range_fold", 0) >= 1

    def test_semantics_preserved(self):
        """The fold is correct: same boolean for every input byte."""
        from repro.ir.semantics import eval_binary, eval_icmp
        from repro.ir.types import I8

        for chr_ in range(256):
            reference = int(97 <= I8.to_signed(chr_) <= 122)
            offset = eval_binary("add", I8, chr_, I8.wrap(-97))
            folded = eval_icmp("ult", I8, offset, 26)
            assert folded == reference

    def test_feedback_distortion(self):
        """The paper's correctness complaint: 3 feedback classes become 1.

        Before optimization the CFG distinguishes fail-low / fail-high /
        pass; afterwards a single block remains, so block coverage cannot
        separate them.
        """
        m_before = parse_module(self.ISLOWER)
        assert len(m_before.get("islower").blocks) == 3
        m_after, _ = self.optimized()
        assert len(m_after.get("islower").blocks) == 1


class TestPrintfToPutsFigure4:
    SOURCE = """
@str = internal const [7 x i8] c"hello\\0A\\00"

declare i32 @printf(ptr, ...)

define void @foo() {
entry:
  %r = call i32 @printf(ptr @str)
  ret void
}
"""

    def test_rewrites_to_puts(self):
        m, _ = combine(self.SOURCE)
        text = print_module(m)
        assert "@puts" in text
        assert 'c"hello\\00"' in text  # newline stripped

    def test_logs_copy_on_use_requirement(self):
        _, ctx = combine(self.SOURCE, trial=True)
        assert any(
            r.kind == REQ_COPY_ON_USE and r.subject == "str" and r.peer == "foo"
            for r in ctx.requirements
        )

    def test_requires_initializer_visibility(self):
        """Figure 4's hazard: with @str only *declared*, no rewrite."""
        source = self.SOURCE.replace(
            '@str = internal const [7 x i8] c"hello\\0A\\00"',
            "@str = declare const [7 x i8]",
        ).replace("internal const", "declare const")
        m, _ = combine(source)
        assert "@puts" not in print_module(m)

    def test_format_directives_block_rewrite(self):
        source = self.SOURCE.replace('c"hello\\0A\\00"', 'c"hi %d\\0A\\00"')
        m, _ = combine(source)
        assert "@puts" not in print_module(m)


class TestSelectAndPhi:
    def test_select_const_cond(self):
        m, _ = combine(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %x = select i1 true, i32 %a, i32 %b\n  ret i32 %x\n}"
        )
        assert not any(isinstance(i, SelectInst) for i in m.get("f").instructions())

    def test_bool_select_becomes_and(self):
        m, _ = combine(
            "define i1 @f(i1 %a, i1 %b) {\nentry:\n"
            "  %x = select i1 %a, i1 %b, i1 false\n  ret i1 %x\n}"
        )
        assert "and" in opcodes_of(m.get("f"))

    def test_phi_with_undef_and_instruction_not_folded(self):
        """Folding phi [v, a], [undef, b] to v can break dominance."""
        m, _ = combine(
            """
define i32 @f(i1 %c, i32 %n) {
entry:
  br i1 %c, label %a, label %join
a:
  %v = add i32 %n, 1
  br label %join
join:
  %r = phi i32 [ %v, %a ], [ undef, %entry ]
  ret i32 %r
}
"""
        )
        verify_module(m)

    def test_icmp_canonicalization_constant_right(self):
        m, _ = combine(
            "define i1 @f(i32 %a) {\nentry:\n  %x = icmp slt i32 3, %a\n  ret i1 %x\n}"
        )
        cmp = next(i for i in m.get("f").instructions() if isinstance(i, IcmpInst))
        assert cmp.predicate == "sgt"
        assert cmp.rhs.value == 3
