"""Tests for the jump-threading pass."""

from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.jump_threading import JumpThreading
from repro.opt.pass_manager import OptContext
from repro.opt.simplifycfg import SimplifyCFG

# The short-circuit `a && b` shape: the dispatch block's condition is a
# boolean phi where the `entry` edge carries the constant false.
SHORT_CIRCUIT = """
declare void @left()

declare void @right()

define void @f(i1 %a, i1 %b) {
entry:
  br i1 %a, label %rhs, label %dispatch
rhs:
  br label %dispatch
dispatch:
  %c = phi i1 [ false, %entry ], [ %b, %rhs ]
  br i1 %c, label %t, label %e
t:
  call void @left()
  ret void
e:
  call void @right()
  ret void
}
"""


def thread(source):
    m = parse_module(source)
    ctx = OptContext()
    changed = JumpThreading().run(m, ctx)
    verify_module(m)
    return m, changed, ctx


class TestThreading:
    def test_constant_edge_threaded(self):
        m, changed, ctx = thread(SHORT_CIRCUIT)
        assert changed
        assert ctx.stats.get("jump_threading.threaded", 0) == 1
        # entry now jumps straight to %e on the false arm.
        fn = m.get("f")
        entry_term = fn.get_block("entry").terminator
        assert {b.name for b in entry_term.successors()} == {"rhs", "e"}

    def test_dispatch_keeps_dynamic_edge(self):
        m, _, _ = thread(SHORT_CIRCUIT)
        fn = m.get("f")
        dispatch = fn.get_block("dispatch")
        assert [p.name for p in dispatch.predecessors()] == ["rhs"]

    def test_semantics_preserved(self):
        from repro.backend.isel import lower_module
        from repro.linker.linker import link
        from repro.vm.interpreter import VM

        src = """
define i32 @f(i1 %a, i1 %b) {
entry:
  br i1 %a, label %rhs, label %dispatch
rhs:
  br label %dispatch
dispatch:
  %c = phi i1 [ false, %entry ], [ %b, %rhs ]
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 0
}
"""
        threaded, changed, _ = thread(src)
        assert changed
        plain_exe = link([lower_module(parse_module(src))])
        threaded_exe = link([lower_module(threaded)])
        for a in (0, 1):
            for b in (0, 1):
                assert (
                    VM(plain_exe).run("f", (a, b)).exit_code
                    == VM(threaded_exe).run("f", (a, b)).exit_code
                    == (a & b)
                )

    def test_phi_values_rerouted_to_targets(self):
        src = """
define i32 @f(i1 %a, i32 %x, i32 %y) {
entry:
  br i1 %a, label %other, label %dispatch
other:
  br label %dispatch
dispatch:
  %c = phi i1 [ true, %entry ], [ %a, %other ]
  %v = phi i32 [ %x, %entry ], [ %y, %other ]
  br i1 %c, label %t, label %e
t:
  %rt = phi i32 [ %v, %dispatch ]
  ret i32 %rt
e:
  ret i32 0
}
"""
        # %v is used outside dispatch (in %t's phi), but threading entry->t
        # reroutes the value: t's phi must gain incoming (%x, entry).
        m, changed, _ = thread(src)
        if changed:
            verify_module(m)
            fn = m.get("f")
            t = fn.get_block("t")
            phi = t.phis()[0]
            entry = fn.get_block("entry")
            assert phi.incoming_for(entry).name == "x"


class TestNonThreadable:
    def test_dynamic_only_phi_untouched(self):
        src = SHORT_CIRCUIT.replace("[ false, %entry ]", "[ %a, %entry ]")
        _, changed, _ = thread(src)
        assert not changed

    def test_block_with_computation_untouched(self):
        src = SHORT_CIRCUIT.replace(
            "%c = phi i1 [ false, %entry ], [ %b, %rhs ]",
            "%c = phi i1 [ false, %entry ], [ %b, %rhs ]\n  %junk = add i32 1, 2",
        )
        _, changed, _ = thread(src)
        assert not changed

    def test_phi_used_outside_blocks_threading(self):
        """A non-phi use of the condition outside the dispatch block makes
        threading unsound; the pass must refuse."""
        src = """
define i32 @f(i1 %a, i1 %b) {
entry:
  br i1 %a, label %rhs, label %dispatch
rhs:
  br label %dispatch
dispatch:
  %c = phi i1 [ false, %entry ], [ %b, %rhs ]
  br i1 %c, label %t, label %e
t:
  %z = zext i1 %c to i32
  ret i32 %z
e:
  ret i32 0
}
"""
        m, changed, _ = thread(src)
        assert not changed
        verify_module(m)

    def test_fully_threaded_block_removed(self):
        src = """
define i32 @f(i1 %sel) {
entry:
  br i1 %sel, label %p1, label %p2
p1:
  br label %dispatch
p2:
  br label %dispatch
dispatch:
  %c = phi i1 [ true, %p1 ], [ false, %p2 ]
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 0
}
"""
        m, changed, _ = thread(src)
        assert changed
        names = {b.name for b in m.get("f").blocks}
        assert "dispatch" not in names
        verify_module(m)

    def test_o2_pipeline_with_jump_threading_is_sound(self):
        """Short-circuit-heavy code through the full pipeline."""
        from repro.toolchain import run_source

        src = r"""
static int check(int a, int b, int c) {
    if ((a > 0 && b > 0) || (c != 0 && a < b)) return 1;
    return 0;
}
int main() {
    int r = 0;
    r = r * 2 + check(1, 1, 0);
    r = r * 2 + check(0, 1, 5);
    r = r * 2 + check(-1, 0, 0);
    r = r * 2 + check(-2, 3, 7);
    return r;
}
"""
        o0 = run_source(src, opt_level=0)
        o2 = run_source(src, opt_level=2)
        assert o0.exit_code == o2.exit_code
