"""Tests for full loop unrolling (§2.2 distortion class 3)."""

from repro.ir.analysis import find_loops
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.dce import DeadCodeElimination
from repro.opt.instcombine import InstCombine
from repro.opt.loop_unroll import LoopUnroll
from repro.opt.pass_manager import OptContext
from repro.opt.simplifycfg import SimplifyCFG

COUNTED = """
define i32 @sum() {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  %c = icmp slt i32 %i, 5
  br i1 %c, label %latch, label %exit
latch:
  %acc2 = add i32 %acc, %i
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""


def unroll_and_clean(source, **kwargs):
    m = parse_module(source)
    ctx = OptContext()
    changed = LoopUnroll(**kwargs).run(m, ctx)
    SimplifyCFG().run(m, ctx)
    InstCombine().run(m, ctx)
    SimplifyCFG().run(m, ctx)
    DeadCodeElimination().run(m, ctx)
    verify_module(m)
    return m, changed, ctx


class TestFullUnroll:
    def test_counted_loop_folds_to_constant(self):
        m, changed, _ = unroll_and_clean(COUNTED)
        assert changed
        assert "ret i32 10" in print_module(m)

    def test_loop_disappears_from_cfg(self):
        """The paper's point: after unrolling there is no loop left for a
        probe to observe."""
        m, _, _ = unroll_and_clean(COUNTED)
        assert find_loops(m.get("sum")) == []

    def test_trip_count_above_limit_not_unrolled(self):
        source = COUNTED.replace("icmp slt i32 %i, 5", "icmp slt i32 %i, 100")
        m, changed, _ = unroll_and_clean(source)
        assert not changed

    def test_variable_bound_not_unrolled(self):
        source = COUNTED.replace(
            "define i32 @sum() {", "define i32 @sum(i32 %n) {"
        ).replace("icmp slt i32 %i, 5", "icmp slt i32 %i, %n")
        m, changed, _ = unroll_and_clean(source)
        assert not changed

    def test_side_effects_preserved_in_order(self):
        """Unrolled stores must execute the same number of times."""
        source = """
@log = global [8 x i32] c"\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00\\00"

define void @f() {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, 3
  br i1 %c, label %body, label %exit
body:
  %w = sext i32 %i to i64
  %p = gep i32, ptr @log, i64 %w
  store i32 %i, ptr %p
  %next = add i32 %i, 1
  br label %header
exit:
  ret void
}
"""
        m, changed, _ = unroll_and_clean(source)
        assert changed
        stores = [
            i for i in m.get("f").instructions() if i.opcode == "store"
        ]
        assert len(stores) == 3

    def test_unroll_semantics_via_vm(self):
        from repro.backend.isel import lower_module
        from repro.linker.linker import link
        from repro.vm.interpreter import VM

        source = """
define i32 @compute(i32 %seed) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %h = phi i32 [ %seed, %entry ], [ %h2, %body ]
  %c = icmp slt i32 %i, 6
  br i1 %c, label %body, label %exit
body:
  %m = mul i32 %h, 31
  %h2 = add i32 %m, %i
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %h
}
"""
        plain = parse_module(source)
        unrolled, changed, _ = unroll_and_clean(source)
        assert changed
        for seed in (0, 1, 12345):
            r1 = VM(link([lower_module(parse_module(source))])).run("compute", (seed,))
            r2 = VM(link([lower_module(unrolled)])).run("compute", (seed,))
            assert r1.exit_code == r2.exit_code

    def test_multi_block_body_unrolled(self):
        source = """
@acc = global i32 0

define void @f() {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, 4
  br i1 %c, label %mid, label %exit
mid:
  %v = load i32, ptr @acc
  %v2 = add i32 %v, %i
  br label %latch
latch:
  store i32 %v2, ptr @acc
  %next = add i32 %i, 1
  br label %header
exit:
  ret void
}
"""
        m, changed, _ = unroll_and_clean(source)
        assert changed
        assert find_loops(m.get("f")) == []

    def test_loop_with_internal_branch_not_unrolled(self):
        """Bodies with data-dependent control flow are out of scope."""
        source = """
define i32 @f(i32 %x) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i32 %i, 4
  br i1 %c, label %body, label %exit
body:
  %odd = icmp eq i32 %x, %i
  br i1 %odd, label %then, label %latch
then:
  br label %latch
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"""
        m, changed, _ = unroll_and_clean(source)
        assert not changed
