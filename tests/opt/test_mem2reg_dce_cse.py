"""Tests for mem2reg, DCE, EarlyCSE and GlobalDCE/Internalize."""

from repro.ir.instructions import AllocaInst, LoadInst, PhiInst, StoreInst
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.cse import EarlyCSE
from repro.opt.dce import DeadCodeElimination
from repro.opt.internalize import GlobalDCE, Internalize
from repro.opt.mem2reg import PromoteMem2Reg, promotable_allocas
from repro.opt.pass_manager import OptContext


def run_pass(pass_, source):
    m = parse_module(source)
    changed = pass_.run(m, OptContext())
    verify_module(m)
    return m, changed


class TestMem2Reg:
    def test_scalar_alloca_promoted(self):
        m, changed = run_pass(
            PromoteMem2Reg(),
            """
define i32 @f(i32 %a) {
entry:
  %slot = alloca i32
  store i32 %a, ptr %slot
  %v = load i32, ptr %slot
  ret i32 %v
}
""",
        )
        assert changed
        ops = [i.opcode for i in m.get("f").instructions()]
        assert "alloca" not in ops and "load" not in ops and "store" not in ops

    def test_phi_inserted_at_join(self):
        m, _ = run_pass(
            PromoteMem2Reg(),
            """
define i32 @f(i1 %c) {
entry:
  %slot = alloca i32
  br i1 %c, label %a, label %b
a:
  store i32 1, ptr %slot
  br label %join
b:
  store i32 2, ptr %slot
  br label %join
join:
  %v = load i32, ptr %slot
  ret i32 %v
}
""",
        )
        fn = m.get("f")
        phis = [i for i in fn.instructions() if isinstance(i, PhiInst)]
        assert len(phis) == 1
        assert sorted(v.value for v, _ in phis[0].incoming) == [1, 2]

    def test_loop_carried_value(self):
        m, _ = run_pass(
            PromoteMem2Reg(),
            """
define i32 @f(i32 %n) {
entry:
  %i = alloca i32
  store i32 0, ptr %i
  br label %header
header:
  %iv = load i32, ptr %i
  %c = icmp slt i32 %iv, %n
  br i1 %c, label %body, label %exit
body:
  %iv2 = load i32, ptr %i
  %next = add i32 %iv2, 1
  store i32 %next, ptr %i
  br label %header
exit:
  %r = load i32, ptr %i
  ret i32 %r
}
""",
        )
        fn = m.get("f")
        assert not any(isinstance(i, AllocaInst) for i in fn.instructions())
        # Loop-carried value needs a phi in the header.
        header = fn.get_block("header")
        assert header.phis()

    def test_escaped_alloca_not_promoted(self):
        source = """
declare void @escape(ptr)

define i32 @f() {
entry:
  %slot = alloca i32
  call void @escape(ptr %slot)
  %v = load i32, ptr %slot
  ret i32 %v
}
"""
        m = parse_module(source)
        assert promotable_allocas(m.get("f")) == []

    def test_load_before_store_becomes_undef(self):
        m, _ = run_pass(
            PromoteMem2Reg(),
            """
define i32 @f() {
entry:
  %slot = alloca i32
  %v = load i32, ptr %slot
  ret i32 %v
}
""",
        )
        assert "undef" in print_module(m)


class TestDCE:
    def test_unused_pure_instruction_removed(self):
        m, changed = run_pass(
            DeadCodeElimination(),
            """
define i32 @f(i32 %a) {
entry:
  %dead = mul i32 %a, 3
  ret i32 %a
}
""",
        )
        assert changed
        assert m.get("f").count_instructions() == 1

    def test_dead_chain_removed_transitively(self):
        m, _ = run_pass(
            DeadCodeElimination(),
            """
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = mul i32 %x, 2
  %z = sub i32 %y, 3
  ret i32 %a
}
""",
        )
        assert m.get("f").count_instructions() == 1

    def test_calls_and_stores_kept(self):
        m, changed = run_pass(
            DeadCodeElimination(),
            """
@g = global i32 0

declare i32 @ext()

define void @f() {
entry:
  %r = call i32 @ext()
  store i32 1, ptr @g
  ret void
}
""",
        )
        assert not changed


class TestEarlyCSE:
    def test_duplicate_pure_instructions_merged(self):
        m, changed = run_pass(
            EarlyCSE(),
            """
define i32 @f(i8 %c) {
entry:
  %a = sext i8 %c to i32
  %b = sext i8 %c to i32
  %r = add i32 %a, %b
  ret i32 %r
}
""",
        )
        assert changed
        ops = [i.opcode for i in m.get("f").instructions()]
        assert ops.count("sext") == 1

    def test_cse_respects_dominance_scope(self):
        """Expressions in sibling branches must not merge."""
        m, changed = run_pass(
            EarlyCSE(),
            """
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %u = add i32 %x, 1
  ret i32 %u
b:
  %v = add i32 %x, 1
  ret i32 %v
}
""",
        )
        assert not changed

    def test_dominating_expression_reused_in_successor(self):
        m, changed = run_pass(
            EarlyCSE(),
            """
define i32 @f(i32 %x) {
entry:
  %u = add i32 %x, 1
  br label %next
next:
  %v = add i32 %x, 1
  ret i32 %v
}
""",
        )
        assert changed

    def test_commutative_keys_match(self):
        m, changed = run_pass(
            EarlyCSE(),
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = add i32 %b, %a
  %r = mul i32 %x, %y
  ret i32 %r
}
""",
        )
        assert changed

    def test_freeze_never_cse(self):
        m, changed = run_pass(
            EarlyCSE(),
            """
define i32 @f(i32 %a) {
entry:
  %x = freeze i32 %a
  %y = freeze i32 %a
  %r = add i32 %x, %y
  ret i32 %r
}
""",
        )
        assert not changed


class TestInternalizeGlobalDCE:
    SOURCE = """
@used = global i32 1
@unused = internal global i32 2

define internal i32 @helper() {
entry:
  %v = load i32, ptr @used
  ret i32 %v
}

define i32 @main() {
entry:
  %r = call i32 @helper()
  ret i32 %r
}

define void @orphan() {
entry:
  ret void
}
"""

    def test_internalize_preserves_main(self):
        m, _ = run_pass(Internalize(preserve=("main",)), self.SOURCE)
        assert not m.get("main").is_internal
        assert m.get("orphan").is_internal
        assert m.get("used").is_internal

    def test_globaldce_removes_unreferenced_internal(self):
        m = parse_module(self.SOURCE)
        Internalize(preserve=("main",)).run(m, OptContext())
        GlobalDCE().run(m, OptContext())
        assert "unused" not in m
        assert "orphan" not in m
        assert "helper" in m  # still called

    def test_globaldce_keeps_external(self):
        m, changed = run_pass(GlobalDCE(), self.SOURCE)
        assert "orphan" in m  # external: might be used elsewhere
        assert "unused" not in m
