"""Pass memoization: keys, replay equivalence, payload integrity.

The tier-2 contract: memoizing optimized IR on (input-IR fingerprint,
pass-pipeline identity) must be invisible in the artifacts — a memo-hit
compile yields byte-identical objects to a cold compile — and only
visible in the cost accounting (optimize share zero, backend share
kept).
"""

import pytest

from repro.core.engine import compile_fragment, object_fingerprint
from repro.frontend.codegen import compile_source
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.opt.memo import MemoEntry, memo_key, pipeline_identity
from repro.service.cache import (
    PassMemoCache,
    PersistentCodeCache,
    PersistentPassMemoCache,
)

SOURCE = r"""
int work(int x) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < x; i = i + 1) acc = acc + i * x;
    if (acc > 100) return acc - 100;
    return acc;
}

int main(void) { return work(9); }
"""


def fragment():
    return compile_source(SOURCE, "memofrag")


class TestMemoKey:
    def test_key_is_deterministic(self):
        text = print_module(fragment())
        assert memo_key(text, 2, False) == memo_key(text, 2, False)

    def test_key_depends_on_input_ir(self):
        a = print_module(fragment())
        b = a.replace("9", "7")
        assert memo_key(a, 2, False) != memo_key(b, 2, False)

    def test_key_depends_on_pipeline(self):
        text = print_module(fragment())
        keys = {
            memo_key(text, 0, False),
            memo_key(text, 2, False),
            memo_key(text, 2, True),
        }
        assert len(keys) == 3

    def test_pipeline_identity_names_real_passes(self):
        ident = pipeline_identity(2, False)
        assert "o2" in ident
        assert ident != pipeline_identity(0, False)
        # Sanitized pipelines are a distinct identity even at the same
        # opt level: the sanitizer interleaves with the passes.
        assert ident != pipeline_identity(2, True)


class TestMemoReplay:
    def test_hit_skips_optimize_and_matches_cold_bytes(self):
        memo = PassMemoCache()
        cold = compile_fragment(fragment(), 2, True, memo=memo)
        assert memo.puts == 1 and memo.hits == 0
        assert not cold.stage_breakdown.get("memo_hit")

        warm = compile_fragment(fragment(), 2, True, memo=memo)
        assert memo.hits == 1
        assert warm.stage_breakdown["memo_hit"] is True
        assert warm.stage_breakdown["optimize_ms"] == 0.0
        assert warm.stage_breakdown["passes"] == []
        assert warm.stage_breakdown["isel_ms"] > 0.0
        # The replay is charged only the backend share.
        assert warm.compile_ms < cold.compile_ms
        assert warm.compile_ms == pytest.approx(
            cold.stage_breakdown["isel_ms"]
        )
        # And the artifact is byte-identical.
        assert object_fingerprint(warm) == object_fingerprint(cold)

    def test_memoized_ir_roundtrips_through_parser(self):
        """The snapshot is parseable text — the replay's preconditions."""
        memo = PassMemoCache()
        compile_fragment(fragment(), 2, True, memo=memo)
        ((entry, _size),) = memo._entries.values()
        assert isinstance(entry, MemoEntry)
        replayed = parse_module(entry.ir_text, "memofrag")
        assert print_module(replayed) == entry.ir_text

    def test_different_opt_levels_do_not_alias(self):
        memo = PassMemoCache()
        compile_fragment(fragment(), 2, True, memo=memo)
        o0 = compile_fragment(fragment(), 0, True, memo=memo)
        assert memo.hits == 0 and memo.puts == 2
        assert not o0.stage_breakdown.get("memo_hit")


class TestMemoPayloadIntegrity:
    def test_persistent_memo_roundtrip(self, tmp_path):
        cache = PersistentPassMemoCache(str(tmp_path))
        entry = MemoEntry("define i32 @f() {\nentry:\n  ret i32 0\n}\n", ())
        cache.put("k", entry)
        got = PersistentPassMemoCache(str(tmp_path)).get("k")
        assert got is not None
        assert got.ir_text == entry.ir_text

    def test_wrong_payload_type_degrades_to_miss(self, tmp_path):
        """An ObjectFile store read as a memo is quarantined, not served."""
        objects = PersistentCodeCache(str(tmp_path))
        obj = compile_fragment(fragment(), 2, True)
        objects.put("k", obj)
        memos = PersistentPassMemoCache(str(tmp_path))
        assert memos.get("k") is None
        assert memos.integrity_failures == 1

    def test_in_memory_memo_shares_budget_machinery(self):
        memo = PassMemoCache(max_bytes=1)
        memo.put("k", MemoEntry("x" * 64, ()))
        # A single oversized entry is rejected, exactly like the object
        # cache's budget handling.
        assert memo.rejected == 1
        assert memo.get("k") is None
