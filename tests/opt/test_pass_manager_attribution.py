"""verify_each / sanitize_each failures must name the offending pass."""

import pytest

from repro.errors import VerifierError
from repro.ir.parser import parse_module
from repro.opt.pass_manager import Pass, PassManager

PROGRAM = """
define i32 @victim(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}
"""


class DropTerminator(Pass):
    """Corrupts the IR: leaves @victim's entry block unterminated."""

    name = "badpass"

    def run(self, module, ctx):
        module.get("victim").entry.instructions[-1].erase()
        return True


class NopPass(Pass):
    name = "harmless"

    def run(self, module, ctx):
        return False


class TestVerifyAttribution:
    def test_failure_names_pass_and_function(self):
        pm = PassManager([NopPass(), DropTerminator()], verify_each=True)
        with pytest.raises(VerifierError) as excinfo:
            pm.run(parse_module(PROGRAM))
        message = str(excinfo.value)
        assert "badpass" in message
        assert "victim" in message

    def test_failure_carries_pass_name_attribute(self):
        pm = PassManager([DropTerminator()], verify_each=True)
        with pytest.raises(VerifierError) as excinfo:
            pm.run(parse_module(PROGRAM))
        assert excinfo.value.pass_name == "badpass"
        # The original verifier failure stays reachable for debugging.
        assert isinstance(excinfo.value.__cause__, VerifierError)

    def test_fixpoint_runner_also_attributes(self):
        pm = PassManager([DropTerminator()], verify_each=True)
        with pytest.raises(VerifierError, match="badpass"):
            pm.run_until_fixpoint(parse_module(PROGRAM))

    def test_clean_pipeline_raises_nothing(self):
        pm = PassManager([NopPass()], verify_each=True, sanitize_each=True)
        ctx = pm.run(parse_module(PROGRAM))
        assert ctx.diagnostics == []
