"""Tests for SimplifyCFG, including the probe-as-barrier property."""

from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.opt.pass_manager import OptContext
from repro.opt.simplifycfg import SimplifyCFG


def simplify(source):
    m = parse_module(source)
    ctx = OptContext()
    SimplifyCFG().run(m, ctx)
    verify_module(m)
    return m, ctx


class TestUnreachable:
    def test_unreachable_blocks_removed(self):
        m, _ = simplify(
            """
define i32 @f() {
entry:
  ret i32 1
dead:
  br label %dead2
dead2:
  ret i32 2
}
"""
        )
        assert len(m.get("f").blocks) == 1

    def test_phi_incomings_from_dead_blocks_dropped(self):
        m, _ = simplify(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
dead:
  br label %join
join:
  %r = phi i32 [ 1, %a ], [ 2, %b ], [ 3, %dead ]
  ret i32 %r
}
"""
        )
        verify_module(m)


class TestConstantBranches:
    def test_constant_condbr_folds(self):
        m, _ = simplify(
            """
define i32 @f() {
entry:
  br i1 true, label %yes, label %no
yes:
  ret i32 1
no:
  ret i32 2
}
"""
        )
        assert len(m.get("f").blocks) == 1
        assert "ret i32 1" in print_module(m)

    def test_constant_switch_folds(self):
        m, _ = simplify(
            """
define i32 @f() {
entry:
  switch i32 2, label %d [ i32 1, label %one i32 2, label %two ]
one:
  ret i32 10
two:
  ret i32 20
d:
  ret i32 0
}
"""
        )
        assert "ret i32 20" in print_module(m)
        assert len(m.get("f").blocks) == 1

    def test_same_target_condbr_to_br(self):
        m, _ = simplify(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret i32 1
}
"""
        )
        assert len(m.get("f").blocks) == 1


class TestMergeAndForward:
    def test_linear_chain_merges(self):
        m, _ = simplify(
            """
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  br label %b
b:
  %y = add i32 %x, 2
  br label %c
c:
  ret i32 %y
}
"""
        )
        assert len(m.get("f").blocks) == 1

    def test_forwarding_block_skipped(self):
        m, _ = simplify(
            """
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %fwd, label %other
fwd:
  br label %target
other:
  %x = call i32 @ext()
  br label %target
target:
  %r = phi i32 [ 0, %fwd ], [ %x, %other ]
  ret i32 %r
}

declare i32 @ext()
"""
        )
        names = {b.name for b in m.get("f").blocks}
        assert "fwd" not in names
        verify_module(m)


class TestSpeculation:
    DIAMOND = """
define i32 @f(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  %x = add i32 %a, 1
  br label %join
e:
  %y = mul i32 %b, 2
  br label %join
join:
  %r = phi i32 [ %x, %t ], [ %y, %e ]
  ret i32 %r
}
"""

    def test_diamond_becomes_select(self):
        m, ctx = simplify(self.DIAMOND)
        assert len(m.get("f").blocks) == 1
        assert "select" in print_module(m)
        assert ctx.stats.get("simplifycfg.speculated_diamond", 0) == 1

    def test_triangle_becomes_select(self):
        m, ctx = simplify(
            """
define i32 @f(i1 %c, i32 %a) {
entry:
  br i1 %c, label %t, label %join
t:
  %x = add i32 %a, 5
  br label %join
join:
  %r = phi i32 [ %x, %t ], [ %a, %entry ]
  ret i32 %r
}
"""
        )
        assert len(m.get("f").blocks) == 1
        assert ctx.stats.get("simplifycfg.speculated_triangle", 0) == 1

    def test_call_blocks_speculation(self):
        """The crux of instrument-first (§2.2): an opaque call — exactly
        what a probe lowers to — pins its block."""
        source = self.DIAMOND.replace(
            "%x = add i32 %a, 1",
            "call void @__odin_cov_hit(i64 3)\n  %x = add i32 %a, 1",
        ) + "\ndeclare void @__odin_cov_hit(i64)\n"
        m, ctx = simplify(source)
        assert len(m.get("f").blocks) == 4  # nothing merged
        assert ctx.stats.get("simplifycfg.speculated_diamond", 0) == 0

    def test_store_blocks_speculation(self):
        source = self.DIAMOND.replace(
            "%y = mul i32 %b, 2",
            "store i32 %b, ptr @g\n  %y = mul i32 %b, 2",
        ) + "\n@g = global i32 0\n"
        m, _ = simplify(source)
        assert len(m.get("f").blocks) == 4

    def test_load_blocks_speculation(self):
        """Loads may fault; never hoisted past a branch."""
        source = self.DIAMOND.replace(
            "%x = add i32 %a, 1",
            "%l = load i32, ptr @g\n  %x = add i32 %l, 1",
        ) + "\n@g = global i32 0\n"
        m, _ = simplify(source)
        assert len(m.get("f").blocks) == 4

    def test_division_by_variable_blocks_speculation(self):
        source = self.DIAMOND.replace("%x = add i32 %a, 1", "%x = sdiv i32 %a, %b")
        m, _ = simplify(source)
        assert len(m.get("f").blocks) == 4

    def test_division_by_nonzero_constant_speculates(self):
        source = self.DIAMOND.replace("%x = add i32 %a, 1", "%x = sdiv i32 %a, 4")
        m, _ = simplify(source)
        assert len(m.get("f").blocks) == 1

    def test_oversized_arm_not_speculated(self):
        big_arm = "\n".join(
            f"  %x{i} = add i32 %a, {i}" for i in range(8)
        )
        source = self.DIAMOND.replace(
            "  %x = add i32 %a, 1",
            big_arm + "\n  %x = add i32 %x7, 1",
        )
        m, _ = simplify(source)
        assert len(m.get("f").blocks) == 4
