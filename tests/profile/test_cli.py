"""The ``repro profile`` command."""

import json

from repro.cli import main


class TestProfileCLI:
    def test_profile_runs_and_reports(self, capsys):
        assert main([
            "profile", "json", "--executions", "100", "--window", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out and "vs budget" in out
        assert "PASS" in out

    def test_strict_converged_patch_only(self, capsys):
        assert main([
            "profile", "json", "--executions", "100", "--window", "20",
            "--strict",
        ]) == 0
        out = capsys.readouterr().out
        assert "NOT CONVERGED" not in out
        assert "TOGGLES COMPILED" not in out

    def test_report_json_and_trace(self, tmp_path, capsys):
        report_path = tmp_path / "profile.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "profile", "lcms", "--executions", "60", "--window", "20",
            "--report-json", str(report_path),
            "--trace-out", str(trace_path),
        ]) == 0
        payload = json.loads(report_path.read_text())
        assert len(payload) == 1
        report = payload[0]
        assert report["program"] == "lcms"
        assert report["toggles_patch_only"] is True
        assert report["compile_batches"] == 0
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        assert events

    def test_windows_flag_prints_controller_steps(self, capsys):
        assert main([
            "profile", "json", "--executions", "60", "--window", "20",
            "--windows",
        ]) == 0
        assert "window 0:" in capsys.readouterr().out

    def test_default_programs(self, capsys):
        assert main([
            "profile", "--executions", "40", "--window", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "json:" in out and "lcms:" in out
