"""ProfileOverheadController: windowed budget control over probe toggles."""

from repro.core.engine import Odin
from repro.ir.parser import parse_module
from repro.profile.controller import (
    ProfileBudgetConfig,
    ProfileOverheadController,
)
from repro.profile.runtime import PROF_ENTER_COST, PROF_EXIT_COST
from repro.profile.tool import Profiler

PROGRAM = """
define internal i32 @hot(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal i32 @warm(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}

define i32 @main() {
entry:
  %a = call i32 @hot(i32 1)
  %b = call i32 @warm(i32 %a)
  ret i32 %b
}
"""

PER_CALL = PROF_ENTER_COST + PROF_EXIT_COST


def make_controller(config=None):
    engine = Odin(parse_module(PROGRAM), preserve=("main", "hot", "warm"))
    tool = Profiler(engine)
    tool.add_all_function_probes()
    tool.build()
    controller = ProfileOverheadController(
        tool,
        config
        if config is not None
        else ProfileBudgetConfig(
            target_overhead=0.25, window=4, protected=frozenset({"main"})
        ),
    )
    return tool, controller


def feed_window(controller, tool, baseline, overhead, calls):
    """Push one window of synthetic executions; *calls* maps symbols to
    per-window call counts (their probe events drive attribution)."""
    for symbol, n in calls.items():
        events = tool.runtime.symbol_events.setdefault(symbol, [0, 0])
        events[0] += n
        events[1] += n
    per_exec = baseline + overhead // controller.config.window
    for _ in range(controller.config.window):
        controller.record_execution(per_exec, baseline)


class TestWindowing:
    def test_window_closes_at_configured_size(self):
        tool, controller = make_controller()
        feed_window(controller, tool, 1000, 0, {})
        assert len(controller.windows) == 1
        assert controller.windows[0].executions == 4

    def test_within_band_no_actuation(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        feed_window(
            controller, tool, 1000, int(window_base * 0.25), {"hot": 10}
        )
        w = controller.windows[0]
        assert not w.deinstrumented and not w.reinstrumented
        assert not controller.rebuilds


class TestDeinstrument:
    def test_hottest_symbol_flipped_off_at_patch_tier(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        # hot carries ~40% overhead, warm ~10%: flipping hot alone lands
        # the projection inside the band.
        hot_calls = int(window_base * 0.40) // PER_CALL
        warm_calls = int(window_base * 0.10) // PER_CALL
        overhead = (hot_calls + warm_calls) * PER_CALL
        feed_window(
            controller,
            tool,
            1000,
            overhead,
            {"hot": hot_calls, "warm": warm_calls},
        )
        w = controller.windows[0]
        assert w.deinstrumented == ["hot"]
        assert "hot" in controller.deinstrumented
        assert all(
            not p.enabled
            for p in tool.probes.values()
            if p.target_symbol() == "hot"
        )
        assert controller.toggles_patch_only
        assert w.rebuild_tier == "patch"

    def test_protected_symbol_never_flipped(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        calls = int(window_base * 0.80) // PER_CALL
        feed_window(controller, tool, 1000, calls * PER_CALL, {"main": calls})
        assert "main" not in controller.deinstrumented
        assert all(
            p.enabled
            for p in tool.probes.values()
            if p.target_symbol() == "main"
        )

    def test_flips_multiple_symbols_when_one_is_not_enough(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        hot_calls = int(window_base * 0.40) // PER_CALL
        warm_calls = int(window_base * 0.35) // PER_CALL
        overhead = (hot_calls + warm_calls) * PER_CALL
        feed_window(
            controller,
            tool,
            1000,
            overhead,
            {"hot": hot_calls, "warm": warm_calls},
        )
        assert set(controller.windows[0].deinstrumented) == {"hot", "warm"}


class TestReinstrument:
    def test_cold_symbol_flipped_back_when_budget_frees(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        # warm is the hottest single flip that stays inside the band
        # (flipping hot instead would land at 0.06, far under the floor).
        hot_calls = int(window_base * 0.27) // PER_CALL
        warm_calls = int(window_base * 0.06) // PER_CALL
        overhead = (hot_calls + warm_calls) * PER_CALL
        feed_window(
            controller,
            tool,
            1000,
            overhead,
            {"hot": hot_calls, "warm": warm_calls},
        )
        assert controller.windows[0].deinstrumented == ["warm"]
        # Next window the hot path cooled off: overhead well below the
        # floor, and warm's estimated cost fits back under the ceiling.
        hot_calls = int(window_base * 0.10) // PER_CALL
        feed_window(
            controller, tool, 1000, hot_calls * PER_CALL, {"hot": hot_calls}
        )
        w = controller.windows[1]
        assert w.reinstrumented == ["warm"]
        assert "warm" not in controller.deinstrumented
        assert all(
            p.enabled
            for p in tool.probes.values()
            if p.target_symbol() == "warm"
        )
        assert controller.toggles_patch_only


class TestConvergence:
    def test_converged_within_band(self):
        tool, controller = make_controller()
        window_base = 1000 * controller.config.window
        for _ in range(3):
            feed_window(
                controller, tool, 1000, int(window_base * 0.25), {"hot": 5}
            )
        assert controller.converged

    def test_under_floor_fully_instrumented_counts_as_converged(self):
        # Full instrumentation cheaper than the budget: nothing to add,
        # so the fixed point below the band floor is still "converged".
        tool, controller = make_controller()
        for _ in range(3):
            feed_window(controller, tool, 1000, 0, {})
        assert controller.converged
        assert not controller.deinstrumented

    def test_not_converged_above_band(self):
        tool, controller = make_controller(
            ProfileBudgetConfig(
                target_overhead=0.25,
                window=4,
                protected=frozenset({"main", "hot", "warm"}),
            )
        )
        window_base = 1000 * controller.config.window
        for _ in range(3):
            feed_window(
                controller, tool, 1000, int(window_base * 0.80), {}
            )
        assert not controller.converged
