"""run_profile: the end-to-end budgeted profiling loop."""

import pytest

from repro.profile import ProfileBudgetConfig, run_profile
from repro.programs.registry import get_program


@pytest.fixture(scope="module")
def json_run():
    return run_profile(
        get_program("json"), budget=0.25, executions=100, window=20, seed=1
    )


class TestRunProfile:
    def test_converges_into_budget_band(self, json_run):
        report = json_run.report
        assert report.converged
        final = report.final_window_overhead
        assert final is not None
        assert final <= 0.25 * 1.25

    def test_toggles_serviced_by_patch_tier(self, json_run):
        report = json_run.report
        assert report.rebuilds >= 1
        assert report.toggles_patch_only
        assert report.compile_batches == 0
        assert all(t in ("patch", "noop") for t in report.rebuild_tiers)

    def test_deinstrumented_hot_cold_retained(self, json_run):
        report = json_run.report
        assert report.deinstrumented
        # De-instrumented symbols were actually called; cold symbols
        # (never called) keep their instrumentation for the report.
        called = {row["symbol"] for row in report.flat if row["calls"]}
        assert set(report.deinstrumented) <= called
        assert report.cold_instrumented
        assert not set(report.cold_instrumented) & called
        assert not set(report.cold_instrumented) & set(report.deinstrumented)

    def test_flat_profile_sorted_and_flagged(self, json_run):
        flat = json_run.report.flat
        incl = [row["incl_cycles"] for row in flat]
        assert incl == sorted(incl, reverse=True)
        off = {row["symbol"] for row in flat if not row["enabled"]}
        assert off == set(json_run.report.deinstrumented)

    def test_edges_report_call_paths(self, json_run):
        edges = json_run.report.edges
        assert edges
        callers = {e["caller"] for e in edges}
        assert "<root>" in callers  # the entry edge
        assert all(e["calls"] > 0 for e in edges)

    def test_report_roundtrips_to_json(self, json_run):
        import json as json_mod

        payload = json_mod.loads(json_mod.dumps(json_run.report.to_dict()))
        assert payload["program"] == "json"
        assert payload["toggles_patch_only"] is True

    def test_span_tree_recorded(self, json_run):
        roots = [
            s for s in json_run.tracer.roots() if s.name.startswith("profile:")
        ]
        assert len(roots) == 1
        assert roots[0].find("run_input") is not None

    def test_protected_entry_points_stay_instrumented(self, json_run):
        assert not {"main", "run_input"} & set(json_run.report.deinstrumented)

    def test_custom_config_respected(self):
        run = run_profile(
            get_program("lcms"),
            executions=40,
            window=10,
            config=ProfileBudgetConfig(
                target_overhead=5.0,  # huge budget: nothing to remove
                window=10,
                protected=frozenset({"main", "run_input"}),
            ),
        )
        assert not run.report.deinstrumented
        assert run.report.probes_enabled == run.report.probes_total
        assert run.report.converged  # under the floor, fully instrumented

    def test_empty_corpus_rejected(self):
        class Hollow:
            name = "hollow"

            def seeds(self, seed):
                return []

        with pytest.raises(ValueError):
            run_profile(Hollow())
