"""ProfilingRuntime: shadow stack, incl/excl attribution, call paths."""

from repro.obs.metrics import MetricsRegistry
from repro.profile.runtime import (
    PROF_ENTER_COST,
    PROF_EXIT_COST,
    ROOT_SYMBOL,
    ProfilingRuntime,
)


class FakeVM:
    def __init__(self, cycles=0):
        self.cycles = cycles


def make_runtime(**kwargs):
    rt = ProfilingRuntime(**kwargs)
    rt.register_probe(1, "a", "enter")
    rt.register_probe(2, "a", "exit")
    rt.register_probe(3, "b", "enter")
    rt.register_probe(4, "b", "exit")
    return rt


def fire(rt, pid, cycles):
    kind = "prof_enter" if rt.kind_of[pid] == "enter" else "prof_exit"
    rt.on_probe(kind, pid, (pid,), FakeVM(cycles))


class TestAttribution:
    def test_nested_inclusive_exclusive(self):
        rt = make_runtime()
        fire(rt, 1, 0)      # a enters
        fire(rt, 3, 10)     # b enters
        fire(rt, 4, 30)     # b exits: incl 20
        fire(rt, 2, 50)     # a exits: incl 50, excl 30
        assert rt.stats["b"].calls == 1
        assert rt.stats["b"].incl_cycles == 20
        assert rt.stats["b"].excl_cycles == 20
        assert rt.stats["a"].incl_cycles == 50
        assert rt.stats["a"].excl_cycles == 30

    def test_edges_and_path_tree(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 3, 10)
        fire(rt, 4, 30)
        fire(rt, 2, 50)
        assert rt.edges == {(ROOT_SYMBOL, "a"): 1, ("a", "b"): 1}
        a_node = rt.root.children["a"]
        assert a_node.calls == 1 and a_node.incl_cycles == 50
        assert a_node.children["b"].incl_cycles == 20

    def test_recursion_matches_innermost_frame(self):
        rt = make_runtime()
        fire(rt, 1, 0)      # a
        fire(rt, 1, 10)     # a -> a
        fire(rt, 2, 30)     # inner a exits: incl 20
        fire(rt, 2, 60)     # outer a exits: incl 60, excl 40
        assert rt.stats["a"].calls == 2
        assert rt.stats["a"].incl_cycles == 80
        assert rt.stats["a"].excl_cycles == 60
        # Context tree separates the two depths.
        outer = rt.root.children["a"]
        assert outer.children["a"].incl_cycles == 20

    def test_unknown_probe_id_ignored(self):
        rt = make_runtime()
        rt.on_probe("prof_enter", 999, (999,), FakeVM(0))
        assert not rt.stats and not rt.events


class TestPartialInstrumentation:
    def test_exit_without_enter_dropped(self):
        # The symbol's probes flipped on mid-call: its exit fires with no
        # matching frame and must not corrupt someone else's frame.
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 4, 20)     # b exit, never entered
        fire(rt, 2, 50)
        assert "b" not in rt.stats
        assert rt.stats["a"].incl_cycles == 50

    def test_missing_exit_unwound_by_outer_exit(self):
        # b's exit never fired (flipped off mid-call); a's exit retires b
        # up to the current cycle count.
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 3, 10)
        fire(rt, 2, 50)     # a exits while b is still open
        assert rt.stats["b"].incl_cycles == 40
        assert rt.stats["a"].incl_cycles == 50
        assert rt.stats["a"].excl_cycles == 10

    def test_finish_execution_unwinds_trap_leftovers(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 3, 10)     # VMTrap aborts here; no exits ever fire
        rt.finish_execution(100)
        assert rt.stats["b"].incl_cycles == 90
        assert rt.stats["a"].incl_cycles == 100
        assert not rt._stack


class TestAccounting:
    def test_event_counts_and_clear(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 2, 10)
        assert rt.event_counts() == {1: 1, 2: 1}
        rt.clear_event_counts()
        assert rt.event_counts() == {}
        # Clearing the sync counters must not lose the overhead ledger.
        assert rt.symbol_events["a"] == [1, 1]

    def test_symbol_overhead_cycles_exact(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 3, 10)
        fire(rt, 4, 30)
        fire(rt, 2, 50)
        fire(rt, 1, 60)
        fire(rt, 2, 70)
        assert rt.symbol_overhead_cycles() == {
            "a": 2 * PROF_ENTER_COST + 2 * PROF_EXIT_COST,
            "b": PROF_ENTER_COST + PROF_EXIT_COST,
        }
        assert rt.overhead_cycles() == sum(rt.symbol_overhead_cycles().values())


class TestExport:
    def test_span_tree_nests_and_tiles(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 3, 10)
        fire(rt, 4, 30)
        fire(rt, 2, 50)
        root = rt.span_tree("t")
        assert root.sim_ms == 50.0
        (a_span,) = root.children
        assert a_span.name == "a" and a_span.sim_ms == 50.0
        (b_span,) = a_span.children
        assert b_span.name == "b" and b_span.sim_ms == 20.0
        assert b_span.args["calls"] == 1
        # Children stay inside the parent interval.
        assert b_span.sim_start_ms >= a_span.sim_start_ms
        assert b_span.sim_start_ms + b_span.sim_ms <= (
            a_span.sim_start_ms + a_span.sim_ms
        )

    def test_publish_gauges(self):
        rt = make_runtime()
        fire(rt, 1, 0)
        fire(rt, 2, 10)
        metrics = MetricsRegistry()
        rt.publish(metrics)
        assert metrics.stats()["gauges"]["profile.calls.a"] == 1.0
        assert metrics.stats()["gauges"]["profile.incl_cycles.a"] == 10.0
