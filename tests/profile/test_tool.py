"""Profiler tool: probe installation, execution, patch-tier toggles."""

from repro.core.engine import TIER_PATCH, Odin
from repro.ir.parser import parse_module
from repro.profile.probes import ProfEnterProbe, ProfExitProbe
from repro.profile.tool import Profiler

PROGRAM = """
define internal i32 @leaf(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal i32 @twice(i32 %x) {
entry:
  %a = call i32 @leaf(i32 %x)
  %b = call i32 @leaf(i32 %a)
  ret i32 %b
}

define i32 @main() {
entry:
  %r = call i32 @twice(i32 5)
  ret i32 %r
}
"""


def make_tool(**kwargs):
    engine = Odin(
        parse_module(PROGRAM), preserve=("main", "twice", "leaf")
    )
    tool = Profiler(engine, **kwargs)
    tool.add_all_function_probes()
    tool.build()
    return tool


class TestInstall:
    def test_one_enter_one_exit_per_ret(self):
        tool = make_tool()
        enters = [
            p for p in tool.probes.values() if isinstance(p, ProfEnterProbe)
        ]
        exits = [
            p for p in tool.probes.values() if isinstance(p, ProfExitProbe)
        ]
        assert len(enters) == 3  # leaf, twice, main
        assert len(exits) == 3   # one ret each
        assert all(p.patchable and p.family == "prof" for p in tool.probes.values())

    def test_skip_list(self):
        engine = Odin(
            parse_module(PROGRAM), preserve=("main", "twice", "leaf")
        )
        tool = Profiler(engine)
        installed = tool.add_all_function_probes(skip=("main",))
        assert {sym for sym, _ in installed} == {"leaf", "twice"}

    def test_runtime_registration(self):
        tool = make_tool()
        for probe in tool.probes.values():
            assert tool.runtime.symbol_of[probe.id] == probe.target_symbol()
            kind = "enter" if isinstance(probe, ProfEnterProbe) else "exit"
            assert tool.runtime.kind_of[probe.id] == kind


class TestExecution:
    def test_profile_populated(self):
        tool = make_tool()
        vm = tool.make_vm()
        result = vm.run("main")
        tool.runtime.finish_execution(result.cycles)
        assert result.exit_code == 7
        stats = tool.runtime.stats
        assert stats["leaf"].calls == 2
        assert stats["twice"].calls == 1
        assert stats["main"].calls == 1
        # Nesting: main includes twice includes both leaf calls.
        assert stats["main"].incl_cycles > stats["twice"].incl_cycles
        assert stats["twice"].incl_cycles > stats["leaf"].incl_cycles
        assert tool.runtime.edges[("twice", "leaf")] == 2

    def test_sync_profiles_lands_on_calls(self):
        tool = make_tool()
        vm = tool.make_vm()
        tool.runtime.finish_execution(vm.run("main").cycles)
        tool.sync_profiles()
        by_symbol = {}
        for probe in tool.probes.values():
            by_symbol.setdefault(probe.target_symbol(), 0)
            by_symbol[probe.target_symbol()] += probe.calls
        # enter + exit events per call: leaf 2 calls -> 4 events.
        assert by_symbol["leaf"] == 4
        assert by_symbol["twice"] == 2

    def test_uninstrumented_run_is_cheaper(self):
        clean = Odin(
            parse_module(PROGRAM), preserve=("main", "twice", "leaf")
        )
        clean.initial_build()
        from repro.vm.interpreter import VM

        base = VM(clean.executable).run("main").cycles
        tool = make_tool()
        profiled = tool.make_vm().run("main").cycles
        assert profiled > base


class TestToggles:
    def test_deinstrument_symbol_is_patch_tier(self):
        tool = make_tool()
        before = tool.make_vm().run("main").cycles
        assert tool.set_symbol_probes_enabled("leaf", False) == 2
        report = tool.engine.rebuild_if_needed()
        assert report is not None
        assert report.tier == TIER_PATCH
        assert all(t == TIER_PATCH for t in report.fragment_tiers.values())
        # The family tag flows into the patch-tier evidence.
        assert ("prof",) in report.fragment_families.values()
        after = tool.make_vm().run("main").cycles
        assert after < before
        # leaf no longer reports events; the rest still do.
        rt = tool.runtime
        rt.clear()
        rt.finish_execution(tool.make_vm().run("main").cycles)
        assert "leaf" not in rt.stats
        assert rt.stats["twice"].calls == 1
