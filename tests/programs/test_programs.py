"""Tests over the 13 benchmark target programs.

Each program must compile cleanly, run its ``main`` smoke test, survive
its whole seed corpus without trapping, and behave identically at O0 and
O2 (the end-to-end differential that validates the whole optimizer).
"""

import pytest

from repro.programs.registry import all_programs, get_program, program_names
from repro.toolchain import build_module
from repro.vm.interpreter import VM
from tests.conftest import cached_build, fresh_module, run_entry

NAMES = program_names()


class TestRegistry:
    def test_thirteen_programs(self):
        assert len(NAMES) == 13

    def test_paper_order(self):
        assert NAMES == [
            "freetype2", "libjpeg", "proj4", "libpng", "re2", "harfbuzz",
            "sqlite", "json", "libxml2", "vorbis", "lcms", "woff2", "x509",
        ]

    def test_unknown_program_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown target program"):
            get_program("nginx")

    def test_seed_corpora_deterministic(self):
        for name in NAMES:
            p = get_program(name)
            assert p.seeds(0) == p.seeds(0)
            assert len(p.seeds(0)) >= 5

    def test_sqlite_has_the_giant_function(self):
        """Paper §5.3: sqlite3VdbeExec dominates — our vdbe_exec must be
        by far the largest single function in the suite."""
        module = fresh_module("sqlite")
        vdbe = module.get("vdbe_exec")
        sizes = {
            f.name: f.count_instructions() for f in module.defined_functions()
        }
        assert sizes["vdbe_exec"] == max(sizes.values())
        second = max(v for k, v in sizes.items() if k != "vdbe_exec")
        assert sizes["vdbe_exec"] > 5 * second

    def test_json_is_smallest(self):
        sizes = {
            name: fresh_module(name).count_instructions()
            for name in ("json", "sqlite", "libxml2")
        }
        assert sizes["json"] < sizes["libxml2"] < sizes["sqlite"]


@pytest.mark.parametrize("name", NAMES)
class TestEachProgram:
    def test_main_smoke(self, name):
        build = cached_build(name, 2)
        result = VM(build.executable).run("main")
        assert result.trap is None
        assert result.exit_code == 0
        assert result.stdout  # each main prints a line

    def test_seeds_do_not_trap(self, name):
        build = cached_build(name, 2)
        for seed in get_program(name).seeds():
            result = run_entry(build.executable, "run_input", seed)
            assert result.trap is None, (seed[:24], result.trap)

    def test_o0_o2_differential(self, name):
        """Optimization must not change observable behaviour."""
        o0 = cached_build(name, 0)
        o2 = cached_build(name, 2)
        for seed in get_program(name).seeds():
            r0 = run_entry(o0.executable, "run_input", seed)
            r2 = run_entry(o2.executable, "run_input", seed)
            assert r0.exit_code == r2.exit_code, seed[:24]
            assert r0.stdout == r2.stdout

    def test_o2_not_slower(self, name):
        o0 = cached_build(name, 0)
        o2 = cached_build(name, 2)
        seeds = get_program(name).seeds()
        c0 = sum(run_entry(o0.executable, "run_input", s).cycles for s in seeds)
        c2 = sum(run_entry(o2.executable, "run_input", s).cycles for s in seeds)
        assert c2 <= c0


class TestMutatedInputsRobustness:
    """Fuzz-style robustness: random mutations of seeds must never trap
    (the targets are written to be memory-safe over arbitrary inputs)."""

    @pytest.mark.parametrize("name", ["json", "x509", "woff2", "libpng"])
    def test_mutated_seeds_survive(self, name):
        from repro.fuzz.mutator import Mutator
        from repro.utils.rng import DeterministicRNG

        build = cached_build(name, 2)
        mutator = Mutator(DeterministicRNG(99))
        seeds = get_program(name).seeds()
        for i in range(60):
            data = mutator.mutate(seeds[i % len(seeds)])
            result = run_entry(build.executable, "run_input", data)
            assert result.trap is None, (name, data[:32], result.trap)
