// selffuzz reproducer (planted-bug regression seed)
// status: behaviour-divergence
// planted-pass: miscompile-add
// origin: seed=7 index=0 style=cse-calls
// expectation: clean (STATUS_OK) under the real -O2 pipeline
int g0 = 256;
int f0(int p0)
{
    int v1 = (((31 > (-65535)) ? p0 : 64) + p0);
    int v2 = (((31 > (-65535)) ? p0 : 64) + p0);
    int v3 = (v1 + v2);
    return (v3 - (((31 > (-65535)) ? p0 : 64) + p0));
}

int f1(int p0)
{
    (g0 += f0(((-127) + 5)));
}

int f2(int p0, int p1)
{
    int v1 = ((33 % (p1 | 1)) / ((255 % (p0 | 1)) | 1));
    (v1 ^= f1(((-8) % (v1 | 1))));
}

int main(void)
{
    int acc1 = 0;
    (acc1 = ((acc1 * 31) + f2((15 << 32), (-(-63)))));
    (acc1 ^= g0);
    printf("%d\n", acc1);
}
