// selffuzz reproducer (planted-bug regression seed)
// status: behaviour-divergence
// planted-pass: miscompile-add
// origin: seed=11 index=0 style=inline-chain
// expectation: clean (STATUS_OK) under the real -O2 pipeline
int g1 = 32;
int f0(int p0)
{
    return ((p0 ^ 32) - (p0 << 36));
}

int f1(int p0, int p1)
{
    return (5 + f0(((-3) >> (1000 & 31))));
}

int main(void)
{
    int acc1 = 0;
    (acc1 = ((acc1 * 31) + f1((1 >> 16), g1)));
    return (acc1 & 127);
}
