// selffuzz reproducer (planted-bug regression seed)
// status: sanitizer-error
// planted-pass: probe-eater
// origin: seed=7 index=0 style=cse-calls
// expectation: clean (STATUS_OK) under the real -O2 pipeline
int main(void)
{
}
