"""Deliberately buggy passes planted into the -O2 pipeline for tests.

The selffuzz loop is only trustworthy if it catches bugs we *know* are
there: these passes inject each failure mode the harness claims to
detect — behavioural miscompiles, probe destruction, pass crashes and
verifier breakage — via the harness's pipeline-factory hook.
"""

from repro.instrument.coverage import ODIN_COV_RUNTIME
from repro.ir.instructions import BinaryInst, CallInst
from repro.opt.pass_manager import Pass
from repro.opt.pipeline import o2_pipeline


class MiscompileAdd(Pass):
    """Rewrites the first ``add`` in a non-main function to ``sub``."""

    name = "miscompile-add"

    def run(self, module, ctx):
        for fn in module.defined_functions():
            if fn.name == "main":
                continue
            for block in fn.blocks:
                for inst in block.instructions:
                    if isinstance(inst, BinaryInst) and inst.opcode == "add":
                        inst.opcode = "sub"
                        return True
        return False


class ProbeEater(Pass):
    """Silently deletes every coverage probe call — the exact failure
    the probe-integrity sanitizer exists to catch."""

    name = "probe-eater"

    def run(self, module, ctx):
        doomed = [
            inst
            for fn in module.defined_functions()
            for block in fn.blocks
            for inst in block.instructions
            if isinstance(inst, CallInst)
            and getattr(inst.callee, "name", None) == ODIN_COV_RUNTIME
        ]
        for inst in doomed:
            inst.erase()
        return bool(doomed)


class CrashingPass(Pass):
    name = "crashing-pass"

    def run(self, module, ctx):
        raise RuntimeError("planted crash")


class TerminatorThief(Pass):
    """Strips one block terminator, leaving verifier-invalid IR."""

    name = "terminator-thief"

    def run(self, module, ctx):
        for fn in module.defined_functions():
            for block in fn.blocks:
                term = block.terminator
                if term is not None:
                    term.erase()
                    return True
        return False


def pipeline_with(*bugs):
    """A pipeline factory: the planted passes, then the real -O2 list."""

    def factory():
        return [bug() for bug in bugs] + list(o2_pipeline().passes)

    return factory
