"""Corpus loader: every reproducer in ``tests/selffuzz/corpus/`` must

1. carry a well-formed metadata header (status, planted pass, origin),
2. be clean (STATUS_OK) under the **real** -O2 pipeline — these files
   are regression seeds: if one starts failing, a real bug appeared in
   exactly the pass-interaction shape a past (planted or real) bug had,
3. still reproduce its recorded failure when its planted pass is
   re-planted — the corpus keeps witnessing the loop works.
"""

import os
import re

import pytest

from repro.selffuzz import STATUS_OK, SelfFuzzHarness

from tests.selffuzz.planted import (
    MiscompileAdd,
    ProbeEater,
    TerminatorThief,
    CrashingPass,
    pipeline_with,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

PLANTED_BY_NAME = {
    "miscompile-add": MiscompileAdd,
    "probe-eater": ProbeEater,
    "terminator-thief": TerminatorThief,
    "crashing-pass": CrashingPass,
}

_HEADER_RE = re.compile(r"^// (?P<key>[a-z-]+): (?P<value>.+)$")


def load_corpus():
    entries = []
    for filename in sorted(os.listdir(CORPUS_DIR)):
        if not filename.endswith(".c"):
            continue
        path = os.path.join(CORPUS_DIR, filename)
        with open(path) as fp:
            text = fp.read()
        meta = {}
        for line in text.splitlines():
            match = _HEADER_RE.match(line)
            if match:
                meta[match.group("key")] = match.group("value")
        entries.append((filename, meta, text))
    return entries


CORPUS = load_corpus()


def test_corpus_is_not_empty():
    assert CORPUS, "tests/selffuzz/corpus/ has no reproducers"


@pytest.mark.parametrize(
    "filename,meta,text", CORPUS, ids=[e[0] for e in CORPUS]
)
class TestCorpusEntry:
    def test_header_metadata(self, filename, meta, text):
        assert "status" in meta, f"{filename} lacks a status header"
        assert "origin" in meta, f"{filename} lacks an origin header"
        assert meta.get("planted-pass") in PLANTED_BY_NAME, (
            f"{filename} names unknown planted pass "
            f"{meta.get('planted-pass')!r}"
        )

    def test_clean_under_real_pipeline(self, filename, meta, text):
        verdict = SelfFuzzHarness().check_source(text, filename)
        assert verdict.status == STATUS_OK, (
            f"REGRESSION: corpus reproducer {filename} now fails the real "
            f"pipeline: {verdict.status} ({verdict.detail})"
        )

    def test_still_reproduces_with_planted_pass(self, filename, meta, text):
        planted = PLANTED_BY_NAME[meta["planted-pass"]]
        harness = SelfFuzzHarness(pipeline=pipeline_with(planted))
        verdict = harness.check_source(text, filename)
        assert verdict.status == meta["status"], (
            f"{filename} no longer reproduces {meta['status']} "
            f"(got {verdict.status}) — minimized witness went stale"
        )
