"""Property-based invariants of the composition-styled program generator.

Every generated program must be a *valid differential subject*: it
compiles to verifier-clean IR, stays verifier-clean through the full
-O2 pipeline, runs trap-free at -O0 (UB-freedom by construction — the
ground-truth leg must be meaningful), round-trips through the MiniC
printer, and is bit-for-bit reproducible from (seed, index).
"""

import pytest

from repro.frontend import compile_source, parse
from repro.frontend.printer import print_unit
from repro.ir.clone import clone_module
from repro.ir.verifier import verify_module
from repro.opt.pipeline import optimize
from repro.selffuzz.generator import (
    ALL_STYLES,
    ProgramGenerator,
    parse_style_mix,
)
from repro.selffuzz.harness import o0_behaviour

SWEEP = 25  # programs per property; keep tier-1 latency sane


def _programs(seed=0, count=SWEEP, mix=None):
    gen = ProgramGenerator(seed, mix)
    return [gen.generate(i) for i in range(count)]


class TestWellFormedness:
    def test_compiles_verifier_clean(self):
        for program in _programs():
            module = compile_source(program.source, program.name)
            verify_module(module)

    def test_verifier_clean_after_o2(self):
        for program in _programs():
            module = compile_source(program.source, program.name)
            optimize(module, 2, verify_each=True)
            verify_module(module)

    def test_o0_runs_trap_free(self):
        # UB-freedom by construction: -O0 must be usable as ground truth.
        for program in _programs():
            module = compile_source(program.source, program.name)
            behaviour = o0_behaviour(module)
            assert behaviour.trap is None, (
                f"{program.name} trapped at -O0: {behaviour.trap}"
            )
            assert 0 <= behaviour.exit_code <= 127

    def test_main_prints_accumulator(self):
        for program in _programs(count=5):
            module = compile_source(program.source, program.name)
            behaviour = o0_behaviour(module)
            assert behaviour.stdout.endswith(b"\n")


class TestRoundTrip:
    def test_print_parse_print_is_fixpoint(self):
        for program in _programs():
            once = print_unit(parse(program.source, program.name))
            twice = print_unit(parse(once, program.name))
            assert once == twice

    def test_reprinted_program_behaves_identically(self):
        for program in _programs(count=10):
            module = compile_source(program.source, program.name)
            reprinted = print_unit(parse(program.source, program.name))
            module2 = compile_source(reprinted, program.name)
            assert o0_behaviour(module) == o0_behaviour(module2)


class TestDeterminism:
    def test_same_seed_same_programs(self):
        a = _programs(seed=3)
        b = _programs(seed=3)
        assert [p.source for p in a] == [p.source for p in b]
        assert [p.style for p in a] == [p.style for p in b]

    def test_different_seeds_differ(self):
        a = _programs(seed=1, count=5)
        b = _programs(seed=2, count=5)
        assert [p.source for p in a] != [p.source for p in b]

    def test_generate_is_index_independent(self):
        # generate(i) must not depend on which indices ran before it.
        gen = ProgramGenerator(9)
        eager = [gen.generate(i) for i in range(6)]
        fresh = ProgramGenerator(9)
        assert fresh.generate(5).source == eager[5].source


class TestStyles:
    def test_all_styles_reachable(self):
        styles = {p.style for p in _programs(count=60)}
        assert styles == set(ALL_STYLES)

    def test_single_style_mix(self):
        mix = parse_style_mix("diamond")
        for program in _programs(count=8, mix=mix):
            assert program.style == "diamond"

    def test_weighted_mix_parses(self):
        mix = parse_style_mix("inline-chain=3,cse-calls=1")
        assert set(mix) == {"inline-chain", "cse-calls"}
        assert mix["inline-chain"] == 3.0

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            parse_style_mix("no-such-style")


class TestOptimizationIsExercised:
    def test_o2_actually_changes_programs(self):
        # The styles exist to trigger pass interactions; if -O2 is a
        # no-op on most programs the generator has regressed.
        changed = 0
        for program in _programs(count=10):
            module = compile_source(program.source, program.name)
            before = module.count_instructions()
            optimize(clone_and_opt := clone_module(module).module, 2)
            if clone_and_opt.count_instructions() != before:
                changed += 1
        assert changed >= 8
