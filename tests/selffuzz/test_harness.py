"""The differential harness must catch every planted failure mode and
attribute it to the offending pass."""

import pytest

from repro.frontend import compile_source
from repro.selffuzz import (
    STATUS_DIVERGENCE,
    STATUS_OK,
    STATUS_PASS_CRASH,
    STATUS_SANITIZER,
    STATUS_VERIFIER,
    ProgramGenerator,
    SelfFuzzCampaign,
    SelfFuzzHarness,
    bisect_divergence,
    run_o2_with_attribution,
)
from repro.selffuzz.harness import instrument_blocks, o0_behaviour, run_module

from tests.selffuzz.planted import (
    CrashingPass,
    MiscompileAdd,
    ProbeEater,
    TerminatorThief,
    pipeline_with,
)

SOURCE = """
int helper(int a, int b)
{
    int x = a + b;
    int y = a + b;
    return x + y;
}

int main(void)
{
    int r = helper(3, 4);
    printf("%d\\n", r);
    return r & 127;
}
"""


def first_failure(harness, seed=7, budget=20):
    gen = ProgramGenerator(seed)
    for index in range(budget):
        verdict = harness.check_program(gen.generate(index))
        if not verdict.ok:
            return verdict
    raise AssertionError("planted bug never fired")


class TestCleanPipeline:
    def test_handwritten_program_is_ok(self):
        verdict = SelfFuzzHarness().check_source(SOURCE, "hand")
        assert verdict.status == STATUS_OK

    def test_generated_programs_are_ok(self):
        harness = SelfFuzzHarness()
        gen = ProgramGenerator(0)
        for index in range(5):
            verdict = harness.check_program(gen.generate(index))
            assert verdict.status == STATUS_OK, verdict.detail


class TestPlantedDivergence:
    def test_detected_and_attributed(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(MiscompileAdd))
        verdict = first_failure(harness)
        assert verdict.status == STATUS_DIVERGENCE
        assert verdict.pass_name == "miscompile-add"
        assert verdict.bisect is not None
        assert verdict.mismatches

    def test_handwritten_divergence(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(MiscompileAdd))
        verdict = harness.check_source(SOURCE, "hand")
        assert verdict.status == STATUS_DIVERGENCE
        assert verdict.pass_name == "miscompile-add"


class TestPlantedSanitizerBug:
    def test_probe_eater_caught_by_sanitizer_leg(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(ProbeEater))
        verdict = harness.check_source(SOURCE, "hand")
        assert verdict.status == STATUS_SANITIZER
        assert verdict.pass_name == "probe-eater"

    def test_probe_eater_invisible_without_sanitizer(self):
        harness = SelfFuzzHarness(
            pipeline=pipeline_with(ProbeEater), sanitize=False
        )
        verdict = harness.check_source(SOURCE, "hand")
        assert verdict.status == STATUS_OK


class TestPlantedCrashAndVerifier:
    def test_crash_attributed(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(CrashingPass))
        verdict = harness.check_source(SOURCE, "hand")
        assert verdict.status == STATUS_PASS_CRASH
        assert verdict.pass_name == "crashing-pass"
        assert "planted crash" in verdict.detail

    def test_verifier_breakage_attributed(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(TerminatorThief))
        verdict = harness.check_source(SOURCE, "hand")
        assert verdict.status == STATUS_VERIFIER
        assert verdict.pass_name == "terminator-thief"


class TestReplayMachinery:
    def test_schedule_is_deterministic(self):
        module_a = compile_source(SOURCE, "a")
        module_b = compile_source(SOURCE, "b")
        sched_a = run_o2_with_attribution(module_a)
        sched_b = run_o2_with_attribution(module_b)
        assert [(s.name, s.iteration, s.changed) for s in sched_a] == \
               [(s.name, s.iteration, s.changed) for s in sched_b]

    def test_bisect_returns_none_when_clean(self):
        result = bisect_divergence(
            lambda: compile_source(SOURCE, "clean"),
            lambda module: False,
        )
        assert result is None

    def test_instrumented_module_runs_probe_free(self):
        module = compile_source(SOURCE, "probed")
        plain = o0_behaviour(module)
        probes = instrument_blocks(module)
        assert probes > 0
        # Probes lower to machine probe ops the VM ignores without a
        # runtime: behaviour must be unchanged.
        assert run_module(module) == plain


class TestCampaign:
    def test_report_tallies_by_style_and_pass(self):
        campaign = SelfFuzzCampaign(
            seed=7, count=6,
            harness=SelfFuzzHarness(pipeline=pipeline_with(MiscompileAdd)),
        )
        report = campaign.run()
        assert sum(c["programs"] for c in report.styles.values()) == 6
        if report.failures:
            assert report.passes.get("miscompile-add")
            assert not report.ok
        data = report.to_dict()
        assert data["seed"] == 7 and data["count"] == 6

    def test_clean_campaign_is_ok(self):
        report = SelfFuzzCampaign(seed=0, count=3).run()
        assert report.ok
        assert report.to_dict()["failures"] == []
