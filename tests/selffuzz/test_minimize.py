"""The auto-minimizer must preserve the failure signature, shrink hard,
and terminate 1-minimal."""

import pytest

from repro.frontend import compile_source, parse
from repro.frontend.printer import print_unit
from repro.selffuzz import (
    STATUS_DIVERGENCE,
    Minimizer,
    ProgramGenerator,
    SelfFuzzHarness,
)
from repro.selffuzz.minimize import (
    count_statements,
    dead_local_names,
    relevant_allocas,
    statement_lists,
)

from tests.selffuzz.planted import MiscompileAdd, pipeline_with


def planted_failure():
    harness = SelfFuzzHarness(pipeline=pipeline_with(MiscompileAdd))
    gen = ProgramGenerator(7)
    for index in range(20):
        verdict = harness.check_program(gen.generate(index))
        if verdict.status == STATUS_DIVERGENCE:
            return harness, verdict
    raise AssertionError("planted bug never fired")


class TestMinimizer:
    def test_shrinks_and_preserves_failure(self):
        harness, verdict = planted_failure()
        minimizer = Minimizer(harness, verdict.signature())
        result = minimizer.minimize(verdict.source, verdict.name)
        assert result.final_statements < result.original_statements
        # The reduced program must still fail the same way under the
        # *full* harness (bisection re-attributes to the planted pass).
        reduced = harness.check_source(result.source, verdict.name)
        assert reduced.status == STATUS_DIVERGENCE
        assert reduced.pass_name == "miscompile-add"

    def test_result_is_one_minimal(self):
        harness, verdict = planted_failure()
        minimizer = Minimizer(harness, verdict.signature())
        result = minimizer.minimize(verdict.source, verdict.name)
        assert result.one_minimal
        # 1-minimality, checked directly: deleting any single remaining
        # statement must break the reproduction.
        unit = parse(result.source, "check")
        for lst in statement_lists(unit):
            for index in range(len(lst)):
                stmt = lst.pop(index)
                try:
                    candidate = print_unit(unit)
                except ValueError:
                    candidate = None
                if candidate is not None:
                    assert not minimizer.reproduces(candidate, "check"), (
                        f"statement {index} was deletable: {candidate}"
                    )
                lst.insert(index, stmt)

    def test_passing_program_returns_unchanged(self):
        harness = SelfFuzzHarness(pipeline=pipeline_with(MiscompileAdd))
        source = "int main(void)\n{\n    return 0;\n}\n"
        minimizer = Minimizer(harness, (STATUS_DIVERGENCE, None))
        result = minimizer.minimize(source, "clean")
        assert result.source == source
        assert result.rounds == 0


class TestDataflowGuidance:
    SOURCE = """
int f(int a)
{
    int used = a + 1;
    int wasted = a * 3;
    wasted = wasted + 7;
    printf("%d\\n", used);
    return used;
}

int main(void)
{
    return f(4) & 127;
}
"""

    def test_dead_locals_found(self):
        module = compile_source(self.SOURCE, "dead")
        fn = next(f for f in module.defined_functions() if f.name == "f")
        dead = dead_local_names(fn)
        assert "wasted" in dead
        assert "used" not in dead

    def test_relevant_allocas_keep_observable_state(self):
        module = compile_source(self.SOURCE, "dead")
        fn = next(f for f in module.defined_functions() if f.name == "f")
        names = {a.name.split(".")[0] for a in relevant_allocas(fn)}
        assert "used" in names

    def test_batch_deletion_drops_dead_writes(self):
        # A harness whose "failure" is simply printing the right value:
        # statements the closure proves irrelevant vanish in one batch.
        harness, verdict = planted_failure()
        minimizer = Minimizer(harness, verdict.signature())
        unit = parse(print_unit(parse(verdict.source, "v")), "v")
        before = count_statements(unit)
        minimizer._dataflow_batch(unit, "v")
        after = count_statements(unit)
        assert after <= before  # never grows; usually shrinks
