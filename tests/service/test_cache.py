"""Content-addressed code cache behaviour: keys, LRU, persistence."""

import pytest

from repro.backend.machine import DataSymbol, MachineFunction, MachineInst, ObjectFile
from repro.core.engine import Odin, fragment_content_key
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.service.cache import InMemoryCodeCache, PersistentCodeCache

PRESERVED = ("main", "run_input")


def make_object(name: str, payload: bytes = b"") -> ObjectFile:
    obj = ObjectFile(name)
    mf = MachineFunction(name=f"{name}_fn", linkage="external")
    mf.insts = [MachineInst("ret")]
    obj.add_function(mf)
    if payload:
        obj.add_data(DataSymbol(f"{name}_data", payload, "internal"))
    obj.compile_ms = 1.0
    return obj


def split_probed_fragment(engine: Odin):
    """Schedule a full build and split one fragment that carries probes
    (falls back to fragment #0 for engines without probes)."""
    engine.manager._dirty_symbols.update(engine.fragdef.owner.keys())
    sched = engine.manager.schedule()
    sched.apply_probes()
    probed_symbols = {p.target_symbol() for p in engine.manager}
    fragment = next(
        (
            f
            for f in sched.changed_fragments
            if probed_symbols & set(f.symbols)
        ),
        sched.changed_fragments[0],
    )
    return engine._split_fragment(sched.temp_module, fragment), fragment


class TestContentKey:
    def test_same_ir_same_probes_same_key(self):
        """Content addressing is stable across engine instances — that is
        what makes the cache shareable between clients and restarts."""
        keys = []
        for _ in range(2):
            engine = Odin(get_program("libjpeg").compile(), preserve=PRESERVED)
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            frag, _ = split_probed_fragment(engine)
            keys.append(fragment_content_key(frag, 2))
        assert keys[0] == keys[1]

    def test_opt_level_changes_key(self):
        engine = Odin(get_program("libjpeg").compile(), preserve=PRESERVED)
        frag, _ = split_probed_fragment(engine)
        assert fragment_content_key(frag, 2) != fragment_content_key(frag, 0)

    def test_probe_signature_changes_key(self):
        engine = Odin(get_program("libjpeg").compile(), preserve=PRESERVED)
        frag, _ = split_probed_fragment(engine)
        assert fragment_content_key(frag, 2, "CovProbe#1") != fragment_content_key(
            frag, 2, "CovProbe#2"
        )

    def test_probe_toggle_preserves_master_key(self):
        """Sites-always-compiled: disabling a patchable probe leaves the
        instrumented IR — and therefore the master's content key —
        unchanged.  The enable/disable state is realized by toggling the
        compiled object and carried in the link key's ``|off=`` suffix,
        never in the content address."""
        engine = Odin(get_program("libjpeg").compile(), preserve=PRESERVED)
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        frag_a, fragment = split_probed_fragment(engine)
        engine.manager.clear_dirty()
        # Disable every probe of that fragment and re-split.
        symbols = set(fragment.symbols)
        for probe in list(engine.manager):
            if probe.target_symbol() in symbols:
                engine.manager.disable(probe)
        frag_b, _ = split_probed_fragment(engine)
        assert fragment_content_key(frag_a, 2) == fragment_content_key(frag_b, 2)
        # Toggle states of one master get distinct link keys.
        assert Odin._toggled_key("k", frozenset()) == "k"
        assert Odin._toggled_key("k", frozenset({3, 1})) == "k|off=1,3"
        assert Odin._toggled_key("k", frozenset({3})) != Odin._toggled_key(
            "k", frozenset({1})
        )


class TestInMemoryCache:
    def test_roundtrip_and_stats(self):
        cache = InMemoryCodeCache()
        assert cache.get("k") is None
        cache.put("k", make_object("a"))
        assert cache.get("k").name == "a"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
        assert 0 < stats["hit_rate"] < 1

    def test_lru_eviction_under_size_bound(self):
        probe = len(
            __import__("pickle").dumps(make_object("x", b"y" * 256))
        )
        cache = InMemoryCodeCache(max_bytes=probe * 3)
        for i in range(4):
            cache.put(f"k{i}", make_object(f"o{i}", b"y" * 256))
        assert cache.evictions >= 1
        assert cache.get("k0") is None          # oldest evicted
        assert cache.get("k3") is not None      # newest kept
        assert cache.size_bytes() <= probe * 3

    def test_get_refreshes_lru_order(self):
        probe = len(
            __import__("pickle").dumps(make_object("x", b"y" * 256))
        )
        cache = InMemoryCodeCache(max_bytes=int(probe * 2.5))
        cache.put("k0", make_object("o0", b"y" * 256))
        cache.put("k1", make_object("o1", b"y" * 256))
        cache.get("k0")                          # k0 now most recent
        cache.put("k2", make_object("o2", b"y" * 256))
        assert cache.get("k1") is None           # k1 was the LRU victim
        assert cache.get("k0") is not None


class TestPersistentCache:
    def test_roundtrip(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("deadbeef", make_object("a", b"xyz"))
        loaded = cache.get("deadbeef")
        assert loaded is not None
        assert loaded.data["a_data"].data == b"xyz"

    def test_survives_restart(self, tmp_path):
        PersistentCodeCache(str(tmp_path)).put("k", make_object("a"))
        reopened = PersistentCodeCache(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.get("k") is not None

    def test_eviction_under_size_bound(self, tmp_path):
        entry_size = len(
            __import__("pickle").dumps(make_object("o0", b"y" * 128))
        )
        cache = PersistentCodeCache(str(tmp_path), max_bytes=int(entry_size * 1.5))
        cache.put("k0", make_object("o0", b"y" * 128))
        cache.put("k1", make_object("o1", b"y" * 128))
        # The bound admits one entry at a time; the older one is evicted
        # from disk as well as from the index.
        assert cache.evictions >= 1
        assert len(cache) == 1
        assert cache.get("k0") is None
        reopened = PersistentCodeCache(str(tmp_path), max_bytes=int(entry_size * 1.5))
        assert len(reopened) == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a"))
        (tmp_path / "k.obj").write_bytes(b"not a pickle")
        assert cache.get("k") is None
        assert "k" not in cache._index

    def test_missing_file_dropped_on_restart(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a"))
        (tmp_path / "k.obj").unlink()
        reopened = PersistentCodeCache(str(tmp_path))
        assert len(reopened) == 0


class TestOversizedEntries:
    """Regression: a single entry larger than the whole budget used to be
    admitted (the eviction loop refused to drop the last entry) and then
    pinned the cache over budget forever."""

    def test_inmemory_rejects_oversized_entry(self):
        cache = InMemoryCodeCache(max_bytes=64)
        cache.put("big", make_object("big", b"y" * 4096))
        assert len(cache) == 0
        assert cache.size_bytes() == 0
        assert cache.stats()["rejected"] == 1
        assert cache.get("big") is None

    def test_inmemory_oversized_does_not_evict_good_entries(self):
        probe = len(
            __import__("pickle").dumps(make_object("x", b"y" * 64))
        )
        cache = InMemoryCodeCache(max_bytes=probe * 2)
        cache.put("good", make_object("o0", b"y" * 64))
        cache.put("big", make_object("big", b"y" * 8192))
        assert cache.get("good") is not None
        assert cache.get("big") is None
        assert cache.stats()["rejected"] == 1

    def test_persistent_rejects_oversized_entry(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path), max_bytes=64)
        cache.put("big", make_object("big", b"y" * 4096))
        assert len(cache) == 0
        assert cache.stats()["rejected"] == 1
        assert cache.get("big") is None
        assert not (tmp_path / "big.obj").exists()

    def test_persistent_oversized_replaces_nothing_on_disk(self, tmp_path):
        entry_size = len(
            __import__("pickle").dumps(make_object("o0", b"y" * 128))
        )
        cache = PersistentCodeCache(str(tmp_path), max_bytes=entry_size * 2)
        cache.put("k", make_object("o0", b"y" * 128))
        # Re-storing the same key with an oversized payload must not leave
        # the stale small copy behind pretending to be the new content.
        cache.put("k", make_object("o0", b"y" * 65536))
        assert cache.get("k") is None
        assert not (tmp_path / "k.obj").exists()


class TestIndexPersistence:
    """Regression: every cache hit used to rewrite the whole index.json
    just to persist an LRU tick."""

    def test_hits_do_not_rewrite_index_eagerly(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path), flush_interval=64)
        cache.put("k", make_object("a"))
        index = tmp_path / "index.json"
        before = index.read_bytes()
        for _ in range(10):
            assert cache.get("k") is not None
        assert index.read_bytes() == before  # ticks deferred in memory

    def test_flush_persists_pending_ticks(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path), flush_interval=64)
        cache.put("k", make_object("a"))
        index = tmp_path / "index.json"
        before = index.read_bytes()
        cache.get("k")
        cache.flush()
        assert index.read_bytes() != before
        cache.flush()  # idempotent: nothing pending, no rewrite

    def test_flush_interval_triggers_persistence(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path), flush_interval=3)
        cache.put("k", make_object("a"))
        index = tmp_path / "index.json"
        before = index.read_bytes()
        cache.get("k")
        cache.get("k")
        assert index.read_bytes() == before  # 2 pending < interval
        cache.get("k")
        assert index.read_bytes() != before  # 3rd hit crosses the interval

    def test_lru_order_survives_restart_after_flush(self, tmp_path):
        probe = len(
            __import__("pickle").dumps(make_object("x", b"y" * 128))
        )
        cache = PersistentCodeCache(
            str(tmp_path), max_bytes=int(probe * 2.5), flush_interval=64
        )
        cache.put("k0", make_object("o0", b"y" * 128))
        cache.put("k1", make_object("o1", b"y" * 128))
        cache.get("k0")  # k0 most recent, but only in memory
        cache.flush()
        reopened = PersistentCodeCache(
            str(tmp_path), max_bytes=int(probe * 2.5)
        )
        reopened.put("k2", make_object("o2", b"y" * 128))
        assert reopened.get("k1") is None  # k1 was the LRU victim
        assert reopened.get("k0") is not None

    def test_write_index_cleans_temp_on_failure(self, tmp_path, monkeypatch):
        """Regression: a non-OSError during serialisation leaked the
        mkstemp temp file next to index.json forever."""
        import json as json_module

        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a"))

        def boom(*args, **kwargs):
            raise ValueError("unserialisable")

        monkeypatch.setattr(json_module, "dump", boom)
        with pytest.raises(ValueError):
            cache.put("k2", make_object("b"))
        monkeypatch.undo()
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".idx")]
        assert leftovers == []


class TestSelfHealing:
    """Quarantine + index auto-rebuild: damage degrades to a miss and the
    evidence is preserved, never an exception and never wrong code."""

    def test_corrupt_blob_is_quarantined_not_raised(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a", b"xyz"))
        cache.inject_fault("corrupt-obj", key="k")
        assert cache.get("k") is None
        assert cache.quarantined == 1
        assert cache.integrity_failures == 1
        assert (tmp_path / "quarantine" / "k.obj").exists()
        assert not (tmp_path / "k.obj").exists()
        # The slot is usable again: a fresh put round-trips.
        cache.put("k", make_object("a", b"xyz"))
        assert cache.get("k") is not None

    def test_truncated_blob_is_quarantined(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a", b"xyz"))
        cache.inject_fault("truncate-obj", key="k")
        assert cache.get("k") is None
        assert cache.quarantined == 1
        assert (tmp_path / "quarantine" / "k.obj").exists()

    def test_vanished_blob_counts_but_never_raises(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a"))
        cache.inject_fault("delete-obj", key="k")
        assert cache.get("k") is None  # nothing left to move; still a miss
        assert cache.quarantined == 1

    def test_keys_lists_stored_keys_sorted(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("zz", make_object("a"))
        cache.put("aa", make_object("b"))
        assert cache.keys() == ["aa", "zz"]

    def test_index_checksum_mismatch_rebuilds_from_scan(self, tmp_path):
        """A hand-edited (or torn) v2 index fails its checksum and is
        rebuilt from the .obj files instead of being trusted."""
        import json

        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a", b"xyz"))
        original = cache.get("k").canonical_bytes()
        index_path = tmp_path / "index.json"
        payload = json.loads(index_path.read_text())
        payload["entries"]["k"]["size"] = 1  # tamper without re-checksumming
        index_path.write_text(json.dumps(payload))
        reopened = PersistentCodeCache(str(tmp_path))
        assert reopened.index_rebuilds == 1
        loaded = reopened.get("k")
        assert loaded is not None
        assert loaded.canonical_bytes() == original

    def test_missing_index_over_nonempty_store_rebuilds(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a", b"xyz"))
        (tmp_path / "index.json").unlink()
        reopened = PersistentCodeCache(str(tmp_path))
        assert reopened.index_rebuilds == 1
        assert reopened.get("k") is not None

    def test_fresh_directory_is_not_a_rebuild(self, tmp_path):
        cache = PersistentCodeCache(str(tmp_path))
        assert cache.index_rebuilds == 0

    def test_legacy_flat_index_accepted_without_rebuild(self, tmp_path):
        """Pre-v2 caches stored a flat {key: meta} index; it is trusted
        as-is (no checksum to verify) so old stores open cleanly."""
        import json

        cache = PersistentCodeCache(str(tmp_path))
        cache.put("k", make_object("a", b"xyz"))
        index_path = tmp_path / "index.json"
        payload = json.loads(index_path.read_text())
        index_path.write_text(json.dumps(payload["entries"]))
        reopened = PersistentCodeCache(str(tmp_path))
        assert reopened.index_rebuilds == 0
        assert reopened.get("k") is not None
