"""Satellite coverage: bounded result() waits, tear-free queue stats,
and a thread-hammer over JobQueue batching + dedup."""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry, format_stats
from repro.service.jobs import (
    OP_DISABLE,
    OP_ENABLE,
    CompileRequest,
    DeadlineExpiredError,
    Job,
    JobQueue,
    ProbeOp,
    ServiceReply,
    merge_batch,
)


def reply_for(batch):
    ops, submitted, applied = merge_batch(batch)
    return ServiceReply(
        report=None, batch_size=len(batch),
        batch_clients=len({j.request.client_id for j in batch}),
        ops_submitted=submitted, ops_applied=applied,
    )


class TestBoundedResult:
    def test_result_with_no_timeout_is_still_bounded(self):
        job = Job(CompileRequest(target="t"))
        job.DEFAULT_RESULT_TIMEOUT_S  # class attribute exists
        # Patch the default down so the test is fast.
        job.DEFAULT_RESULT_TIMEOUT_S = 0.05
        with pytest.raises(DeadlineExpiredError):
            job.result()

    def test_expired_wait_is_a_timeout_error(self):
        job = Job(CompileRequest(target="t"))
        with pytest.raises(TimeoutError):
            job.result(0.01)

    def test_expired_wait_carries_breaker_retry_hint(self):
        job = Job(CompileRequest(target="t"))
        job.retry_hint = lambda: 2.5
        with pytest.raises(DeadlineExpiredError) as exc:
            job.result(0.01)
        assert exc.value.retry_after_s == 2.5

    def test_no_hint_means_none(self):
        job = Job(CompileRequest(target="t"))
        with pytest.raises(DeadlineExpiredError) as exc:
            job.result(0.01)
        assert exc.value.retry_after_s is None

    def test_broken_hint_never_masks_the_timeout(self):
        job = Job(CompileRequest(target="t"))
        job.retry_hint = lambda: 1 / 0
        with pytest.raises(DeadlineExpiredError) as exc:
            job.result(0.01)
        assert exc.value.retry_after_s is None

    def test_zero_hint_normalized_to_none(self):
        job = Job(CompileRequest(target="t"))
        job.retry_hint = lambda: 0.0
        with pytest.raises(DeadlineExpiredError) as exc:
            job.result(0.01)
        assert exc.value.retry_after_s is None


class TestQueueStats:
    def test_single_snapshot_shape_and_consistency(self):
        queue = JobQueue(max_depth=2)
        queue.submit(CompileRequest(target="t"))
        queue.submit(CompileRequest(target="t"))
        with pytest.raises(Exception):
            queue.submit(CompileRequest(target="t"))  # overflow shed
        stats = queue.stats()
        assert stats["depth"] == 2
        assert stats["submitted"] == 2
        assert stats["peak_depth"] == 2
        assert stats["max_depth"] == 2
        assert stats["shed_overflow"] == 1
        assert stats["shed_total"] == (
            stats["shed_expired"] + stats["shed_overflow"]
        )

    def test_format_stats_renders_breaker_and_shed_lines(self):
        stats = {
            "derived": {},
            "counters": {"drain_abandoned": 2},
            "breaker": {"state": "open", "opens": 1, "rejections": 4,
                        "retry_after_s": 1.5},
            "queue": {"shed_total": 3, "shed_expired": 2, "shed_overflow": 1},
        }
        text = format_stats(stats)
        assert "breaker" in text and "open" in text and "retry in 1.50s" in text
        assert "shed" in text and "3 total" in text and "drain abandoned 2" in text


class TestThreadHammer:
    PRODUCERS = 6
    PER_PRODUCER = 40
    OP_POOL = 8

    def test_no_lost_or_double_dispatched_jobs(self):
        queue = JobQueue(metrics=MetricsRegistry())
        produced = [[] for _ in range(self.PRODUCERS)]
        start = threading.Barrier(self.PRODUCERS + 1)

        def producer(index):
            start.wait()
            for i in range(self.PER_PRODUCER):
                kind = OP_ENABLE if (index + i) % 2 else OP_DISABLE
                ops = (ProbeOp(kind, (index + i) % self.OP_POOL),)
                job = queue.submit(CompileRequest(
                    target=f"target-{i % 2}",
                    ops=ops,
                    client_id=f"client-{index}",
                ))
                produced[index].append(job)

        served = []
        stop = threading.Event()

        def consumer():
            while not stop.is_set() or queue.depth():
                target, batch = queue.pop_batch(timeout=0.01)
                if not batch:
                    continue
                # A batch is single-target by contract.
                assert len({j.request.target for j in batch}) == 1
                reply = reply_for(batch)
                for job in batch:
                    served.append(job)
                    job.set_reply(reply)

        threads = [
            threading.Thread(target=producer, args=(i,))
            for i in range(self.PRODUCERS)
        ]
        pump = threading.Thread(target=consumer)
        pump.start()
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join()
        stop.set()
        pump.join(timeout=10)
        assert not pump.is_alive()

        total = self.PRODUCERS * self.PER_PRODUCER
        # No lost jobs, no double dispatch: every submitted job served
        # exactly once.
        assert len(served) == total
        assert len({id(job) for job in served}) == total
        assert queue.stats()["submitted"] == total
        assert queue.depth() == 0

        # Every client got its reply, and dedup never dropped a
        # *distinct* op: each job's ops are contained in its own batch
        # reply accounting.
        for jobs in produced:
            for job in jobs:
                reply = job.result(1.0)
                assert reply.ops_applied >= 1
                assert reply.ops_submitted >= reply.ops_applied

    def test_queue_wait_stamps_monotone_per_producer(self):
        queue = JobQueue()
        produced = [[] for _ in range(self.PRODUCERS)]
        start = threading.Barrier(self.PRODUCERS + 1)

        def producer(index):
            start.wait()
            for i in range(self.PER_PRODUCER):
                job = queue.submit(CompileRequest(
                    target="t", client_id=f"client-{index}",
                ))
                produced[index].append(job)

        threads = [
            threading.Thread(target=producer, args=(i,))
            for i in range(self.PRODUCERS)
        ]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join()

        popped_at = time.perf_counter()
        while queue.depth():
            _target, batch = queue.pop_batch(timeout=0.1)
            for job in batch:
                # Stamped under the queue lock before publication: never
                # missing, never later than the pop.
                assert job.submitted_at is not None
                assert job.submitted_at <= popped_at
                job.set_reply(reply_for(batch))
        for jobs in produced:
            stamps = [job.submitted_at for job in jobs]
            # A producer's own submissions carry non-decreasing stamps.
            assert stamps == sorted(stamps)
