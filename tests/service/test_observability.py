"""Service observability: queue-wait stamping, dispatch spans, metrics."""

import threading

from repro.instrument.coverage import OdinCov
from repro.service import CompileRequest, ProbeOp, RecompilationService
from repro.service.jobs import OP_DISABLE, OP_ENABLE, JobQueue
from tests.conftest import fresh_module

PRESERVED = ("main", "run_input")
PROGRAM = "libjpeg"


def make_service(**kwargs):
    service = RecompilationService(**kwargs)
    engine = service.register_target(
        PROGRAM, fresh_module(PROGRAM), preserve=PRESERVED
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    service.build(PROGRAM)
    return service, engine, tool


class TestQueueWaitStamping:
    def test_submit_stamps_before_publication(self):
        """Regression: the service used to stamp ``submitted_at`` after
        the job was already visible in the queue, so a dispatcher that
        popped it first measured its wait against an unstamped job."""
        queue = JobQueue()
        job = queue.submit(CompileRequest("t"))
        assert job.submitted_at is not None

    def test_dispatcher_never_sees_unstamped_job(self):
        """Hammer submit from one thread while another drains batches;
        every popped job must already be stamped."""
        queue = JobQueue()
        unstamped = []
        done = threading.Event()

        def drain() -> None:
            while not done.is_set() or queue.depth():
                _target, batch = queue.pop_batch(timeout=0.001)
                unstamped.extend(
                    j for j in batch if j.submitted_at is None
                )

        t = threading.Thread(target=drain)
        t.start()
        for _ in range(500):
            queue.submit(CompileRequest("t"))
        done.set()
        t.join()
        assert unstamped == []

    def test_service_records_queue_wait(self):
        service, engine, tool = make_service()
        pid = sorted(tool.probes)[0]
        job = service.submit(
            CompileRequest(PROGRAM, (ProbeOp(OP_DISABLE, pid),), "c")
        )
        assert job.submitted_at is not None
        assert service.process_once() == 1
        stat = service.metrics.latency("queue_wait_ms")
        assert stat.count == 1
        assert stat.last_ms > 0.0
        assert job.result(1.0).queue_wait_ms > 0.0


class TestDispatchSpans:
    def test_rebuild_nests_under_service_batch(self):
        service, engine, tool = make_service()
        pids = sorted(tool.probes)[:4]
        for pid in pids:
            service.submit(
                CompileRequest(PROGRAM, (ProbeOp(OP_DISABLE, pid),), "c")
            )
        assert service.process_once() == 4
        root = service.tracer.last()
        assert root.name == "service.batch"
        assert root.args["target"] == PROGRAM
        assert root.args["batch_size"] == 4
        rebuild = root.find("rebuild")
        assert rebuild is not None
        # The dispatch span covers the rebuild on both clocks.
        assert root.sim_ms >= rebuild.sim_ms
        assert root.real_ms >= rebuild.real_ms

    def test_engines_share_the_service_tracer(self):
        service, engine, tool = make_service()
        assert engine.tracer is service.tracer
        # The initial build is already recorded on the shared tracer.
        assert service.tracer.last("rebuild") is not None

    def test_per_stage_sim_metrics_recorded(self):
        service, engine, tool = make_service()
        pid = sorted(tool.probes)[0]
        service.submit(
            CompileRequest(PROGRAM, (ProbeOp(OP_DISABLE, pid),), "c")
        )
        service.process_once()
        latencies = service.metrics.stats()["latency"]
        for stage in ("compile", "link", "optimize", "isel"):
            assert f"stage.{stage}.sim_ms" in latencies
        total = service.metrics.latency("stage.compile.sim_ms").total_ms
        wall = sum(r.compile_wall_ms for r in engine.history)
        assert total == wall


class TestParallelRebuildReporting:
    def test_worker_pool_wall_below_lane_sum(self):
        """With 2 workers and >1 compiled fragment the makespan the
        client waits for is shorter than the summed lane time."""
        service, engine, tool = make_service(
            workers=2, worker_mode="thread"
        )
        # Disable one probe in every fragment so every fragment recompiles.
        by_fragment = {}
        for pid, probe in tool.probes.items():
            fid = engine.fragdef.owner[probe.target_symbol()]
            by_fragment.setdefault(fid, pid)
        ops = tuple(
            ProbeOp(OP_DISABLE, pid) for pid in by_fragment.values()
        )
        service.submit(CompileRequest(PROGRAM, ops, "c"))
        service.process_once()
        report = engine.history[-1]
        assert report.workers == 2
        assert len(report.fragment_ids) - report.cache_hits > 1
        assert report.wall_ms < report.total_ms
        service.close()
