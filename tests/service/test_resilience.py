"""Fault tolerance: retry policy, circuit breaker, supervision ladder.

Also hosts the regression tests for this layer's satellite bugfixes:
bounded ``stop(drain=True)``, the ``register_target`` race, pool
hang/crash detection with prompt cancellation, and the process-pool
module-name drop that made process compiles fingerprint differently
from serial ones.
"""

import os
import threading
import time

import pytest

from repro.core.engine import (
    Odin,
    compile_fragment,
    compile_fragment_text,
    object_fingerprint,
)
from repro.core.scheduler import Scheduler
from repro.frontend.codegen import compile_source
from repro.instrument.coverage import OdinCov
from repro.ir.printer import print_module
from repro.obs.metrics import MetricsRegistry
from repro.programs.registry import get_program
from repro.service import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RecompilationService,
    RetryPolicy,
    ServiceError,
    SupervisedCompiler,
    WorkerCrashError,
    WorkerError,
    WorkerTimeoutError,
)
from repro.service.jobs import ProbeOp
from repro.service.workers import (
    ProcessFragmentCompiler,
    ThreadFragmentCompiler,
)

SRC = """
int helper(int x) { return x * 3 + 1; }
int other(int x) { return x - 7; }
int run_input(const char *data, long size) {
    if (size > 0) return helper((int)data[0]) + other((int)size);
    return 0;
}
int main(void) { return helper(2); }
"""


def modules(n=2):
    return [compile_source(SRC, f"frag{i}") for i in range(n)]


# -- retry policy ------------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        a = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05)
        b = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05)
        assert a.delays() == b.delays()
        assert len(a.delays()) == 3  # attempts - 1 backoffs
        assert all(0 <= d <= 0.05 for d in a.delays())

    def test_backoff_grows_without_jitter(self):
        p = RetryPolicy(
            max_attempts=4, base_delay_s=0.01, multiplier=2.0,
            max_delay_s=1.0, jitter=0.0,
        )
        assert p.delays() == [0.01, 0.02, 0.04]

    def test_cap_applies(self):
        p = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, multiplier=10.0,
            max_delay_s=0.03, jitter=0.0,
        )
        assert p.delays() == [0.01, 0.03, 0.03, 0.03]

    def test_seed_changes_jitter(self):
        a = RetryPolicy(seed=1).delays()
        b = RetryPolicy(seed=2).delays()
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)


# -- circuit breaker ---------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout_s", 10.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.opens == 1
        assert breaker.rejections == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_timeout_then_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.t = 10.0
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()        # the single trial admission
        assert not breaker.allow()    # second call is rejected
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_stats_snapshot(self):
        breaker, _ = self.make()
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["state"] == BREAKER_CLOSED
        assert stats["consecutive_failures"] == 1


# -- supervised compiler: restart, retry, degrade ----------------------------------


class FlakyCompiler:
    """Fails the first *fail_times* batches with *error*, then succeeds."""

    def __init__(self, fail_times, error=WorkerCrashError):
        self.fail_times = fail_times
        self.error = error
        self.workers = 2
        self.calls = 0
        self.restarts = 0
        self.closed = False

    def compile_batch(self, modules, opt_level, verify):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.error("boom")
        return [compile_fragment(m, opt_level, verify) for m in modules]

    def restart(self):
        self.restarts += 1

    def close(self):
        self.closed = True


def make_supervised(mode="thread", **kw):
    kw.setdefault("retry", RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0))
    kw.setdefault("sleep", lambda s: None)
    return SupervisedCompiler(mode, 2, **kw)


class TestSupervisedCompiler:
    def test_passthrough_when_healthy(self):
        sup = make_supervised()
        objs = sup.compile_batch(modules(), 2, True)
        assert len(objs) == 2
        assert not sup.degraded
        sup.close()

    def test_retry_after_transient_fault(self):
        metrics = MetricsRegistry()
        sup = make_supervised(metrics=metrics)
        flaky = FlakyCompiler(fail_times=1)
        sup._compilers[0] = flaky
        objs = sup.compile_batch(modules(), 2, True)
        assert len(objs) == 2
        assert flaky.restarts == 1
        assert sup.worker_restarts == 1
        assert metrics.counter("worker_restarts") == 1
        assert not sup.degraded

    def test_retry_result_matches_clean_compile(self):
        """A batch that survives a restart compiles byte-identically."""
        clean = [
            object_fingerprint(compile_fragment(m, 2, True))
            for m in modules()
        ]
        sup = make_supervised()
        sup._compilers[0] = FlakyCompiler(fail_times=1)
        objs = sup.compile_batch(modules(), 2, True)
        assert [object_fingerprint(o) for o in objs] == clean

    def test_degrades_through_the_ladder(self):
        metrics = MetricsRegistry()
        sup = make_supervised("thread", metrics=metrics)
        always = FlakyCompiler(fail_times=10**9)
        sup._compilers[0] = always
        objs = sup.compile_batch(modules(), 2, True)  # serial floor serves it
        assert len(objs) == 2
        assert sup.degraded
        assert sup.mode == "serial"
        assert always.closed  # the failed rung was torn down
        assert metrics.counter("worker_degradations") == 1
        assert metrics.gauge("degraded_mode") == 1

    def test_process_ladder_order(self):
        sup = make_supervised("process")
        assert sup.ladder == ("process", "thread", "serial")
        sup.close()

    def test_all_rungs_failing_surfaces_worker_error(self):
        sup = make_supervised("serial")
        sup._compilers[0] = FlakyCompiler(fail_times=10**9)
        with pytest.raises(WorkerError, match="degradation ladder failed"):
            sup.compile_batch(modules(), 2, True)

    def test_fault_injector_hook_drives_retries(self):
        fired = []

        def injector(compiler, batch, attempt):
            if not fired:
                fired.append(attempt)
                raise WorkerCrashError("chaos says hi")

        sup = make_supervised(fault_injector=injector)
        objs = sup.compile_batch(modules(), 2, True)
        assert len(objs) == 2
        assert fired == [1]
        assert sup.worker_restarts == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SupervisedCompiler("quantum", 2)


# -- pool supervision primitives ---------------------------------------------------


class TestPoolSupervision:
    def test_thread_pool_hang_raises_timeout(self):
        pool = ThreadFragmentCompiler(2, batch_timeout_s=0.2)
        release = threading.Event()

        def sleepy(module, opt_level, verify):
            release.wait(30.0)

        # Make the pool's submission path hang instead of compiling.
        pool._submit = lambda p, m, o, v: p.submit(sleepy, m, o, v)
        try:
            start = time.perf_counter()
            with pytest.raises(WorkerTimeoutError):
                pool.compile_batch(modules(), 2, True)
            assert time.perf_counter() - start < 5.0  # detected, not awaited
            assert pool.restarts == 1
        finally:
            release.set()
            pool.close()

    def test_failure_cancels_outstanding_futures(self):
        """One failed fragment errors the batch promptly (satellite c)."""
        pool = ThreadFragmentCompiler(2, batch_timeout_s=30.0)
        release = threading.Event()

        def fail_fast(module, opt_level, verify):
            raise ValueError("bad fragment")

        def slow(module, opt_level, verify):
            release.wait(30.0)

        submitted = []

        def submit(p, m, o, v):
            fn = fail_fast if not submitted else slow
            future = p.submit(fn, m, o, v)
            submitted.append(future)
            return future

        pool._submit = submit
        try:
            start = time.perf_counter()
            # Four fragments on two workers: the first fails at once and
            # frees its worker, which can steal at most one queued
            # sibling; the last one is still queued and must be
            # cancelled rather than awaited.
            with pytest.raises(ValueError, match="bad fragment"):
                pool.compile_batch(modules(4), 2, True)
            assert time.perf_counter() - start < 5.0
            assert any(f.cancelled() for f in submitted)
        finally:
            release.set()
            pool.close()

    def test_process_pool_crash_raises_crash_error(self):
        pool = ProcessFragmentCompiler(2, batch_timeout_s=30.0)
        pool._submit = lambda p, m, o, v: p.submit(os._exit, 13)
        with pytest.raises(WorkerCrashError):
            pool.compile_batch(modules(), 2, True)
        assert pool.restarts == 1
        # The restarted pool (with the crashing submit hook removed)
        # works again.
        del pool._submit
        objs = pool.compile_batch(modules(), 2, True)
        assert len(objs) == 2
        pool.close()


# -- process-pool name regression (pre-existing byte-determinism bug) --------------


class TestProcessNameFidelity:
    def test_text_roundtrip_preserves_object_name(self):
        m = compile_source(SRC, "named_fragment")
        obj = compile_fragment_text(print_module(m), 2, True, False, m.name)
        assert obj.name == "named_fragment"

    def test_extracted_fragment_matches_text_roundtrip(self):
        """Extract-vs-parse construction history must not leak into bytes.

        lcms's curve fragment inlines helpers whose uniquified block
        names depended on the module's name counter: compiling the
        extracted module and compiling its printed text used to
        fingerprint differently, so process-pool rebuilds were not
        byte-equivalent to serial ones.
        """
        program = get_program("lcms")
        engine = Odin(program.compile(), preserve=("main", "run_input"))
        tool = OdinCov(engine)
        tool.add_all_block_probes()
        engine.initial_build()
        for probe in list(engine.manager):
            engine.manager.mark_changed(probe)
        sched = Scheduler(engine, engine.manager)
        assert sched.changed_fragments
        for fragment in sched.changed_fragments:
            extracted = engine._split_fragment(sched.temp_module, fragment)
            text = print_module(extracted)
            inline_obj = compile_fragment(extracted, engine.opt_level, True)
            pool_obj = compile_fragment_text(
                text, engine.opt_level, True, False, extracted.name
            )
            assert object_fingerprint(inline_obj) == object_fingerprint(
                pool_obj
            ), f"fragment #{fragment.id} diverged"


# -- service-level fault tolerance -------------------------------------------------


def service_with_target(**kw):
    kw.setdefault("workers", 1)
    service = RecompilationService(**kw)
    module = compile_source(SRC, "target")
    engine = service.register_target("target", module, preserve=("main", "run_input"))
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    service.build("target")
    return service, engine, tool


class TestServiceRetry:
    def test_batch_retries_after_worker_fault(self):
        service, engine, tool = service_with_target(
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        )
        fired = []

        def injector(compiler, batch, attempt):
            if not fired:
                fired.append(1)
                raise WorkerCrashError("chaos")

        service.compiler.fault_injector = injector
        client = service.client("target", "c1")
        # Removes change the compiled-in site set and force a real worker
        # batch; a pure toggle would take the patch tier and never give
        # the injected fault a compile to fire in.
        pid = sorted(tool.probes)[0]
        job = client.submit([ProbeOp("remove", pid)])
        served = service.process_once()
        assert served == 1
        reply = job.result(5.0)
        assert reply.report is not None
        assert fired  # the fault really fired
        assert service.compiler.worker_restarts == 1
        service.close()

    def test_breaker_opens_and_rejects_submissions(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=5.0, clock=clock
        )
        service, engine, tool = service_with_target(
            breaker=breaker,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        service.compiler.fault_injector = lambda c, b, a: (_ for _ in ()).throw(
            WorkerCrashError("always")
        )
        # Exhaust the supervised ladder so every batch truly fails.
        service.compiler.ladder = ("serial",)
        client = service.client("target", "c1")
        # Removes force real (failing) compile batches; toggles would be
        # serviced by the patch tier without ever reaching the workers.
        pids = sorted(tool.probes)
        for pid in pids[:2]:
            job = client.submit([ProbeOp("remove", pid)])
            service.process_once()
            with pytest.raises(WorkerError):
                job.result(5.0)
        assert breaker.state == BREAKER_OPEN
        with pytest.raises(ServiceError) as excinfo:
            client.submit([ProbeOp("remove", pids[2])])
        assert excinfo.value.retry_after_s == pytest.approx(5.0)
        assert service.stats()["breaker"]["state"] == BREAKER_OPEN
        # After the reset timeout one trial passes and a success closes it.
        clock.t = 5.0
        service.compiler.fault_injector = None
        job = client.submit([ProbeOp("remove", pids[2])])
        service.process_once()
        job.result(5.0)
        assert breaker.state == BREAKER_CLOSED
        service.close()


class TestStopDrainBounded:
    def test_stop_returns_within_budget_with_wedged_engine(self):
        """Regression (satellite a): stop() used to spin forever."""
        service, engine, tool = service_with_target()
        release = threading.Event()
        entered = threading.Event()

        def blocking_injector(compiler, batch, attempt):
            entered.set()
            release.wait(30.0)

        service.compiler.fault_injector = blocking_injector
        client = service.client("target", "c1")
        pids = sorted(tool.probes)
        service.start()
        # Removes force real compile batches, so the blocking injector
        # actually wedges the dispatcher (toggles would bypass the pool).
        client.submit([ProbeOp("remove", pids[0])])  # wedges the dispatcher
        assert entered.wait(10.0)
        client.submit([ProbeOp("remove", pids[1])])  # queued behind the wedge
        start = time.perf_counter()
        abandoned = service.stop(drain=True, drain_timeout_s=0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0          # bounded, not an unbounded spin
        assert abandoned >= 1         # the queued job was counted
        assert service.metrics.counter("drain_abandoned") >= 1
        release.set()
        service.close()

    def test_close_answers_leftover_jobs(self):
        service, engine, tool = service_with_target()
        client = service.client("target", "c1")
        pid = sorted(tool.probes)[0]
        job = client.submit([ProbeOp("disable", pid)])  # never dispatched
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            job.result(1.0)


class TestRegisterRace:
    def test_concurrent_registration_has_one_winner(self):
        """Regression (satellite b): unlocked dict check-then-set."""
        service = RecompilationService(workers=1)
        module_a = compile_source(SRC, "a")
        module_b = compile_source(SRC, "b")
        barrier = threading.Barrier(2)
        outcomes = []

        def register(module):
            barrier.wait()
            try:
                service.register_target(
                    "shared", module, preserve=("main", "run_input")
                )
                outcomes.append("won")
            except ServiceError:
                outcomes.append("lost")

        threads = [
            threading.Thread(target=register, args=(m,))
            for m in (module_a, module_b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["lost", "won"]
        assert len(service.stats()["service"]["targets"]) == 1
        service.close()
