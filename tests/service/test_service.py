"""Recompilation service: batching, dedup, caching, determinism, workers."""

import threading

import pytest

from repro.core.engine import Odin, compile_makespan
from repro.instrument.coverage import OdinCov
from repro.programs.registry import get_program
from repro.service import (
    ProbeOp,
    RecompilationService,
    ServiceError,
)
from repro.service.jobs import OP_DISABLE
from repro.service.workers import (
    ProcessFragmentCompiler,
    ThreadFragmentCompiler,
    make_compiler,
)

PRESERVED = ("main", "run_input")
PROGRAM = "libjpeg"


def make_service(**kwargs) -> tuple:
    """A service with one OdinCov-instrumented target, built."""
    service = RecompilationService(**kwargs)
    engine = service.register_target(
        PROGRAM, get_program(PROGRAM).compile(), preserve=PRESERVED
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    service.build(PROGRAM)
    return service, engine, tool


def make_direct() -> tuple:
    """The classic path: a bare engine, same target, same probes."""
    engine = Odin(get_program(PROGRAM).compile(), preserve=PRESERVED)
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    engine.initial_build()
    return engine, tool


class TestDeterminism:
    def test_single_worker_cold_cache_matches_direct_engine(self):
        """Acceptance: with one worker and a cold cache, every reported
        number is byte-identical to direct ``Odin.rebuild()``."""
        direct_engine, direct_tool = make_direct()
        service, svc_engine, svc_tool = make_service()

        assert direct_engine.history[0].fragment_ids == svc_engine.history[0].fragment_ids
        assert (
            direct_engine.history[0].fragment_compile_ms
            == svc_engine.history[0].fragment_compile_ms
        )
        assert direct_engine.history[0].link_ms == svc_engine.history[0].link_ms

        # One probe flip through each path.
        pid = sorted(direct_tool.probes)[0]
        direct_engine.manager.disable(direct_tool.probes[pid])
        direct_report = direct_engine.rebuild()

        client = service.client(PROGRAM, "c0")
        job = client.disable(sorted(svc_tool.probes)[0])
        assert service.process_once() == 1
        svc_report = job.result(5.0).report

        assert direct_report.fragment_ids == svc_report.fragment_ids
        assert direct_report.fragment_compile_ms == svc_report.fragment_compile_ms
        assert direct_report.link_ms == svc_report.link_ms
        assert direct_report.cache_reused == svc_report.cache_reused
        assert svc_report.cache_hits == 0  # cold cache: nothing to hit
        assert direct_engine.clock.now_ms == svc_engine.clock.now_ms
        assert direct_engine.clock.breakdown() == svc_engine.clock.breakdown()


class TestCacheBehaviour:
    def test_cache_reused_accounting(self):
        """`cache_reused` keeps its meaning: fragments untouched by the
        rebuild, regardless of the content cache."""
        service, engine, tool = make_service()
        client = service.client(PROGRAM)
        client.disable(sorted(tool.probes)[0])
        service.process_once()
        report = engine.history[-1]
        assert len(report.fragment_ids) == 1
        assert report.cache_reused == engine.num_fragments - 1

    def test_warm_rebuild_skips_compilation(self):
        """Flipping a probe off and back on never recompiles: both steps
        are serviced at the patch tier (sites toggled in the cached
        master), and the return to the baseline state reuses the original
        linked image outright."""
        service, engine, tool = make_service()
        client = service.client(PROGRAM)
        pid = sorted(tool.probes)[0]
        client.disable(pid)
        service.process_once()
        off = engine.history[-1]
        assert off.tier == "patch"
        assert off.patched == len(off.fragment_ids) == 1
        assert 0.0 < off.total_compile_ms < 1.0  # patch cost, not a compile
        client.enable(pid)       # back to the initial-build state
        service.process_once()
        report = engine.history[-1]
        assert report.tier == "patch"
        assert report.total_compile_ms < 1.0
        assert report.link_reused  # identical object set: relink skipped

    def test_cold_vs_warm_service_restart(self, tmp_path):
        """Persistent cache: a restarted service rebuilds the same target
        without compiling a single fragment."""
        cache_dir = str(tmp_path / "code-cache")
        cold = RecompilationService(cache_dir=cache_dir)
        engine = cold.register_target(
            PROGRAM, get_program(PROGRAM).compile(), preserve=PRESERVED
        )
        OdinCov(engine).add_all_block_probes()
        cold_report = cold.build(PROGRAM)
        assert cold_report.cache_hits == 0
        assert cold_report.total_compile_ms > 0
        cold.close()

        warm = RecompilationService(cache_dir=cache_dir)
        engine2 = warm.register_target(
            PROGRAM, get_program(PROGRAM).compile(), preserve=PRESERVED
        )
        OdinCov(engine2).add_all_block_probes()
        warm_report = warm.build(PROGRAM)
        assert warm_report.cache_hits == len(warm_report.fragment_ids)
        assert warm_report.total_compile_ms == 0.0
        assert warm.stats()["derived"]["fragments_compiled"] == 0
        # Executables built from cached objects behave identically.
        assert sorted(engine2.executable.entry_points) == sorted(
            engine.executable.entry_points
        )
        warm.close()


class TestBatchingAndDedup:
    def test_overlapping_requests_deduplicate_to_one_compile(self):
        """Acceptance: >= 4 concurrent clients dirtying the same fragment
        cost one batch, one rebuild, one fragment compile."""
        service, engine, tool = make_service()
        clients = [service.client(PROGRAM, f"c{i}") for i in range(4)]
        pids = sorted(tool.probes)[:4]
        rebuilds_before = len(engine.history)

        jobs = [c.disable(*pids) for c in clients]  # identical op sets
        served = service.process_once()
        assert served == 4

        reply = jobs[0].result(5.0)
        assert all(j.result(5.0) is reply for j in jobs)  # one shared answer
        assert reply.batch_size == 4
        assert reply.batch_clients == 4
        assert reply.ops_submitted == 16
        assert reply.ops_applied == 4
        assert reply.dedup_ratio == 4.0
        # One rebuild for the whole batch; the dirtied fragment compiled once.
        assert len(engine.history) == rebuilds_before + 1
        target_fragments = {
            engine.fragdef.owner[tool.probes[pid].target_symbol()] for pid in pids
        }
        assert sorted(reply.report.fragment_ids) == sorted(target_fragments)

    def test_batch_with_no_effect_reports_no_rebuild(self):
        service, engine, tool = make_service()
        client = service.client(PROGRAM)
        pid = sorted(tool.probes)[0]
        job = client.enable(pid)  # already enabled: no dirty state
        service.process_once()
        assert job.result(5.0).report is None

    def test_stale_probe_ops_are_skipped_not_fatal(self):
        service, engine, tool = make_service()
        client = service.client(PROGRAM)
        job = client.submit([ProbeOp(OP_DISABLE, 99999)])
        service.process_once()
        reply = job.result(5.0)
        assert reply.ops_skipped == 1
        assert reply.report is None

    def test_unknown_target_rejected(self):
        service, _, _ = make_service()
        with pytest.raises(ServiceError):
            service.client("nope")

    def test_concurrent_clients_through_dispatcher(self):
        """End-to-end: 4 client threads against the running dispatcher."""
        service, engine, tool = make_service(workers=2, worker_mode="thread")
        pids = sorted(tool.probes)
        errors = []

        def client_loop(index: int) -> None:
            try:
                client = service.client(PROGRAM, f"client-{index}")
                mine = pids[index * 2: index * 2 + 2]
                for _ in range(3):
                    client.disable(*mine).result(30.0)
                    client.enable(*mine).result(30.0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with service:
            threads = [
                threading.Thread(target=client_loop, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        stats = service.stats()
        assert stats["counters"]["requests_total"] == 24
        assert stats["queue"]["depth"] == 0
        # Pure toggles never recompile: every rebuild that wasn't batched
        # away was serviced by patching the cached masters.
        assert all(r.tier in ("patch", "noop") for r in engine.history[1:])
        assert stats["latency"]["rebuild_sim_ms"]["count"] >= 1


class TestWorkerPool:
    def test_thread_pool_preserves_reported_numbers(self):
        """Per-fragment compile costs are identical for any worker count;
        only the batch wall-clock (makespan) changes."""
        _, serial_engine, _ = make_service()
        service, pooled_engine, _ = make_service(workers=4, worker_mode="thread")
        serial_report = serial_engine.history[0]
        pooled_report = pooled_engine.history[0]
        assert serial_report.fragment_compile_ms == pooled_report.fragment_compile_ms
        assert serial_report.link_ms == pooled_report.link_ms
        assert pooled_report.workers == 4

    def test_multi_worker_beats_serial_wall_clock(self):
        """Acceptance: on a multi-fragment batch the pool's (simulated)
        wall-clock is strictly below the serial sum."""
        service, engine, _ = make_service(workers=4, worker_mode="thread")
        report = engine.history[0]
        assert len(report.fragment_ids) > 4
        assert report.compile_wall_ms < report.total_compile_ms
        assert report.wall_ms < report.total_ms
        # And the makespan model is self-consistent.
        assert report.compile_wall_ms == compile_makespan(
            report.fragment_compile_ms.values(), 4
        )

    def test_makespan_model(self):
        assert compile_makespan([], 4) == 0.0
        assert compile_makespan([5.0, 3.0, 2.0], 1) == 10.0
        assert compile_makespan([5.0, 3.0, 2.0], 2) == 5.0
        assert compile_makespan([5.0, 3.0, 2.0], 8) == 5.0

    def test_make_compiler_modes(self):
        assert make_compiler("serial", 8).workers == 1
        assert isinstance(make_compiler("thread", 2), ThreadFragmentCompiler)
        assert isinstance(make_compiler("process", 2), ProcessFragmentCompiler)
        with pytest.raises(ValueError):
            make_compiler("rainbow", 2)

    def test_process_pool_matches_serial_objects(self):
        """Cross-process compiles (shipped as printed IR) produce objects
        identical to in-process compiles."""
        engine, tool = make_direct()
        engine.manager._dirty_symbols.update(engine.fragdef.owner.keys())
        sched = engine.manager.schedule()
        sched.apply_probes()
        modules = [
            engine._split_fragment(sched.temp_module, f)
            for f in sched.changed_fragments[:2]
        ]
        from repro.core.engine import compile_fragment
        from repro.ir.parser import parse_module
        from repro.ir.printer import print_module

        reparsed = [parse_module(print_module(m)) for m in modules]
        serial = [compile_fragment(m, 2, True) for m in modules]
        pool = ProcessFragmentCompiler(workers=2)
        try:
            pooled = pool.compile_batch(reparsed, 2, True)
        finally:
            pool.close()
        for a, b in zip(serial, pooled):
            assert a.compile_ms == b.compile_ms
            assert sorted(a.functions) == sorted(b.functions)
            for name in a.functions:
                assert [repr(i) for i in a.functions[name].insts] == [
                    repr(i) for i in b.functions[name].insts
                ]


class TestFuzzIntegration:
    def test_odincov_prune_routes_through_service(self):
        """The fuzzer's on-the-fly prune rebuild goes through the service
        client instead of calling the engine directly."""
        from repro.fuzz.executor import OdinCovExecutor

        service = RecompilationService()
        engine = service.register_target(
            "json", get_program("json").compile(), preserve=PRESERVED
        )
        client = service.client("json", "fuzzer")
        tool = OdinCov(engine, rebuild_fn=client.rebuild_report)
        tool.add_all_block_probes()
        service.build("json")
        with service:
            executor = OdinCovExecutor(tool)
            for seed in get_program("json").seeds(1)[:4]:
                executor.execute(seed)
            report = executor.prune()
        assert report.pruned > 0
        assert report.rebuild is not None
        assert report.rebuild.fragment_ids
        assert service.stats()["counters"]["requests_total"] >= 1
