"""Speculative precompilation: prediction, planting, attribution, backpressure.

The tier-3 contract: the speculator turns corpus energy + live coverage
into predicted probe states, precompiles them into the shared object
cache in idle lanes, and when the real prune arrives the rebuild's cache
hits are attributed as ``speculative_hits`` — without speculation ever
changing engine state or delaying a real job.
"""

import pytest

from repro.core.engine import Odin
from repro.frontend.codegen import compile_source
from repro.fuzz.corpus import Corpus
from repro.fuzz.executor import OdinCovExecutor
from repro.instrument.coverage import OdinCov
from repro.service import RecompilationService
from repro.service.cache import InMemoryCodeCache
from repro.service.speculate import ProbeStateSpeculator

SOURCE = r"""
static int acc;

int left(int x) {
    if (x > 64) { acc = acc + x; return acc; }
    return x;
}

int right(int x) {
    int i;
    for (i = 0; i < x; i = i + 1) acc = acc ^ i;
    return acc;
}

int run_input(const char *data, long size) {
    int i;
    int r;
    r = 0;
    for (i = 0; i < size; i = i + 1) {
        if ((int)data[i] & 1) r = r + left((int)data[i] & 255);
        else r = r + right((int)data[i] & 15);
    }
    return r;
}

int main(void) { return run_input("ab", 2); }
"""


def build_session():
    engine = Odin(
        compile_source(SOURCE, "spec"),
        preserve=("main", "run_input"),
        object_cache=InMemoryCodeCache(),
    )
    tool = OdinCov(engine)
    tool.add_all_block_probes()
    tool.build()
    executor = OdinCovExecutor(tool)
    return engine, tool, executor


def covered_corpus(executor, inputs):
    corpus = Corpus()
    for i, data in enumerate(inputs):
        outcome = executor.execute(data)
        corpus.consider(data, outcome.coverage, i)
    return corpus


class TestPrediction:
    def test_requires_an_object_cache(self):
        engine = Odin(
            compile_source(SOURCE, "spec"), preserve=("main", "run_input")
        )
        with pytest.raises(ValueError):
            ProbeStateSpeculator(engine)

    def test_observe_corpus_predicts_from_runtime_and_energy(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab", b"\x01\x02"])
        spec = ProbeStateSpeculator(engine)
        queued = spec.observe_corpus(corpus, runtime=tool.runtime)
        assert queued >= 1
        assert spec.pending() == queued
        # The certain prediction — the runtime's covered set — is first.
        covered = frozenset(
            pid
            for pid in tool.runtime.covered_ids()
            if pid in {p.id for p in engine.manager if p.patchable}
        )
        assert covered
        assert spec._predictions[0] == covered

    def test_predictions_are_not_retried(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab"])
        spec = ProbeStateSpeculator(engine)
        spec.observe_corpus(corpus, runtime=tool.runtime)
        spec.precompile(budget=64)
        assert spec.pending() == 0
        # Same signal again: every state was already tried.
        assert spec.observe_corpus(corpus, runtime=tool.runtime) == 0


class TestPrecompile:
    def test_precompile_plants_speculative_keys(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab", b"\x01\x02"])
        spec = ProbeStateSpeculator(engine)
        spec.observe_corpus(corpus, runtime=tool.runtime)
        compiled = spec.precompile(budget=64)
        assert compiled >= 1
        assert spec.fragments_precompiled == compiled
        assert engine.speculative_keys
        for key in engine.speculative_keys:
            assert engine.object_cache.get(key) is not None

    def test_real_prune_hits_speculated_objects(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab", b"\x01\x02"])
        spec = ProbeStateSpeculator(engine)
        spec.observe_corpus(corpus, runtime=tool.runtime)
        spec.precompile(budget=64)

        report = executor.prune()
        assert report.pruned > 0
        rebuild = report.rebuild
        assert rebuild is not None
        assert rebuild.speculative_hits > 0
        assert rebuild.speculative_hits <= rebuild.cache_hits

    def test_speculation_never_mutates_engine_state(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab"])
        state_before = {p.id: p.enabled for p in engine.manager}
        objs_before = engine.object_fingerprints()
        exe_before = engine.executable_fingerprint()
        history_before = len(engine.history)
        spec = ProbeStateSpeculator(engine)
        spec.observe_corpus(corpus, runtime=tool.runtime)
        spec.precompile(budget=64)
        assert {p.id: p.enabled for p in engine.manager} == state_before
        assert engine.object_fingerprints() == objs_before
        assert engine.executable_fingerprint() == exe_before
        assert len(engine.history) == history_before

    def test_stale_prediction_is_dropped(self):
        engine, tool, executor = build_session()
        corpus = covered_corpus(executor, [b"ab"])
        spec = ProbeStateSpeculator(engine)
        spec.observe_corpus(corpus, runtime=tool.runtime)
        # The predicted probes vanish before the idle lane gets to them.
        for probe in [p for p in engine.manager]:
            engine.manager.remove(probe)
        engine.rebuild_if_needed()
        assert spec.precompile(budget=64) == 0


class TestServiceIntegration:
    def test_attach_and_run_speculation(self):
        service = RecompilationService(workers=1)
        try:
            engine = service.register_target(
                "spec", compile_source(SOURCE, "spec"),
                preserve=("main", "run_input"),
            )
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            service.build("spec")
            executor = OdinCovExecutor(tool)
            corpus = covered_corpus(executor, [b"ab", b"\x01\x02"])

            spec = service.attach_speculator("spec")
            assert service.speculator("spec") is spec
            spec.observe_corpus(corpus, runtime=tool.runtime)
            compiled = service.run_speculation(budget=64)
            assert compiled >= 1
            stats = service.stats()
            assert stats["speculation"]["spec"]["fragments_precompiled"] >= 1
            assert stats["counters"]["speculative_compiles"] >= 1
        finally:
            service.close()

    def test_backpressure_skips_speculation_under_load(self):
        service = RecompilationService(workers=1)
        try:
            engine = service.register_target(
                "spec", compile_source(SOURCE, "spec"),
                preserve=("main", "run_input"),
            )
            tool = OdinCov(engine)
            tool.add_all_block_probes()
            service.build("spec")
            executor = OdinCovExecutor(tool)
            corpus = covered_corpus(executor, [b"ab"])
            spec = service.attach_speculator("spec")
            spec.observe_corpus(corpus, runtime=tool.runtime)

            # A queued real job starves the idle lanes.
            from repro.service.jobs import OP_DISABLE, ProbeOp

            pid = sorted(p.id for p in engine.manager)[0]
            client = service.client("spec", "bp")
            client.submit([ProbeOp(OP_DISABLE, pid)])
            assert service.queue.depth() > 0
            assert service.run_speculation(budget=64) == 0
            assert spec.pending() > 0
        finally:
            service.close()
