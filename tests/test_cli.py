"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sqlite" in out and "harfbuzz" in out
        assert len(out.strip().splitlines()) == 13

    def test_run_program(self, capsys):
        assert main(["run", "woff2"]) == 0
        out = capsys.readouterr().out
        assert "main: exit=0" in out
        assert "total replay cycles:" in out

    def test_run_program_o0(self, capsys):
        assert main(["run", "x509", "--opt", "0"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_partition(self, capsys):
        assert main(["partition", "x509"]) == 0
        out = capsys.readouterr().out
        assert "strategy=odin" in out
        assert "worst fragment" in out

    def test_partition_max(self, capsys):
        assert main(["partition", "woff2", "--strategy", "max"]) == 0
        assert "strategy=max" in capsys.readouterr().out

    def test_fuzz(self, capsys):
        assert main(["fuzz", "woff2", "--executions", "60",
                     "--prune-interval", "30"]) == 0
        out = capsys.readouterr().out
        assert "rebuilds:" in out
        assert "corpus:" in out

    def test_experiment_subset(self, capsys):
        assert main(["experiment", "fig11", "woff2"]) == 0
        out = capsys.readouterr().out
        assert "Odin-MaxPartition" in out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "json"]) == 0
        assert "opt_instrument" in capsys.readouterr().out

    def test_lint_clean_program_passes(self, capsys):
        assert main(["lint", "json"]) == 0
        out = capsys.readouterr().out
        assert "json:" in out
        assert "sanitizer: 0 errors" in out
        assert out.strip().endswith("PASS")

    def test_lint_without_sanitizer(self, capsys):
        assert main(["lint", "json", "--no-sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer" not in out
        assert out.strip().endswith("PASS")

    def test_lint_notes_shown_on_request(self, capsys):
        assert main(["lint", "json", "--no-sanitize", "--notes"]) == 0
        assert "overflow-candidate" in capsys.readouterr().out

    def test_lint_at_o0(self, capsys):
        assert main(["lint", "libpng", "--opt", "0"]) == 0
        assert "(-O0)" in capsys.readouterr().out

    def test_unknown_program_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["run", "nope"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
