"""Tests for the utility layer: union-find, simulated clock, RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.clock import SimClock
from repro.utils.rng import DeterministicRNG
from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert uf.find("a") == "a"
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("ghost") == "ghost"
        assert "ghost" in uf

    def test_clusters_partition_items(self):
        uf = UnionFind("abcdef")
        uf.union("a", "b")
        uf.union("c", "d")
        clusters = uf.clusters()
        assert sorted(len(c) for c in clusters) == [1, 1, 2, 2]
        flat = sorted(x for c in clusters for x in c)
        assert flat == list("abcdef")

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60))
    def test_equivalence_relation(self, pairs):
        """Union-find must agree with a brute-force transitive closure."""
        uf = UnionFind(range(31))
        groups = {i: {i} for i in range(31)}
        for a, b in pairs:
            uf.union(a, b)
            merged = groups[a] | groups[b]
            for member in merged:
                groups[member] = merged
        for a in range(0, 31, 5):
            for b in range(0, 31, 7):
                assert uf.connected(a, b) == (b in groups[a])

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
    def test_clusters_are_disjoint_and_complete(self, pairs):
        uf = UnionFind(range(21))
        for a, b in pairs:
            uf.union(a, b)
        seen = set()
        for cluster in uf.clusters():
            for item in cluster:
                assert item not in seen
                seen.add(item)
        assert seen == set(range(21))


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(5.0, "compile")
        clock.advance(2.5, "link")
        clock.advance(1.5, "compile")
        assert clock.now_ms == 9.0
        assert clock.total("compile") == 6.5
        assert clock.breakdown() == {"compile": 6.5, "link": 2.5}

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3.0, "x")
        clock.reset()
        assert clock.now_ms == 0.0
        assert clock.spans() == []


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_bytes_length_and_range(self):
        data = DeterministicRNG(1).bytes(64)
        assert len(data) == 64

    def test_fork_is_independent_but_deterministic(self):
        a = DeterministicRNG(7)
        fork1 = a.fork()
        b = DeterministicRNG(7)
        fork2 = b.fork()
        assert [fork1.randint(0, 9) for _ in range(5)] == [
            fork2.randint(0, 9) for _ in range(5)
        ]

    @given(st.integers(0, 2**32), st.integers(0, 50), st.integers(51, 100))
    def test_randint_in_bounds(self, seed, lo, hi):
        rng = DeterministicRNG(seed)
        for _ in range(5):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_chance_extremes(self):
        rng = DeterministicRNG(0)
        assert not any(rng.chance(0.0) for _ in range(20))
        assert all(rng.chance(1.0) for _ in range(20))
