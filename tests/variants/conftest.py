"""Shared fixtures: one multi-variant build per session, reused by the
read-only suites (mutating tests build their own)."""

import pytest

from repro.programs.registry import get_program
from repro.variants.builder import VariantBuilder
from repro.variants.runner import PRESERVED


@pytest.fixture(scope="session")
def json_program():
    return get_program("json")


@pytest.fixture(scope="session")
def json_builder(json_program):
    builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
    builder.build()
    return builder
