"""The variant builder: merged images, dispatch wiring, de-instrumentation."""

import pytest

from repro.core.engine import Odin
from repro.errors import LinkError
from repro.linker.variants import VariantExecutable, link_variants
from repro.programs.registry import get_program
from repro.variants.builder import VariantBuilder
from repro.variants.dispatch import VariantSelector
from repro.variants.runner import ENTRY, PRESERVED, _run_one
from repro.variants.spec import FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED
from repro.vm.interpreter import VM, VMError


class TestMergedImage:
    def test_all_families_linked(self, json_builder):
        exe = json_builder.executable
        assert isinstance(exe, VariantExecutable)
        assert exe.families == [FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED]
        assert exe.default_family == FAMILY_CLEAN

    def test_default_family_occupies_offset_zero(self, json_builder):
        exe = json_builder.executable
        clean_exe = json_builder.build_for(FAMILY_CLEAN).engine.executable
        n = len(clean_exe.functions)
        assert exe.family_of[:n] == [FAMILY_CLEAN] * n
        assert [f.name for f in exe.functions[:n]] == [
            f.name for f in clean_exe.functions
        ]
        assert exe.entry_points == clean_exe.entry_points

    def test_dispatch_table_covers_every_family(self, json_builder):
        exe = json_builder.executable
        # Every function of every family is reachable through the table.
        for name, variants in exe.variant_index.items():
            for family, index in variants.items():
                assert exe.functions[index].name == name
                assert exe.family_of[index] == family

    def test_dispatch_falls_back_for_missing_family(self, json_builder):
        exe = json_builder.executable
        # O2 inlines `expect` out of the clean build; the instrumented
        # families keep it.  Dispatching it to clean stays in-family.
        assert "expect" in exe.variant_index
        assert FAMILY_CLEAN not in exe.variant_index["expect"]
        idx = exe.variant_index["expect"][FAMILY_COVERAGE]
        assert exe.dispatch(idx, FAMILY_CLEAN) == idx
        assert exe.dispatch(idx, "no-such-family") == idx

    def test_probe_counts_per_family(self, json_builder):
        counts = json_builder.probe_counts()
        assert counts[FAMILY_CLEAN] == 0
        assert counts[FAMILY_COVERAGE] > 0
        assert counts[FAMILY_SANITIZED] > counts[FAMILY_COVERAGE]

    def test_canonical_bytes_include_dispatch_table(self, json_builder):
        blob = json_builder.executable.canonical_bytes().decode()
        assert "variant-families clean,coverage,sanitized" in blob
        assert "variant parse_value" in blob


class TestExecution:
    def test_sanitized_dispatch_executes_different_code(
        self, json_builder, json_program
    ):
        data = json_program.seeds(0)[0]
        clean = _run_one(
            json_builder.make_vm(
                selector=VariantSelector({FAMILY_CLEAN: 1.0})
            ),
            data,
        )
        sanitized = _run_one(
            json_builder.make_vm(
                selector=VariantSelector({FAMILY_SANITIZED: 1.0})
            ),
            data,
        )
        # Same behaviour, different instrumentation density.
        assert sanitized.exit_code == clean.exit_code
        assert sanitized.stdout == clean.stdout
        assert sanitized.cycles > clean.cycles

    def test_dispatch_tax_charges_per_call(self, json_builder, json_program):
        data = json_program.seeds(0)[0]
        selector = VariantSelector({FAMILY_CLEAN: 1.0})
        base = _run_one(json_builder.make_vm(selector=selector), data)
        taxed = _run_one(
            json_builder.make_vm(
                selector=VariantSelector({FAMILY_CLEAN: 1.0}),
                dispatch_tax=5,
            ),
            data,
        )
        assert taxed.cycles > base.cycles
        assert (taxed.cycles - base.cycles) % 5 == 0

    def test_selector_requires_variant_executable(self, json_builder):
        clean_exe = json_builder.build_for(FAMILY_CLEAN).engine.executable
        with pytest.raises(VMError):
            VM(clean_exe, variant_selector=VariantSelector({"clean": 1.0}))


class TestDeinstrumentation:
    @pytest.fixture()
    def builder(self, json_program):
        fresh = VariantBuilder(json_program.compile, preserve=PRESERVED)
        fresh.build()
        return fresh

    def test_flips_probes_and_relinks(self, builder):
        before = builder.probe_counts()
        relinks = builder.relinks
        flipped = builder.deinstrument_symbol("parse_object")
        assert flipped and all(n > 0 for n in flipped.values())
        assert FAMILY_COVERAGE in flipped and FAMILY_SANITIZED in flipped
        assert builder.relinks == relinks + 1
        assert builder.deinstrumented == ["parse_object"]
        # The merged image's instrumented variants of the symbol carry
        # fewer live probes now.
        for family, n in flipped.items():
            live = sum(
                1
                for tool in builder.build_for(family).tools
                for probe in tool.probes.values()
                if probe.enabled
            )
            assert live == before[family] - n

    def test_recompile_observable_in_span_tree(self, builder):
        builder.deinstrument_symbol("parse_object")
        spans = builder.tracer.roots()
        deinst = [
            s for root in spans for s in root.find_all("partisan.deinstrument")
        ]
        assert len(deinst) == 1
        assert deinst[0].args["symbol"] == "parse_object"
        # The fragment-level rebuilds nest under the de-instrument span.
        assert deinst[0].find("rebuild") is not None

    def test_unknown_symbol_is_a_noop(self, builder):
        relinks = builder.relinks
        assert builder.deinstrument_symbol("no_such_fn") == {}
        assert builder.relinks == relinks
        assert builder.deinstrumented == []

    def test_reinstrument_restores_probes(self, builder):
        before = builder.probe_counts()
        builder.deinstrument_symbol("parse_object")
        restored = builder.reinstrument_symbol("parse_object")
        assert restored
        assert builder.deinstrumented == []
        for family in restored:
            live = sum(
                1
                for tool in builder.build_for(family).tools
                for probe in tool.probes.values()
                if probe.enabled
            )
            assert live == before[family]

    def test_behaviour_preserved_after_deinstrumentation(
        self, builder, json_program
    ):
        data = json_program.seeds(0)[0]
        sanitized_mix = {FAMILY_SANITIZED: 1.0}
        before = _run_one(
            builder.make_vm(selector=VariantSelector(sanitized_mix)), data
        )
        builder.deinstrument_symbol("parse_object")
        after = _run_one(
            builder.make_vm(selector=VariantSelector(sanitized_mix)), data
        )
        assert after.exit_code == before.exit_code
        assert after.stdout == before.stdout
        assert after.cycles < before.cycles  # checks really came out


class TestLinkVariantsValidation:
    def test_needs_at_least_one_family(self):
        with pytest.raises(LinkError):
            link_variants({})

    def test_default_must_have_an_image(self, json_builder):
        clean = json_builder.build_for(FAMILY_CLEAN).engine.executable
        with pytest.raises(LinkError):
            link_variants({"clean": clean}, default="sanitized")

    def test_rejects_diverging_data_segments(self):
        # Two different programs have different data segments; merging
        # them as "families" must be refused.
        a = Odin(get_program("json").compile(), preserve=PRESERVED)
        a.initial_build()
        b = Odin(get_program("lcms").compile(), preserve=PRESERVED)
        b.initial_build()
        with pytest.raises(LinkError):
            link_variants({"clean": a.executable, "other": b.executable})
