"""Variant labels keep shared caches from serving one family's artifacts
to another — the acceptance property for co-resident variants.

Both cache layers are covered: the content-addressed object cache
(fragment content keys) and the link cache (image keys).
"""

import pytest

from repro.core.engine import Odin, fragment_content_key
from repro.instrument.coverage import OdinCov
from repro.linker.cache import LinkCache
from repro.programs.registry import get_program
from repro.service.cache import InMemoryCodeCache, PersistentCodeCache
from repro.variants.builder import VariantBuilder
from repro.variants.runner import PRESERVED
from repro.variants.spec import FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED


class TestContentKeys:
    def test_variant_label_changes_every_fragment_key(self):
        program = get_program("json")
        engine = Odin(program.compile(), preserve=PRESERVED)
        for fragment in engine.fragdef.fragments:
            frag_module = engine._split_fragment(engine.module, fragment)
            keys = {
                fragment_content_key(frag_module, 2, "", label)
                for label in ("", FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED)
            }
            assert len(keys) == 4  # every label gets its own key space

    def test_same_label_is_deterministic(self):
        program = get_program("json")
        engine = Odin(program.compile(), preserve=PRESERVED)
        fragment = engine.fragdef.fragments[0]
        frag_module = engine._split_fragment(engine.module, fragment)
        assert fragment_content_key(
            frag_module, 2, "", "clean"
        ) == fragment_content_key(frag_module, 2, "", "clean")


class TestSharedObjectCache:
    def test_families_never_alias_in_a_shared_cache(self):
        program = get_program("json")
        shared = InMemoryCodeCache()
        builder = VariantBuilder(
            program.compile, preserve=PRESERVED, object_cache=shared
        )
        builder.build()

        # An independent, cache-less clean build is the ground truth: if
        # the shared cache had served an instrumented family's object to
        # the clean engine (or vice versa), the clean image would differ.
        reference = Odin(program.compile(), preserve=PRESERVED)
        reference.initial_build()
        clean_fp = builder.build_for(
            FAMILY_CLEAN
        ).engine.executable_fingerprint()
        assert clean_fp == reference.executable_fingerprint()

        # And the instrumented families genuinely differ from clean.
        cov_fp = builder.build_for(
            FAMILY_COVERAGE
        ).engine.executable_fingerprint()
        san_fp = builder.build_for(
            FAMILY_SANITIZED
        ).engine.executable_fingerprint()
        assert len({clean_fp, cov_fp, san_fp}) == 3

    def test_persistent_cache_isolates_variants(self, tmp_path):
        # Same fragment bytes stored under the "clean" label must miss
        # when probed under another family's label.
        program = get_program("json")
        engine = Odin(program.compile(), preserve=PRESERVED)
        fragment = engine.fragdef.fragments[0]
        frag_module = engine._split_fragment(engine.module, fragment)
        from repro.core.engine import InlineFragmentCompiler

        clean_key = fragment_content_key(frag_module, 2, "", "clean")
        other_key = fragment_content_key(frag_module, 2, "", "sanitized")
        obj = InlineFragmentCompiler().compile_batch([frag_module], 2, True)[0]
        cache = PersistentCodeCache(str(tmp_path / "cache"))
        cache.put(clean_key, obj)
        assert cache.get(clean_key) is not None
        assert cache.get(other_key) is None


class TestSharedLinkCache:
    def test_link_keys_are_variant_prefixed(self):
        program = get_program("json")
        shared = LinkCache()
        builder = VariantBuilder(
            program.compile, preserve=PRESERVED, link_cache=shared
        )
        builder.build()
        labels = {key[0] for key in shared._entries}
        assert labels == {
            f"variant={name}"
            for name in (FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED)
        }

    def test_identical_probe_state_still_misses_across_variants(self):
        # Clean and coverage-with-all-probes-disabled compile identical
        # fragment IR; only the variant label separates their images in a
        # shared link cache.
        program = get_program("json")
        shared = LinkCache()
        cache = InMemoryCodeCache()

        clean = Odin(
            program.compile(),
            preserve=PRESERVED,
            object_cache=cache,
            link_cache=shared,
            variant_label="clean",
        )
        clean.initial_build()

        other = Odin(
            program.compile(),
            preserve=PRESERVED,
            object_cache=cache,
            link_cache=shared,
            variant_label="other",
        )
        other.initial_build()

        # Identical probe state (none) and identical source: the images
        # are byte-identical, yet each variant linked its own.
        assert clean.executable_fingerprint() == other.executable_fingerprint()
        assert len(shared) == 2
        assert shared.hits == 0
