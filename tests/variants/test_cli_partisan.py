"""The ``repro partisan`` command and the variant leg of ``repro check``."""

import json

from repro.cli import main


class TestPartisanCommand:
    def test_smoke_run(self, capsys):
        assert main([
            "partisan", "json",
            "--executions", "80", "--window", "20", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "80 executions" in out
        assert "call shares" in out
        assert "clean-dispatch equivalence" in out
        assert "PASS" in out

    def test_report_json_and_trace(self, capsys, tmp_path):
        report_path = tmp_path / "partisan.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "partisan", "json",
            "--executions", "60", "--window", "20", "--no-check",
            "--report-json", str(report_path),
            "--trace-out", str(trace_path),
        ]) == 0
        payload = json.loads(report_path.read_text())
        assert payload[0]["program"] == "json"
        assert set(payload[0]["call_shares"]) == {
            "clean", "coverage", "sanitized"
        }
        trace = json.loads(trace_path.read_text())
        names = {event.get("name") for event in trace["traceEvents"]}
        assert "partisan.build" in names

    def test_windows_flag_prints_controller_steps(self, capsys):
        assert main([
            "partisan", "json",
            "--executions", "40", "--window", "20", "--no-check",
            "--windows",
        ]) == 0
        out = capsys.readouterr().out
        assert "window 0: overhead" in out

    def test_per_execution_mode(self, capsys):
        assert main([
            "partisan", "json",
            "--executions", "40", "--window", "20", "--no-check",
            "--mode", "per-execution",
        ]) == 0
        assert "(per-execution)" in capsys.readouterr().out


class TestCheckVariantLeg:
    def test_check_runs_clean_dispatch_suite(self, capsys):
        assert main([
            "check", "json", "--schedules", "1", "--no-faults",
        ]) == 0
        assert "clean-dispatch equivalence" in capsys.readouterr().out

    def test_check_can_skip_variants(self, capsys):
        assert main([
            "check", "json", "--schedules", "1", "--no-faults",
            "--no-variants",
        ]) == 0
        assert "clean-dispatch" not in capsys.readouterr().out
