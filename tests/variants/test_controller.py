"""The budget controller: mix control, de-instrumentation, metrics."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.programs.registry import get_program
from repro.variants.builder import VariantBuilder
from repro.variants.controller import BudgetController, ControllerConfig
from repro.variants.dispatch import VariantSelector
from repro.variants.runner import PRESERVED
from repro.variants.spec import FAMILY_CLEAN, FAMILY_COVERAGE, FAMILY_SANITIZED


def make_controller(json_builder, **cfg):
    selector = VariantSelector(json_builder.spec.initial_mix(), seed=1)
    defaults = dict(target_overhead=0.25, window=5, protected=frozenset(PRESERVED))
    defaults.update(cfg)
    controller = BudgetController(
        json_builder, selector, ControllerConfig(**defaults)
    )
    return selector, controller


def feed_window(controller, overhead, *, baseline=1000, calls=None):
    """Feed one window of synthetic executions at a fixed overhead;
    *calls* optionally simulates call traffic first."""
    for name, n in (calls or {}).items():
        for _ in range(n):
            controller.selector.select(name, FAMILY_CLEAN)
    for _ in range(controller.config.window):
        controller.record_execution(int(baseline * (1 + overhead)), baseline)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"target_overhead": 0.0},
            {"target_overhead": -0.5},
            {"window": 0},
            {"hot_call_share": 0.0},
            {"hot_call_share": 1.5},
        ],
    )
    def test_rejects_bad_config(self, bad):
        with pytest.raises(ValueError):
            ControllerConfig(**bad)


class TestMixControl:
    def test_over_budget_shrinks_instrumented_weights(self, json_builder):
        selector, controller = make_controller(json_builder)
        before = dict(selector.mix)
        feed_window(controller, overhead=1.0)  # 4x the budget
        after = selector.mix
        for family in (FAMILY_COVERAGE, FAMILY_SANITIZED):
            assert after[family] < before[family]
        assert after[FAMILY_CLEAN] > before[FAMILY_CLEAN]

    def test_under_budget_grows_instrumented_weights(self, json_builder):
        selector, controller = make_controller(json_builder)
        before = dict(selector.mix)
        feed_window(controller, overhead=0.02)
        after = selector.mix
        for family in (FAMILY_COVERAGE, FAMILY_SANITIZED):
            assert after[family] > before[family]

    def test_instrumented_weight_never_reaches_zero(self, json_builder):
        selector, controller = make_controller(json_builder)
        for _ in range(20):
            feed_window(controller, overhead=3.0)
        for family in (FAMILY_COVERAGE, FAMILY_SANITIZED):
            assert selector.mix[family] > 0  # cold-path sanitization stays on

    def test_mix_stays_normalized(self, json_builder):
        selector, controller = make_controller(json_builder)
        for overhead in (1.0, 0.01, 2.0, 0.1):
            feed_window(controller, overhead=overhead)
            assert abs(sum(selector.mix.values()) - 1.0) < 1e-9

    def test_convergence_judged_on_recent_windows(self, json_builder):
        _, controller = make_controller(json_builder, convergence_windows=2)
        feed_window(controller, overhead=2.0)
        assert not controller.converged
        feed_window(controller, overhead=0.25)
        feed_window(controller, overhead=0.25)
        assert controller.converged
        assert controller.last_window_overhead == pytest.approx(0.25)


class TestDeinstrumentation:
    def test_hot_function_is_deinstrumented(self, json_program):
        builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
        builder.build()
        selector, controller = make_controller(builder)
        feed_window(
            controller,
            overhead=2.0,
            calls={"parse_object": 80, "skip_ws": 10, "peek": 10},
        )
        assert builder.deinstrumented == ["parse_object"]
        assert selector.pinned["parse_object"] == FAMILY_CLEAN
        assert controller.windows[-1].deinstrumented == "parse_object"
        assert controller.metrics.counter("partisan.deinstrumented") == 1
        assert controller.metrics.counter("partisan.probes.flipped") > 0
        # The recompile is visible in the shared span tree.
        deinst = [
            s
            for root in builder.tracer.roots()
            for s in root.find_all("partisan.deinstrument")
        ]
        assert deinst and deinst[0].find("rebuild") is not None

    def test_protected_functions_are_skipped(self, json_program):
        builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
        builder.build()
        selector, controller = make_controller(builder)
        feed_window(controller, overhead=2.0, calls={"run_input": 100})
        assert builder.deinstrumented == []
        assert "run_input" not in selector.pinned

    def test_cold_functions_are_not_deinstrumented(self, json_program):
        builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
        builder.build()
        _, controller = make_controller(builder, hot_call_share=0.5)
        # Calls spread evenly: nobody clears the 50% hotness bar.
        feed_window(
            controller,
            overhead=2.0,
            calls={"parse_object": 25, "parse_array": 25, "skip_ws": 25,
                   "peek": 25},
        )
        assert builder.deinstrumented == []

    def test_within_budget_never_deinstruments(self, json_program):
        builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
        builder.build()
        _, controller = make_controller(builder)
        feed_window(controller, overhead=0.25, calls={"parse_object": 100})
        assert builder.deinstrumented == []

    def test_cap_limits_deinstrumentation(self, json_program):
        builder = VariantBuilder(json_program.compile, preserve=PRESERVED)
        builder.build()
        _, controller = make_controller(builder, max_deinstrumented=1)
        feed_window(controller, overhead=2.0, calls={"parse_object": 100})
        feed_window(controller, overhead=2.0, calls={"parse_array": 100})
        assert builder.deinstrumented == ["parse_object"]


class TestMetrics:
    def test_costs_flow_through_the_registry(self, json_builder):
        metrics = MetricsRegistry()
        selector = VariantSelector(json_builder.spec.initial_mix(), seed=1)
        controller = BudgetController(
            json_builder,
            selector,
            ControllerConfig(target_overhead=0.25, window=10),
            metrics=metrics,
        )
        for _ in range(5):
            controller.record_execution(1000, 1000, FAMILY_CLEAN)
            controller.record_execution(3000, 1000, FAMILY_SANITIZED)
        assert controller.family_cost(FAMILY_CLEAN) == pytest.approx(1.0)
        assert controller.family_cost(FAMILY_SANITIZED) == pytest.approx(3.0)
        assert controller.family_cost(FAMILY_COVERAGE) is None
        assert metrics.gauge("partisan.window.overhead") == pytest.approx(1.0)
        assert metrics.counter("partisan.windows") == 1
        for family in selector.mix:
            assert metrics.gauge(f"partisan.mix.{family}") == pytest.approx(
                selector.mix[family]
            )
        assert controller.achieved_overhead == pytest.approx(1.0)
