"""Unit tests for the seeded variant selector."""

import pytest

from repro.variants.dispatch import (
    MODE_PER_CALL,
    MODE_PER_EXECUTION,
    VariantSelector,
)

MIX = {"clean": 0.5, "coverage": 0.2, "sanitized": 0.3}


class TestValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            VariantSelector(MIX, mode="per-input")

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            VariantSelector({})

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            VariantSelector({"clean": 0.5, "sanitized": -0.1})

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            VariantSelector({"clean": 0.0, "sanitized": 0.0})


class TestSelection:
    def test_seed_replays_identical_sequence(self):
        a = VariantSelector(MIX, seed=7)
        b = VariantSelector(MIX, seed=7)
        seq_a = [a.select("f", "clean") for _ in range(200)]
        seq_b = [b.select("f", "clean") for _ in range(200)]
        assert seq_a == seq_b

    def test_mix_is_normalized(self):
        selector = VariantSelector({"clean": 2, "sanitized": 2})
        assert selector.mix == {"clean": 0.5, "sanitized": 0.5}

    def test_shares_track_the_mix(self):
        selector = VariantSelector(MIX, seed=3)
        for _ in range(3000):
            selector.select("f", "clean")
        shares = selector.call_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for family, weight in MIX.items():
            assert abs(shares[family] - weight) < 0.05

    def test_single_family_mix_always_selected(self):
        selector = VariantSelector({"clean": 1.0}, seed=1)
        assert all(
            selector.select("f", "clean") == "clean" for _ in range(50)
        )

    def test_pin_overrides_the_draw(self):
        selector = VariantSelector(MIX, seed=11)
        selector.pin("hot", "clean")
        assert all(
            selector.select("hot", "clean") == "clean" for _ in range(100)
        )
        selector.unpin("hot")
        drawn = {selector.select("hot", "clean") for _ in range(200)}
        assert len(drawn) > 1

    def test_function_call_accounting(self):
        selector = VariantSelector(MIX, seed=1)
        for _ in range(5):
            selector.select("hot", "clean")
        selector.select("cold", "clean")
        assert selector.function_calls == {"hot": 5, "cold": 1}
        assert selector.hottest_functions() == ["hot", "cold"]


class TestPerExecutionMode:
    def test_one_family_per_execution(self):
        selector = VariantSelector(MIX, seed=5, mode=MODE_PER_EXECUTION)
        families = set()
        for _ in range(20):
            selector.begin_execution()
            chosen = {selector.select(f"f{i}", "clean") for i in range(10)}
            assert len(chosen) == 1  # every call follows the drawn family
            families.add(chosen.pop())
        assert len(families) > 1  # across executions the mix is sampled
        assert selector.executions == 20
        assert sum(selector.execution_counts.values()) == 20
        assert abs(sum(selector.execution_shares().values()) - 1.0) < 1e-9

    def test_per_call_mode_interleaves_within_execution(self):
        selector = VariantSelector(MIX, seed=5, mode=MODE_PER_CALL)
        selector.begin_execution()
        chosen = {selector.select("f", "clean") for _ in range(200)}
        assert len(chosen) > 1
        assert selector.execution_shares() == {}

    def test_pin_overrides_execution_family(self):
        selector = VariantSelector(
            {"sanitized": 1.0}, seed=2, mode=MODE_PER_EXECUTION
        )
        selector.pin("hot", "clean")
        selector.begin_execution()
        assert selector.select("hot", "sanitized") == "clean"
        assert selector.select("other", "sanitized") == "sanitized"


class TestSetMixLive:
    def test_set_mix_shifts_future_draws(self):
        selector = VariantSelector(MIX, seed=9)
        for _ in range(100):
            selector.select("f", "clean")
        selector.set_mix({"clean": 1.0})
        before = dict(selector.calls)
        for _ in range(100):
            assert selector.select("f", "clean") == "clean"
        assert selector.calls["clean"] == before.get("clean", 0) + 100
