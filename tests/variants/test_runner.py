"""End-to-end runner + clean-dispatch oracle + instrument regressions."""

import pytest

from repro.core.engine import Odin
from repro.instrument.asan import ASanTool
from repro.instrument.ubsan import UBSanTool
from repro.programs.registry import get_program
from repro.variants.oracle import check_clean_dispatch
from repro.variants.runner import PRESERVED, run_partisan


class TestRunPartisan:
    @pytest.fixture(scope="class")
    def run(self, json_program):
        return run_partisan(
            json_program,
            budget=0.25,
            executions=120,
            seed=3,
            window=20,
            mode="per-execution",
        )

    def test_report_shape(self, run):
        report = run.report.to_dict()
        for key in (
            "program", "mode", "budget", "achieved_overhead", "call_shares",
            "execution_shares", "family_costs", "mix_final", "deinstrumented",
            "findings", "windows", "probes",
        ):
            assert key in report
        assert report["program"] == "json"
        assert report["executions"] == 120
        assert report["windows"] == 6

    def test_every_family_executed(self, run):
        shares = run.report.call_shares
        assert set(shares) == {"clean", "coverage", "sanitized"}
        assert all(share > 0 for share in shares.values())
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert sum(run.report.execution_shares.values()) == pytest.approx(1.0)

    def test_overhead_is_positive_and_costs_ordered(self, run):
        report = run.report
        assert report.achieved_overhead > 0
        costs = report.family_costs
        # Clean executions cost exactly the baseline; sanitized ones more.
        assert costs["clean"] == pytest.approx(1.0)
        assert costs["sanitized"] > costs["coverage"] > 0.99

    def test_coverage_recorded_as_findings(self, run):
        assert run.report.findings["coverage_blocks"] > 0

    def test_deterministic_given_a_seed(self, json_program):
        a = run_partisan(json_program, executions=60, seed=9, window=20)
        b = run_partisan(json_program, executions=60, seed=9, window=20)
        assert a.report.to_dict() == b.report.to_dict()

    def test_seeds_differ(self, json_program):
        a = run_partisan(json_program, executions=60, seed=9, window=20)
        b = run_partisan(json_program, executions=60, seed=10, window=20)
        assert a.report.call_shares != b.report.call_shares


class TestCleanDispatchOracle:
    @pytest.mark.parametrize("name", ["json", "woff2"])
    def test_equivalence_holds(self, name):
        report = check_clean_dispatch(get_program(name), max_inputs=3)
        assert report.ok, report.mismatches
        assert report.inputs == 3
        assert "ok" in report.summary()

    def test_detects_behaviour_divergence(self, monkeypatch, json_program):
        # Sabotage dispatch so "clean-only" routing secretly runs the
        # sanitized family: the oracle must notice the cycle drift.
        from repro.linker.variants import VariantExecutable

        original = VariantExecutable.dispatch

        def skewed(self, index, family):
            return original(self, index, "sanitized")

        monkeypatch.setattr(VariantExecutable, "dispatch", skewed)
        report = check_clean_dispatch(json_program, max_inputs=2)
        assert not report.ok
        assert any("cycles" in m for m in report.mismatches)


class TestInstrumentRegressions:
    """Satellite regressions riding along with the subsystem."""

    def test_prune_hot_checks_rejects_bad_fraction(self, json_program):
        engine = Odin(json_program.compile(), preserve=PRESERVED)
        tool = ASanTool(engine)
        tool.add_all_access_probes()
        tool.build()
        for bad in (0.0, -0.2, 1.5):
            with pytest.raises(ValueError, match="hot_fraction"):
                tool.prune_hot_checks(hot_fraction=bad)

    def test_prune_hot_checks_accepts_boundary(self, json_program):
        engine = Odin(json_program.compile(), preserve=PRESERVED)
        tool = ASanTool(engine)
        tool.add_all_access_probes()
        tool.build()
        # 1.0 is inside the domain; with no profile data nothing is hot.
        assert tool.prune_hot_checks(hot_fraction=1.0) is None

    def test_recording_runtimes_do_not_trap(self, json_program):
        # trap=False is what lets the sanitized family run "production"
        # traffic: violations are recorded, execution continues.
        engine = Odin(json_program.compile(), preserve=PRESERVED)
        asan = ASanTool(engine, trap=False)
        asan.add_all_access_probes()
        ubsan = UBSanTool(engine, trap=False)
        ubsan.add_all_overflow_probes()
        asan.build()
        vm = asan.make_vm(extra_runtime=ubsan.runtime)
        data = json_program.seeds(0)[0]
        vm.reset()
        addr = vm.alloc(max(len(data), 1) + 1)
        vm.write_bytes(addr, data)
        result = vm.run("run_input", (addr, len(data)), reset=False)
        assert result.trap is None
