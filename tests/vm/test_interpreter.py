"""Tests for the VM: execution semantics, traps, cycle accounting, hooks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.isel import lower_module
from repro.errors import VMError
from repro.ir.parser import parse_module
from repro.linker.linker import link
from repro.vm.interpreter import VM, CompositeProbeRuntime, ProbeRuntime


def build_exe(source):
    return link([lower_module(parse_module(source))])


def run_fn(source, name, args=(), **kwargs):
    return VM(build_exe(source), **kwargs).run(name, args)


class TestExecution:
    def test_return_value(self):
        assert run_fn("define i32 @f() {\nentry:\n  ret i32 7\n}", "f").exit_code == 7

    def test_arguments_passed(self):
        src = "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %r = sub i32 %a, %b\n  ret i32 %r\n}"
        assert run_fn(src, "f", (10, 3)).exit_code == 7

    def test_memory_roundtrip(self):
        src = """
@slot = global i64 0

define i64 @f(i64 %v) {
entry:
  store i64 %v, ptr @slot
  %r = load i64, ptr @slot
  ret i64 %r
}
"""
        result = run_fn(src, "f", (0xDEADBEEF,))
        assert result.exit_code == 0xDEADBEEF & 0xFFFFFFFF

    def test_call_and_frame_isolation(self):
        src = """
define i32 @inner(i32 %x) {
entry:
  %slot = alloca i32
  store i32 %x, ptr %slot
  %v = load i32, ptr %slot
  %r = mul i32 %v, 3
  ret i32 %r
}

define i32 @outer() {
entry:
  %slot = alloca i32
  store i32 99, ptr %slot
  %a = call i32 @inner(i32 5)
  %keep = load i32, ptr %slot
  %r = add i32 %a, %keep
  ret i32 %r
}
"""
        assert run_fn(src, "outer").exit_code == 114

    def test_indirect_call_through_function_address(self):
        src = """
define i32 @target(i32 %x) {
entry:
  %r = add i32 %x, 100
  ret i32 %r
}

@fp = global ptr null

define i32 @f() {
entry:
  store ptr @target, ptr @fp
  %callee = load ptr, ptr @fp
  %r = call i32 %callee(i32 1)
  ret i32 %r
}
"""
        assert run_fn(src, "f").exit_code == 101

    def test_recursion_depth(self):
        src = """
define i32 @count(i32 %n) {
entry:
  %z = icmp eq i32 %n, 0
  br i1 %z, label %done, label %rec
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @count(i32 %n1)
  %r1 = add i32 %r, 1
  ret i32 %r1
done:
  ret i32 0
}
"""
        assert run_fn(src, "count", (50,)).exit_code == 50


class TestTraps:
    def test_null_deref(self):
        src = "define i32 @f() {\nentry:\n  %v = load i32, ptr null\n  ret i32 %v\n}"
        assert run_fn(src, "f").trap == "bad-memory"

    def test_out_of_bounds(self):
        src = """
define i32 @f() {
entry:
  %p = inttoptr i64 99999999 to ptr
  %v = load i32, ptr %p
  ret i32 %v
}
"""
        assert run_fn(src, "f").trap == "bad-memory"

    def test_division_by_zero(self):
        src = "define i32 @f(i32 %a) {\nentry:\n  %v = sdiv i32 1, %a\n  ret i32 %v\n}"
        assert run_fn(src, "f", (0,)).trap == "div-by-zero"

    def test_unreachable(self):
        src = "define void @f() {\nentry:\n  unreachable\n}"
        assert run_fn(src, "f").trap == "unreachable"

    def test_write_to_const(self):
        src = """
@ro = const [2 x i8] c"a\\00"

define void @f() {
entry:
  store i8 98, ptr @ro
  ret void
}
"""
        assert run_fn(src, "f").trap == "bad-memory"

    def test_runaway_execution_raises(self):
        src = """
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}
"""
        with pytest.raises(VMError, match="exceeded"):
            run_fn(src, "f", max_steps=1000)


class TestCycleAccounting:
    def test_cycles_deterministic(self):
        src = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %header, label %done
done:
  ret i32 %i
}
"""
        exe = build_exe(src)
        a = VM(exe).run("f", (100,))
        b = VM(exe).run("f", (100,))
        assert a.cycles == b.cycles > 0

    def test_cycles_scale_with_work(self):
        src = """
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %header, label %done
done:
  ret i32 %i
}
"""
        exe = build_exe(src)
        small = VM(exe).run("f", (10,)).cycles
        large = VM(exe).run("f", (1000,)).cycles
        assert large > small * 50

    def test_block_tax_charged(self):
        src = "define i32 @f() {\nentry:\n  ret i32 0\n}"
        exe = build_exe(src)
        plain = VM(exe).run("f").cycles
        taxed = VM(exe, block_tax=100).run("f").cycles
        assert taxed == plain + 100  # one block


class TestHooks:
    PROBED = """
declare void @__odin_cov_hit(i64)

define i32 @f(i1 %c) {
entry:
  call void @__odin_cov_hit(i64 1)
  br i1 %c, label %a, label %b
a:
  call void @__odin_cov_hit(i64 2)
  ret i32 1
b:
  call void @__odin_cov_hit(i64 3)
  ret i32 2
}
"""

    def test_probe_runtime_receives_events(self):
        events = []

        class Recorder(ProbeRuntime):
            def on_probe(self, kind, probe_id, args, vm):
                events.append((kind, probe_id))

        exe = build_exe(self.PROBED)
        VM(exe, probe_runtime=Recorder()).run("f", (1,))
        assert events == [("cov", 1), ("cov", 2)]

    def test_composite_runtime_fans_out(self):
        seen_a, seen_b = [], []

        class A(ProbeRuntime):
            def on_probe(self, kind, probe_id, args, vm):
                seen_a.append(probe_id)

        class B(ProbeRuntime):
            def on_probe(self, kind, probe_id, args, vm):
                seen_b.append(probe_id)

        exe = build_exe(self.PROBED)
        VM(exe, probe_runtime=CompositeProbeRuntime(A(), B())).run("f", (0,))
        assert seen_a == seen_b == [1, 3]

    def test_block_hook_sees_executed_blocks(self):
        blocks = []
        exe = build_exe(self.PROBED)
        vm = VM(exe, block_hook=lambda f, b: blocks.append(b))
        vm.run("f", (0,))
        assert blocks == [0, 2]  # entry then %b

    def test_reset_restores_globals(self):
        src = """
@g = global i32 0

define i32 @f() {
entry:
  %v = load i32, ptr @g
  %v2 = add i32 %v, 1
  store i32 %v2, ptr @g
  ret i32 %v2
}
"""
        vm = VM(build_exe(src))
        assert vm.run("f").exit_code == 1
        assert vm.run("f").exit_code == 1  # run() resets


class TestDifferentialArithmetic:
    """Property test: VM arithmetic equals the shared semantics module."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    def test_binary_matches_semantics(self, op, a, b):
        from repro.ir.semantics import eval_binary
        from repro.ir.types import I32

        src = f"""
define i32 @f(i32 %a, i32 %b) {{
entry:
  %r = {op} i32 %a, %b
  ret i32 %r
}}
"""
        got = run_fn(src, "f", (a, b)).exit_code
        assert got == eval_binary(op, I32, a, b)
