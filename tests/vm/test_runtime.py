"""Tests for the VM runtime builtins (the tiny libc)."""

import pytest

from repro.backend.isel import lower_module
from repro.ir.parser import parse_module
from repro.linker.linker import link
from repro.vm.interpreter import VM


def run_c(source, entry="main", args=(), opt_level=2):
    from repro.toolchain import build

    result = build(source, opt_level=opt_level)
    return VM(result.executable).run(entry, args)


class TestPrintf:
    def test_basic_formats(self):
        r = run_c(r'int main() { printf("%d|%u|%x|%c|%s", -1, 7u, 255, 'r"'z'"r', "hi"); return 0; }')
        assert r.stdout == b"-1|7|ff|z|hi"

    def test_long_values(self):
        r = run_c(r'int main() { long big = 1; big <<= 40; printf("%ld", big); return 0; }')
        assert r.stdout == str(1 << 40).encode()

    def test_percent_literal(self):
        r = run_c(r'int main() { printf("100%%"); return 0; }')
        assert r.stdout == b"100%"

    def test_return_value_is_length(self):
        r = run_c(r'int main() { return printf("abc"); }')
        assert r.exit_code == 3

    def test_missing_argument_traps(self):
        r = run_c(r'int main() { printf("%d"); return 0; }')
        assert r.trap == "bad-call"


class TestStringBuiltins:
    def test_puts_appends_newline(self):
        r = run_c(r'int main() { puts("line"); return 0; }')
        assert r.stdout == b"line\n"

    def test_putchar(self):
        r = run_c(r"int main() { putchar('A'); putchar(10); return 0; }")
        assert r.stdout == b"A\n"

    def test_strlen_strcmp(self):
        r = run_c(
            r"""
int main() {
    int eq = strcmp("abc", "abc");
    int lt = strcmp("abc", "abd");
    int gt = strcmp("b", "a");
    return (eq == 0) * 100 + (lt != 0) * 10 + (gt > 0) + (int)strlen("four") * 1000;
}
"""
        )
        assert r.exit_code == 4111


class TestMemoryBuiltins:
    def test_malloc_returns_distinct_regions(self):
        r = run_c(
            r"""
int main() {
    char *a = malloc(8);
    char *b = malloc(8);
    a[0] = 1;
    b[0] = 2;
    return a[0] * 10 + b[0];
}
"""
        )
        assert r.exit_code == 12

    def test_memcpy(self):
        r = run_c(
            r"""
int main() {
    char src[6] = "hello";
    char dst[6];
    memcpy(dst, src, 6);
    return dst[4];
}
"""
        )
        assert r.exit_code == ord("o")

    def test_memset(self):
        r = run_c(
            r"""
int main() {
    char buf[4];
    memset(buf, 'x', 4);
    return buf[3];
}
"""
        )
        assert r.exit_code == ord("x")

    def test_oom_traps(self):
        src = r"""
int main() {
    long i;
    for (i = 0; i < 100000; i++) malloc(65536);
    return 0;
}
"""
        r = run_c(src)
        assert r.trap == "oom"


class TestProcessBuiltins:
    def test_exit_code_propagates(self):
        assert run_c("int main() { exit(42); return 0; }").exit_code == 42

    def test_abort_trap_kind(self):
        assert run_c("int main() { abort(); return 0; }").trap == "abort"

    def test_builtin_charges_cycles(self):
        base = run_c("int main() { return 0; }").cycles
        with_call = run_c('int main() { puts("x"); return 0; }').cycles
        assert with_call > base
